#!/usr/bin/env python3
"""Design-space study: replay the paper's §4 trade-off analyses.

Runs a compact version of the studies hardware architects used during
SPARC64 V development: issue width (Fig. 8), BHT geometry (Fig. 9/10),
L1 geometry (Fig. 11-13), and hardware prefetching (Fig. 16/17) — and
prints the decision the paper drew from each.

Run:  python examples/design_space_study.py          (full, ~2-4 min)
      python examples/design_space_study.py --quick  (reduced traces)
      python examples/design_space_study.py --jobs 4 (parallel workers;
            results persist in .repro_cache/, so reruns are near-instant)
"""

import sys

from repro.analysis import (
    ParallelRunner,
    fig08_issue_width,
    fig09_10_bht,
    fig11_12_13_l1,
    fig16_17_prefetch,
    standard_workloads,
)


def main() -> None:
    quick = "--quick" in sys.argv
    jobs = 1
    if "--jobs" in sys.argv:
        jobs = int(sys.argv[sys.argv.index("--jobs") + 1])
    warm, timed = (30_000, 8_000) if quick else (100_000, 25_000)
    workloads = standard_workloads(warm=warm, timed=timed)
    runner = ParallelRunner(jobs=jobs, verbose=True)

    print("Replaying the paper's §4 design studies "
          f"({'quick' if quick else 'full'} scale)...\n")

    issue = fig08_issue_width(workloads, runner)
    print(issue.format_table())
    print("Paper decision: 4-way issue — SPECint gains the most because of"
          " its high cache-hit ratios (§4.3.1).\n")

    bht = fig09_10_bht(workloads, runner)
    print(bht.format_table())
    print("Paper decision: the 16K-entry 2-cycle BHT — TPC-C pays for BHT"
          " capacity, SPEC barely notices (§4.3.2).\n")

    l1 = fig11_12_13_l1(workloads, runner)
    print(l1.format_table())
    print("Paper decision: the 128KB 2-way 4-cycle L1 — TPC-C miss ratios"
          " grow sharply with the 32KB direct-mapped cache (§4.3.3).\n")

    prefetch = fig16_17_prefetch(workloads, runner)
    print(prefetch.format_table())
    print("Paper decision: keep the L2 hardware prefetcher — it compensates"
          " for the 2MB on-chip L2, and SPECfp gains >13% (§4.3.5).")
    print(f"\nrunner: {runner.summary()}")


if __name__ == "__main__":
    main()
