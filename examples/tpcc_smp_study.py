#!/usr/bin/env python3
"""TPC-C multiprocessor study: SMP scaling and coherence traffic.

The paper's system-level headline is the 16-processor TPC-C evaluation
(§4.3.4): per-chip L2 caches snooping a shared system bus, with dirty
lines moving cache-to-cache ("move-out" transfers).  This example scales
a TPC-C-like workload from 1 to 8 processors and reports system IPC,
coherence traffic, and bus utilisation.

Run:  python examples/tpcc_smp_study.py [max_cpus]
"""

import sys

from repro.analysis.report import format_table
from repro.model import base_config
from repro.smp.system import run_smp
from repro.trace.synth import build_smp_generators, standard_profiles

WARM = 20_000
TIMED = 6_000


def run_point(cpu_count: int):
    profile = standard_profiles()["TPC-C"]
    generators = build_smp_generators(profile, cpu_count, seed=2003)
    traces = [
        generator.generate(WARM + TIMED, name=f"TPC-C-{cpu_count}P-cpu{generator.cpu}")
        for generator in generators
    ]
    regions = [generator.memory_regions() for generator in generators]
    return run_smp(
        base_config(),
        traces,
        warmup_fraction=WARM / (WARM + TIMED),
        regions_per_cpu=regions,
    )


def main() -> None:
    max_cpus = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    points = [n for n in (1, 2, 4, 8, 16) if n <= max_cpus]

    rows = []
    for cpu_count in points:
        print(f"simulating TPC-C ({cpu_count}P)...")
        result = run_point(cpu_count)
        coherence = result.coherence
        rows.append(
            (
                f"{cpu_count}P",
                f"{result.ipc:.3f}",
                f"{result.per_cpu_ipc:.3f}",
                f"{result.l2_miss_ratio():.2%}",
                coherence["cache_to_cache"],
                coherence["invalidations_sent"],
                f"{result.system_bus_utilization:.1%}",
            )
        )

    print()
    print(
        format_table(
            [
                "system",
                "system IPC",
                "per-CPU IPC",
                "L2 miss",
                "move-outs",
                "invalidations",
                "bus util",
            ],
            rows,
        )
    )
    print(
        "\nAs processors are added, shared dirty lines bounce between L2s"
        " (move-outs) and the shared bus fills — the system-balance effect"
        " the paper's detailed memory model exists to expose (§2.1, §3.3)."
    )


if __name__ == "__main__":
    main()
