#!/usr/bin/env python3
"""Workload characterisation report (the §4.1/§4.2 methodology).

Characterises each standard workload the way the paper's performance
architects did before the design studies: instruction mix, footprints,
structural miss ratios, and the Figure 7 stall decomposition — rendered
as tables and a stacked text chart.

Run:  python examples/workload_characterization.py [workload ...]
"""

import sys

from repro.analysis.characterize import characterize_workload
from repro.analysis.plots import stacked_breakdown_chart
from repro.analysis.workloads import standard_workloads, workload_by_name

WARM = 60_000
TIMED = 15_000


def main() -> None:
    names = sys.argv[1:]
    if names:
        workloads = [workload_by_name(name, warm=WARM, timed=TIMED) for name in names]
    else:
        workloads = standard_workloads(warm=WARM, timed=TIMED)

    breakdowns = {}
    for workload in workloads:
        print(f"characterising {workload.name} ...")
        report = characterize_workload(workload, with_breakdown=True)
        print(report.format_report())
        print()
        breakdowns[workload.name] = report.breakdown.as_dict()

    rows = {
        name: {
            "core": values["core"],
            "branch": values["branch"],
            "ibs/tlb": values["ibs/tlb"],
            "sx": values["sx"],
        }
        for name, values in breakdowns.items()
    }
    print(
        stacked_breakdown_chart(
            rows,
            order=["core", "branch", "ibs/tlb", "sx"],
            title="Figure 7 — execution-time breakdown (100% stacked)",
        )
    )


if __name__ == "__main__":
    main()
