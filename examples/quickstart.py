#!/usr/bin/env python3
"""Quickstart: simulate one workload on the SPARC64 V performance model.

Builds the Table 1 machine, generates a synthetic SPECint95-like trace,
runs the trace-driven cycle-accurate model with steady-state warm-up, and
prints the headline statistics — the minimal end-to-end path through the
library.

Run:  python examples/quickstart.py
"""

from repro.model import PerformanceModel, base_config
from repro.trace.synth import TraceGenerator, standard_profiles


def main() -> None:
    # 1. The machine: Table 1 of the paper (1.3 GHz SPARC64 V).
    config = base_config()
    print("=== Machine (Table 1) ===")
    print(config.table1())

    # 2. The workload: a synthetic SPECint95-like instruction trace.
    #    100k instructions warm the caches/BHT functionally (the paper's
    #    traces are steady-state samples); 25k are timed.
    profile = standard_profiles()["SPECint95"]
    generator = TraceGenerator(profile, seed=2003)
    trace = generator.generate(125_000, name="SPECint95-demo")
    print(f"\n=== Trace ===\n{trace.name}: {len(trace):,} instructions")
    stats = trace.stats()
    print(
        f"loads {stats.load_fraction:.1%}, stores {stats.store_fraction:.1%}, "
        f"branches {stats.branch_fraction:.1%} "
        f"({stats.taken_branch_fraction:.0%} taken)"
    )

    # 3. Run the model.
    model = PerformanceModel(config)
    result = model.run(
        trace, warmup_fraction=0.8, regions=generator.memory_regions()
    )

    # 4. Results.
    print("\n=== Simulation result ===")
    print(result.summary())
    print(
        f"\nThe model simulated {result.instructions:,} instructions in "
        f"{result.cycles:,} cycles (IPC {result.ipc:.3f}) at "
        f"{result.sim_speed:,.0f} trace-instructions/s.\n"
        "The paper's C model ran at 7.8K instr/s on a 1 GHz Pentium III."
    )


if __name__ == "__main__":
    main()
