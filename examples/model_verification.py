#!/usr/bin/env python3
"""Model-verification methodology walk-through (Figures 2, 3, 19).

Reproduces the paper's development-process machinery end to end:

1. Generate a trace, turn it into an executable performance test program
   with the Reverse Tracer, and cross-check the trace-driven model
   against the execution-driven logic simulator (Figure 3, loop (2)).
2. Replay the model-version history v1..v8 and show the estimate
   convergence with the v5 special-instruction anomaly (Figure 19 upper).
3. Track model-vs-"machine" error across verification phases to the
   final <5% accuracy (Figure 19 lower).

Run:  python examples/model_verification.py
"""

from repro.trace.synth import generate_trace, standard_profiles
from repro.verify import (
    LogicSimulator,
    ReverseTracer,
    accuracy_history,
    cross_check,
    version_estimate_history,
)


def step1_cross_check() -> None:
    print("=== 1. Reverse Tracer + logic-simulator cross-check ===")
    trace = generate_trace(standard_profiles()["SPECint95"], 3_000, seed=7)
    program, fidelity = ReverseTracer().generate(trace)
    print(
        f"trace: {len(trace):,} instructions -> test program: "
        f"{len(program):,} static instructions"
    )
    print(f"replay fidelity: {fidelity.as_dict()}")

    result = cross_check(program, max_steps=12_000)
    print(
        f"both paths agree: {result.instructions:,} instructions in "
        f"{result.cycles:,} cycles (IPC {result.ipc:.3f})\n"
    )


def step2_version_history() -> None:
    print("=== 2. Model versions v1..v8 (Figure 19, upper) ===")
    history = version_estimate_history(timed=10_000, warm=40_000)
    for workload, versions in history.items():
        series = "  ".join(f"{label}={value:.3f}" for label, value in versions.items())
        print(f"{workload:12s} {series}")
    print(
        "Estimates decrease as model rigidity improves; v5 moves back up\n"
        "because special instructions got their detailed model (the paper's\n"
        "v4-era flat experimental penalty was pessimistic).\n"
    )


def step3_accuracy() -> None:
    print("=== 3. Accuracy vs the physical machine (Figure 19, lower) ===")
    points = accuracy_history(timed=10_000, warm=40_000)
    for point in points:
        print(f"{point.workload:12s} {point.phase:8s} error {point.error:+.2%}")
    final_errors = [point.abs_error for point in points if point.phase == "final"]
    print(
        f"\nfinal accuracy: {max(final_errors):.2%} worst-case "
        "(paper: 3.9% SPECfp2000, 4.2% SPECint2000)"
    )


def main() -> None:
    step1_cross_check()
    step2_version_history()
    step3_accuracy()


if __name__ == "__main__":
    main()
