"""Statistical validation of SMARTS-style sampled simulation.

For every synthetic workload profile, a sampled run must reproduce the
full detailed run within its own error bars while executing at least
10x fewer instructions in detail:

- the full-run IPC falls inside the sampled run's reported 95 %
  confidence interval;
- for each of the top-3 CPI-stack components (as ranked by the sampled
  estimates — what a user of the method would read first), the full-run
  value falls inside that component's 95 % CI;
- ``detail_reduction`` (trace instructions / detailed instructions) is
  at least 10.

Assertion messages include the per-window distribution, because when a
CI check fails the distribution is what explains it (one outlier window
vs. a systematic shift).

The known limitation, documented in EXPERIMENTS.md: attribution *between
adjacent memory levels* (``dcache_l2`` vs ``dcache_mem``) is not
validated individually when outside the sampled top-3.  Each detailed
window restarts its timing at cycle 0, so queueing backlog on the
L1<->L2 bus — which the full run attributes to ``dcache_l2`` waits on
in-flight fills — partially re-materialises as memory-latency waits.
The *combined* memory component and the IPC remain within the reported
intervals; the split between adjacent levels does not, and pretending
otherwise would be overfitting the test to one seed.
"""

from __future__ import annotations

import pytest

from repro.analysis.workloads import workload_by_name
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.trace.sampling import SamplingPlan

#: Names of every synthetic workload profile in the standard suite.
PROFILES = ("SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000", "TPC-C")

#: Long enough that the full run reaches steady state and the schedule
#: places 15 windows at >= 10x detail reduction.
TRACE_INSTRUCTIONS = 310_000

#: The validated schedule: 500 measured instructions per window behind a
#: 1500-instruction detailed warmup (short windows cannot rebuild memory
#: system backlog, see EXPERIMENTS.md), 800 functionally-warmed
#: instructions, one window every 20 800 instructions.
PLAN = SamplingPlan(period=20800, sample_length=500, warmup=800, detail_warmup=1500)


@pytest.fixture(scope="module", params=PROFILES)
def profile_runs(request):
    """(name, full SimResult, SampledSimResult) for one profile."""
    name = request.param
    workload = workload_by_name(name, warm=0, timed=TRACE_INSTRUCTIONS)
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())
    full = model.run(trace, warmup_fraction=0.0, regions=regions)
    sampled = model.run_sampled(trace, PLAN, regions=regions)
    return name, full, sampled


def _window_distribution(sampled) -> str:
    """Per-window IPCs and CPI contributions, for failure messages."""
    lines = [
        f"windows={sampled.window_count} "
        f"detailed={sampled.detailed_instructions} "
        f"reduction={sampled.detail_reduction:.2f}x",
        "per-window IPC: "
        + ", ".join(f"{ipc:.3f}" for ipc in sampled.window_ipcs),
    ]
    categories = sorted(
        {cat for stack in sampled.window_stacks for cat in stack}
    )
    for cat in categories:
        values = [
            stack.get(cat, 0) / max(n, 1)
            for stack, n in zip(sampled.window_stacks, sampled.window_instructions)
        ]
        lines.append(
            f"per-window cpi.{cat}: " + ", ".join(f"{v:.3f}" for v in values)
        )
    return "\n".join(lines)


def test_detail_reduction_at_least_10x(profile_runs):
    name, full, sampled = profile_runs
    assert sampled.detail_reduction >= 10.0, (
        f"{name}: sampled run executed {sampled.detailed_instructions} of "
        f"{sampled.trace_instructions} instructions in detail "
        f"({sampled.detail_reduction:.2f}x < 10x)\n"
        + _window_distribution(sampled)
    )


def test_full_ipc_within_sampled_ci(profile_runs):
    name, full, sampled = profile_runs
    lo, hi = sampled.ipc_interval
    assert lo <= full.ipc <= hi, (
        f"{name}: full-run IPC {full.ipc:.4f} outside sampled 95% CI "
        f"[{lo:.4f}, {hi:.4f}] (point estimate {sampled.ipc:.4f})\n"
        + _window_distribution(sampled)
    )


def test_top_cpi_components_within_sampled_ci(profile_runs):
    name, full, sampled = profile_runs
    top3 = sorted(
        (key for key in sampled.estimates if key.startswith("cpi.")),
        key=lambda key: -sampled.estimates[key]["mean"],
    )[:3]
    assert len(top3) == 3, f"{name}: fewer than 3 CPI-stack components observed"
    failures = []
    for key in top3:
        category = key[len("cpi."):]
        estimate = sampled.estimates[key]
        target = full.core.cpi_stack.get(category, 0) / full.core.instructions
        if not estimate["lo"] <= target <= estimate["hi"]:
            failures.append(
                f"cpi.{category}: full={target:.4f} outside "
                f"[{estimate['lo']:.4f}, {estimate['hi']:.4f}] "
                f"(mean {estimate['mean']:.4f})"
            )
    assert not failures, (
        f"{name}: top-3 CPI components outside sampled 95% CIs:\n  "
        + "\n  ".join(failures)
        + "\n"
        + _window_distribution(sampled)
    )


def test_measured_instruction_accounting(profile_runs):
    """The sampled result's own bookkeeping is internally consistent."""
    name, full, sampled = profile_runs
    record = sampled.sampling
    assert record["windows"] == sampled.window_count == len(sampled.window_ipcs)
    assert record["measured_instructions"] == sum(sampled.window_instructions)
    assert record["detailed_instructions"] == sampled.detailed_instructions
    assert record["trace_instructions"] == TRACE_INSTRUCTIONS
    # Measured instructions per window equal the plan's sample length up
    # to commit-width slack: boundary snapshots are taken on the cycle
    # commit *crosses* the mark, which can overshoot by a few
    # instructions at each end.
    slack = 2 * base_config().core.commit_width
    assert all(
        abs(n - PLAN.sample_length) <= slack
        for n in sampled.window_instructions
    ), f"{name}: uneven measured windows\n" + _window_distribution(sampled)
