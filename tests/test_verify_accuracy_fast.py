"""Fast tests for the accuracy-tracking machinery (small traces)."""

import pytest

from repro.verify.accuracy import (
    MACHINE_SEED_OFFSET,
    AccuracyPoint,
    accuracy_history,
    version_estimate_history,
)


class TestAccuracyPoint:
    def test_error_sign(self):
        fast_model = AccuracyPoint("p", "w", model_cycles=90, machine_cycles=100)
        assert fast_model.error == pytest.approx(-0.10)
        assert fast_model.abs_error == pytest.approx(0.10)

    def test_zero_machine(self):
        point = AccuracyPoint("p", "w", model_cycles=10, machine_cycles=0)
        assert point.error == 0.0


class TestHistories:
    @pytest.fixture(scope="class")
    def upper(self):
        return version_estimate_history(
            workload_names=["SPECint2000"], timed=4000, warm=12000
        )

    def test_upper_has_all_versions(self, upper):
        assert list(upper["SPECint2000"]) == [f"v{i}" for i in range(1, 9)]

    def test_upper_v8_normalised(self, upper):
        assert upper["SPECint2000"]["v8"] == pytest.approx(1.0)

    def test_upper_v1_not_pessimistic(self, upper):
        # The latency-only model can only over-estimate performance.
        assert upper["SPECint2000"]["v1"] >= 0.99

    def test_lower_phases_ordered(self):
        points = accuracy_history(
            workload_names=["SPECint2000"], timed=4000, warm=12000
        )
        phases = [point.phase for point in points]
        assert phases == ["phaseA", "phaseB", "phaseC", "final"]

    def test_machine_uses_different_sample(self):
        from repro.analysis.workloads import workload_by_name

        model = workload_by_name("SPECint2000", warm=1000, timed=500)
        machine = workload_by_name(
            "SPECint2000",
            sample_seed=model.seed + MACHINE_SEED_OFFSET,
            warm=1000,
            timed=500,
        )
        model_trace = model.trace()
        machine_trace = machine.trace()
        # Same static program (same pcs appear)...
        model_pcs = {record.pc for record in model_trace.records}
        machine_pcs = {record.pc for record in machine_trace.records}
        assert model_pcs & machine_pcs
        # ...but a different dynamic stream.
        assert model_trace.records != machine_trace.records
