"""Golden CPI-stack regression tests.

``tests/golden/cpi_stacks.json`` pins the exact per-category cycle
attribution of tiny base-configuration runs of every standard workload
(same 4k-warm/1k-timed windows as ``base_config.json``) plus the
per-CPU stacks of one 2-processor TPC-C run.  The accountant is
deterministic, so any drift means either the timing moved (the
``base_config.json`` goldens will fail too) or the *attribution* moved
while the timing stayed put — exactly the regression class this file
exists to catch, since total cycles alone would never show it.

Re-bless intentionally with ``REPRO_UPDATE_GOLDEN=1 pytest
tests/test_golden_cpistacks.py`` or ``python tools/regen_golden.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import smp_workload, standard_workloads
from repro.model.config import base_config
from repro.observe.cpistack import total

GOLDEN_PATH = Path(__file__).parent / "golden" / "cpi_stacks.json"

#: Mirror the base_config.json golden windows exactly.
WARM = 4_000
TIMED = 1_000
SMP_CPUS = 2
SMP_WARM = 2_000
SMP_TIMED = 600

UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


def compute_current() -> dict:
    """Regenerate every pinned CPI stack from the current model."""
    runner = ExperimentRunner()
    config = base_config()
    workloads = {}
    for workload in standard_workloads(warm=WARM, timed=TIMED):
        result = runner.run(config, workload)
        workloads[workload.name] = {
            "cycles": result.core.cycles,
            "stack": result.core.cpi_stack,
        }
    smp = runner.run_smp(
        config, smp_workload(SMP_CPUS, warm=SMP_WARM, timed=SMP_TIMED), SMP_CPUS
    )
    return {
        "_meta": {
            "config": config.name,
            "warm": WARM,
            "timed": TIMED,
            "smp": {"cpus": SMP_CPUS, "warm": SMP_WARM, "timed": SMP_TIMED},
        },
        "workloads": workloads,
        "smp": [
            {"cycles": cpu.core.cycles, "stack": cpu.core.cpi_stack}
            for cpu in smp.per_cpu
        ],
    }


def diff_stacks(label: str, golden: dict, current: dict) -> list:
    """Per-category differences, readable in a test failure."""
    lines = []
    if golden.get("cycles") != current.get("cycles"):
        lines.append(
            f"{label}.cycles: golden={golden.get('cycles')!r} "
            f"current={current.get('cycles')!r}"
        )
    gold_stack = golden.get("stack", {})
    new_stack = current.get("stack", {})
    for category in sorted(set(gold_stack) | set(new_stack)):
        gold = gold_stack.get(category, 0)
        new = new_stack.get(category, 0)
        if gold != new:
            lines.append(
                f"{label}.{category}: golden={gold} current={new} "
                f"({new - gold:+d} cycles)"
            )
    return lines


@pytest.fixture(scope="module")
def current() -> dict:
    return compute_current()


def test_golden_file_exists():
    if UPDATE:
        pytest.skip("update mode: file is being rewritten")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; generate it with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden_cpistacks.py "
        "(or python tools/regen_golden.py)"
    )


def test_cpi_stacks_match_golden(current):
    if UPDATE:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"golden file rewritten at {GOLDEN_PATH}")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    differences = []
    for name in sorted(set(golden["workloads"]) | set(current["workloads"])):
        differences += diff_stacks(
            name,
            golden["workloads"].get(name, {}),
            current["workloads"].get(name, {}),
        )
    for index, (gold_cpu, new_cpu) in enumerate(
        zip(golden["smp"], current["smp"])
    ):
        differences += diff_stacks(f"smp.cpu{index}", gold_cpu, new_cpu)

    assert not differences, (
        "CPI-stack attribution drifted from tests/golden/cpi_stacks.json:\n  "
        + "\n  ".join(differences)
        + "\nIf the change is intentional, re-bless with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden_cpistacks.py"
    )


def test_golden_stacks_conserve(current):
    """The pinned fixtures themselves satisfy the invariant."""
    source = current
    if not UPDATE and GOLDEN_PATH.exists():
        source = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for name, entry in source["workloads"].items():
        assert total(entry["stack"]) == entry["cycles"], name
    for index, cpu in enumerate(source["smp"]):
        assert total(cpu["stack"]) == cpu["cycles"], f"cpu{index}"


def test_golden_windows_match_base_config_golden():
    """Both golden files must pin the same simulation windows."""
    base_path = GOLDEN_PATH.parent / "base_config.json"
    if not (GOLDEN_PATH.exists() and base_path.exists()):
        pytest.skip("goldens not generated yet")
    ours = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["_meta"]
    theirs = json.loads(base_path.read_text(encoding="utf-8"))["_meta"]
    assert ours == theirs
