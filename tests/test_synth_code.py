"""Unit tests for the static code image builder."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.trace.synth.code import (
    BranchBehavior,
    TerminalKind,
    build_code_image,
)
from repro.trace.synth.profiles import SPEC_INT_95


@pytest.fixture(scope="module")
def image():
    return build_code_image(SPEC_INT_95, DeterministicRng(42), 500)


class TestLayout:
    def test_block_count(self, image):
        assert len(image) == 500

    def test_contiguous_addresses(self, image):
        for prev, cur in zip(image.blocks, image.blocks[1:]):
            assert cur.start_pc == prev.end_pc

    def test_footprint(self, image):
        total = sum(block.length for block in image.blocks)
        assert image.footprint_bytes == total * 4

    def test_terminal_blocks_have_body(self, image):
        for block in image.blocks:
            if block.terminal is not TerminalKind.NONE:
                assert block.length >= 2
                assert block.body_length == block.length - 1
            else:
                assert block.body_length == block.length

    def test_last_block_never_falls_off(self, image):
        assert image.blocks[-1].terminal is not TerminalKind.NONE

    def test_function_entries_exist(self, image):
        assert image.function_entries
        for index in image.function_entries:
            assert image.blocks[index].is_function_entry


class TestBranches:
    def test_loop_targets_backward(self, image):
        loops = [
            block
            for block in image.blocks
            if block.behavior is BranchBehavior.LOOP
        ]
        assert loops
        for block in loops:
            assert block.target_block is not None
            assert block.target_block <= block.index
            assert block.loop_trip >= 1

    def test_loop_spans_not_trivial(self, image):
        for block in image.blocks:
            if block.behavior is BranchBehavior.LOOP and block.index > 8:
                span = sum(
                    image.blocks[i].length
                    for i in range(block.target_block, block.index + 1)
                )
                assert span >= 11  # near the 12-instruction floor

    def test_non_loop_targets_dynamic(self, image):
        for block in image.blocks:
            if block.terminal is TerminalKind.COND and block.behavior in (
                BranchBehavior.BIASED_TAKEN,
                BranchBehavior.BIASED_NOT,
                BranchBehavior.RANDOM,
            ):
                assert block.target_block is None

    def test_behavior_assigned_to_all_cond(self, image):
        for block in image.blocks:
            if block.terminal is TerminalKind.COND:
                assert block.behavior is not None

    def test_determinism(self):
        a = build_code_image(SPEC_INT_95, DeterministicRng(7), 100)
        b = build_code_image(SPEC_INT_95, DeterministicRng(7), 100)
        assert [blk.length for blk in a.blocks] == [blk.length for blk in b.blocks]
        assert [blk.terminal for blk in a.blocks] == [blk.terminal for blk in b.blocks]


class TestErrors:
    def test_too_few_blocks(self):
        with pytest.raises(ConfigError):
            build_code_image(SPEC_INT_95, DeterministicRng(1), 1)
