"""Tests for the experiment harness (small-scale figure runs)."""

import pytest

from repro.analysis import (
    ExperimentRunner,
    fig08_issue_width,
    fig09_10_bht,
    fig16_17_prefetch,
    fig18_reservation,
    smp_workload,
    spec_workloads,
    standard_workloads,
    tpcc_workload,
    workload_by_name,
)
from repro.analysis.report import format_table, percent
from repro.common.errors import ConfigError
from repro.model.config import base_config


class TestWorkloads:
    def test_standard_set(self):
        names = [workload.name for workload in standard_workloads()]
        assert names == [
            "SPECint95",
            "SPECfp95",
            "SPECint2000",
            "SPECfp2000",
            "TPC-C",
        ]

    def test_trace_cached(self):
        workload = workload_by_name("SPECint95", warm=500, timed=500)
        assert workload.trace() is workload.trace()

    def test_warmup_fraction(self):
        workload = workload_by_name("SPECint95", warm=900, timed=100)
        assert workload.warmup_fraction == pytest.approx(0.9)

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            workload_by_name("SPECjbb")

    def test_smp_workload_name(self):
        assert smp_workload(16).name == "TPC-C (16P)"

    def test_smp_traces_and_regions(self):
        workload = smp_workload(2, warm=300, timed=200)
        traces, regions = workload.smp_traces(2)
        assert len(traces) == len(regions) == 2
        assert all(len(trace) == 500 for trace in traces)


class TestRunnerCaching:
    def test_results_cached(self):
        runner = ExperimentRunner()
        workload = workload_by_name("SPECint95", warm=2000, timed=1000)
        first = runner.run(base_config(), workload)
        second = runner.run(base_config(), workload)
        assert first is second

    def test_cached_results_listing(self):
        runner = ExperimentRunner()
        workload = workload_by_name("SPECint95", warm=2000, timed=1000)
        runner.run(base_config(), workload)
        assert len(runner.cached_results()) == 1


@pytest.fixture(scope="module")
def mini_workloads():
    """Two small workloads so the figure functions run in seconds."""
    return [
        workload_by_name("SPECint95", warm=8000, timed=4000),
        workload_by_name("SPECfp95", warm=8000, timed=4000),
    ]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestFigureFunctions:
    def test_fig08(self, mini_workloads, runner):
        result = fig08_issue_width(mini_workloads, runner)
        assert set(result.ratios) == {"SPECint95", "SPECfp95"}
        # 4-way issue can never be slower than 2-way in this model.
        assert all(ratio >= 0.99 for ratio in result.ratios.values())
        assert "Figure 8" in result.format_table()

    def test_fig09_10(self, mini_workloads, runner):
        result = fig09_10_bht(mini_workloads, runner)
        for name in ("SPECint95", "SPECfp95"):
            assert 0.0 <= result.mispredict_16k[name] <= 1.0
            assert 0.0 <= result.mispredict_4k[name] <= 1.0
        assert "BHT" in result.format_table()

    def test_fig16_17(self, mini_workloads, runner):
        result = fig16_17_prefetch(mini_workloads, runner)
        # Prefetching must cut the demand miss ratio for the FP workload.
        assert (
            result.miss_with_demand["SPECfp95"]
            <= result.miss_without["SPECfp95"] + 1e-9
        )
        assert "prefetch" in result.format_table().lower()

    def test_fig18(self, mini_workloads, runner):
        result = fig18_reservation(mini_workloads, runner)
        # 1RS and 2RS differ by a few percent at most.
        for ratio in result.ratios.values():
            assert 0.9 < ratio < 1.1


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_percent(self):
        assert percent(0.356) == "35.6%"
        assert percent(0.5, 0) == "50%"
