"""Unit tests for the assembled memory hierarchy."""

import pytest

from repro.model.simulator import build_hierarchy, prewarm_regions


@pytest.fixture
def hierarchy(small_config):
    return build_hierarchy(small_config)


class TestDemandPath:
    def test_cold_load_goes_to_memory(self, hierarchy):
        result = hierarchy.load(0, 0x10000)
        assert result.level == "mem"
        assert result.ready_cycle > 60  # at least the DRAM latency

    def test_warm_load_hits_l1(self, hierarchy):
        first = hierarchy.load(0, 0x10000)
        second = hierarchy.load(first.ready_cycle, 0x10000)
        assert second.level == "l1"
        assert (
            second.ready_cycle - first.ready_cycle
            == hierarchy.l1d.geometry.hit_latency
        )

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        # Fill L1D (8KB, 2-way) with lines that map to one (hashed) set.
        target_set = hierarchy.l1d._index_tag(0x10000)[0]
        conflicts = [
            addr for addr in range(0x20000, 0x200000, 0x40)
            if hierarchy.l1d._index_tag(addr)[0] == target_set
        ][:2]
        hierarchy.load(0, 0x10000)
        hierarchy.load(1000, conflicts[0])
        hierarchy.load(2000, conflicts[1])  # evicts 0x10000 from L1
        result = hierarchy.load(5000, 0x10000)
        assert result.level == "l2"

    def test_store_allocates_dirty(self, hierarchy):
        result = hierarchy.store(0, 0x10000)
        assert result.level == "mem"
        from repro.memory.cache import LineState

        assert hierarchy.l1d.probe(0x10000) == LineState.MODIFIED

    def test_fetch_uses_l1i(self, hierarchy):
        first = hierarchy.fetch(0, 0x1000)
        second = hierarchy.fetch(first.ready_cycle, 0x1000)
        assert second.level == "l1"
        assert hierarchy.l1i.stats.demand_accesses == 2

    def test_mshr_coalescing(self, hierarchy):
        first = hierarchy.load(0, 0x10000)
        second = hierarchy.load(1, 0x10008)  # same line, while in flight
        assert second.ready_cycle <= first.ready_cycle + 1
        assert hierarchy.l1d.stats.demand_misses == 2  # secondary miss counted

    def test_tlb_miss_penalty_applied(self, hierarchy):
        result = hierarchy.load(0, 0x10000)
        assert result.tlb_cycles == hierarchy.dtlb.geometry.miss_penalty


class TestPerfectSwitches:
    def test_perfect_l1(self, small_config):
        hierarchy = build_hierarchy(small_config.derived("p", perfect_l1=True))
        result = hierarchy.load(0, 0xDEAD000)
        assert result.level == "l1"
        assert result.ready_cycle == hierarchy.l1d.geometry.hit_latency

    def test_perfect_l2(self, small_config):
        hierarchy = build_hierarchy(small_config.derived("p", perfect_l2=True))
        result = hierarchy.load(0, 0xDEAD000)
        assert result.level in ("l2", "mem")
        # No memory round trip: far less than the DRAM latency.
        assert result.ready_cycle < 60

    def test_perfect_tlb(self, small_config):
        hierarchy = build_hierarchy(small_config.derived("p", perfect_tlb=True))
        result = hierarchy.load(0, 0x10000)
        assert result.tlb_cycles == 0


class TestPrefetchIntegration:
    def test_sequential_misses_prefetch_into_l2(self, hierarchy):
        cycle = 0
        for i in range(6):
            result = hierarchy.load(cycle, 0x40000 + i * 64)
            cycle = result.ready_cycle + 1
        assert hierarchy.prefetcher.stats.issued > 0
        # A line ahead of the stream should already be L2-resident.
        assert hierarchy.l2.resident(0x40000 + 8 * 64)


class TestPrewarm:
    def test_regions_resident_after_prewarm(self, hierarchy):
        regions = {
            "user_code": (0x1000, 4096),
            "user_data": (0x100000, 8192),
            "user_data_hot": (0x100000, 2048),
        }
        prewarm_regions(hierarchy, regions)
        assert hierarchy.l2.resident(0x1000)
        assert hierarchy.l2.resident(0x100000)
        assert hierarchy.l1d.resident(0x100000)  # hot region in L1D
        assert hierarchy.l1i.resident(0x1000)

    def test_code_outlives_large_data(self, small_config):
        hierarchy = build_hierarchy(small_config)
        regions = {
            "user_code": (0x1000, 8 * 1024),
            "user_data": (0x100000, 1024 * 1024),  # 16x the 64KB L2
        }
        prewarm_regions(hierarchy, regions)
        # Code was touched after data, so it survives in the L2.
        assert hierarchy.l2.resident(0x1000)


class TestBankMapping:
    def test_bank_of(self, hierarchy):
        assert hierarchy.bank_of(0x10000) != hierarchy.bank_of(0x10004)
        assert hierarchy.bank_of(0x10000) == hierarchy.bank_of(0x10020)
