"""Tests for text rendering (bar charts, CSV) and trace comparison."""

import pytest

from repro.analysis.plots import (
    bar_chart,
    breakdown_csv,
    grouped_bar_chart,
    ipc_ratio_csv,
    stacked_breakdown_chart,
    to_csv,
)
from repro.trace.compare import compare_traces
from repro.trace.record import make_alu, make_load
from repro.trace.stream import Trace


class TestBarCharts:
    def test_bar_lengths_proportional(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=20)
        line_a, line_b = text.splitlines()
        assert line_b.count("█") == 2 * line_a.count("█")

    def test_title_and_values(self):
        text = bar_chart({"x": 0.5}, title="T", unit="%")
        assert text.startswith("T")
        assert "0.5%" in text

    def test_baseline_marker(self):
        text = bar_chart({"a": 0.5}, width=20, baseline=1.0)
        assert "|" in text

    def test_empty_series(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_grouped(self):
        text = grouped_bar_chart(
            {"w1": {"cfg1": 1.0, "cfg2": 0.5}, "w2": {"cfg1": 0.8}}
        )
        assert "w1:" in text and "cfg2" in text

    def test_stacked_sums(self):
        text = stacked_breakdown_chart(
            {"w": {"core": 0.5, "sx": 0.5}}, order=["core", "sx"], width=10
        )
        # Legend plus one row.
        assert "core" in text
        row = text.splitlines()[-1]
        assert len(row.split()[-1]) == 10


class TestCsv:
    def test_roundtrip_fields(self):
        text = to_csv([{"a": 1, "b": 2}], ["a", "b"])
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,2"

    def test_empty(self):
        assert to_csv([]) == ""

    def test_figure_exports(self):
        from repro.analysis.figures import Fig07Result, IpcRatioResult
        from repro.model.perfect import StallBreakdown

        ratio = IpcRatioResult("t", "base", "alt", {"w": 1.05})
        assert "w,1.05" in ipc_ratio_csv(ratio)
        breakdown = Fig07Result(
            [StallBreakdown("w", 100, 0.5, 0.2, 0.2, 0.1)]
        )
        text = breakdown_csv(breakdown)
        assert "workload,core,branch,ibs_tlb,sx" in text


class TestCompareTraces:
    def make(self, n, offset=0):
        records = []
        pc = 0x1000
        for i in range(n):
            records.append(make_load(pc, dest=8, addr_srcs=(1,), ea=0x9000 + 8 * (i + offset)))
            pc += 4
        return Trace(records)

    def test_identical(self):
        a = self.make(10)
        b = self.make(10)
        comparison = compare_traces(a, b)
        assert comparison.identical
        assert comparison.record_match_fraction == 1.0
        assert comparison.code_overlap == 1.0

    def test_divergence_detected(self):
        a = self.make(10)
        b = self.make(10, offset=5)
        comparison = compare_traces(a, b)
        assert not comparison.identical
        assert comparison.first_divergence == 0
        assert comparison.opcode_match_fraction == 1.0  # same classes

    def test_length_mismatch(self):
        comparison = compare_traces(self.make(10), self.make(5))
        assert comparison.length_a == 10 and comparison.length_b == 5
        assert not comparison.identical

    def test_mix_distance_zero_for_same_mix(self):
        comparison = compare_traces(self.make(10), self.make(10, offset=3))
        assert comparison.mix_distance == pytest.approx(0.0)

    def test_empty_traces(self):
        comparison = compare_traces(Trace([]), Trace([]))
        assert comparison.identical

    def test_as_dict(self):
        data = compare_traces(self.make(3), self.make(3)).as_dict()
        assert data["record_match_fraction"] == 1.0


class TestScorecard:
    def test_scorecard_grading(self):
        from repro.analysis.regress import Scorecard

        card = Scorecard()
        card.add("F", "passes", 1.0, lambda v: v > 0.5)
        card.add("F", "weak", 0.4, lambda v: v > 0.5, weak_when=lambda v: v > 0.3)
        card.add("F", "fails", 0.1, lambda v: v > 0.5)
        verdicts = [claim.verdict for claim in card.claims]
        assert verdicts == ["PASS", "WEAK", "FAIL"]
        assert len(card.failed) == 1
        text = card.format_table()
        assert "1 PASS, 1 WEAK, 1 FAIL" in text
