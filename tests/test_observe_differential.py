"""Property-based differential test of the observability layer.

Randomized synthetic traces are lowered to executable test programs by
the ReverseTracer and replayed through both verification paths
(:func:`repro.verify.cross_check`): the execution-driven logic-simulator
analog and the trace-driven performance model.  For every seed/profile
draw the two paths must agree on cycles *and* produce byte-identical CPI
stacks — the accountant is a pure function of pipeline state, so any
divergence is an observability bug even when the timing matches.

Hypothesis draws are seeded and bounded (small traces, few examples) so
the suite stays CI-fast while still exploring the profile × seed space.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.observe.cpistack import total
from repro.trace.stream import Trace
from repro.trace.synth import generate_trace, standard_profiles
from repro.verify import LogicSimulator, ReverseTracer, cross_check

_PROFILES = sorted(standard_profiles())

#: Keep each example small: the value is in the seed/profile diversity.
_TRACE_LEN = 600


def _synth_program(profile_name: str, seed: int):
    trace = generate_trace(
        standard_profiles()[profile_name], _TRACE_LEN, seed=seed
    )
    program, _fidelity = ReverseTracer().generate(trace)
    return program


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,  # fixed corpus: reproducible in CI
    suppress_health_check=[HealthCheck.too_slow],
)
def test_paths_agree_on_cycles_and_cpi_stack(profile, seed):
    """cross_check enforces cycle AND CPI-stack agreement; both conserve."""
    program = _synth_program(profile, seed)
    result = cross_check(program, max_steps=4 * _TRACE_LEN)
    assert result.cycles > 0
    assert total(result.core.cpi_stack) == result.cycles


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_stack_is_deterministic(seed):
    """The same trace simulated twice yields the identical stack."""
    trace = generate_trace(standard_profiles()["SPECint95"], 500, seed=seed)
    model = PerformanceModel(base_config())
    first = model.run(Trace(trace.records, name="a"), warmup_fraction=0.0)
    second = model.run(Trace(trace.records, name="b"), warmup_fraction=0.0)
    assert first.core.cpi_stack == second.core.cpi_stack
    assert first.cycles == second.cycles


@given(
    profile=st.sampled_from(_PROFILES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(
    max_examples=4,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_execution_driven_path_conserves(profile, seed):
    """The logic-simulator analog conserves cycles on replayed programs."""
    program = _synth_program(profile, seed)
    result = LogicSimulator(max_steps=4 * _TRACE_LEN).run(program)
    assert total(result.core.cpi_stack) == result.cycles
