"""Extra verification-path tests: determinism and divergence detection."""

import pytest

from repro.common.errors import VerificationError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.program import Program
from repro.model.config import base_config, l1_32k_1w_3c
from repro.verify import LogicSimulator, cross_check


def counted_loop_program(iterations=50, body=6):
    """A self-terminating counted loop exercising compare/branch/memory."""
    program = Program(name="loop")
    program.append(Instruction(Mnemonic.MOV, rd=1, imm=iterations))
    program.append(Instruction(Mnemonic.MOV, rd=2, imm=0))
    program.append(Instruction(Mnemonic.ADD, rd=2, rs1=2, imm=1, label="top"))
    for i in range(body):
        program.append(Instruction(Mnemonic.ADD, rd=8 + i % 4, rs1=2, imm=i))
    program.append(Instruction(Mnemonic.STX, rd=2, rs1=0, imm=0x4000))
    program.append(Instruction(Mnemonic.LDX, rd=9, rs1=0, imm=0x4000))
    program.append(Instruction(Mnemonic.SUBCC, rd=0, rs1=2, rs2=1))
    program.append(Instruction(Mnemonic.BNE, target="top"))
    program.append(Instruction(Mnemonic.HALT))
    return program


class TestLogicSimulator:
    def test_counted_loop_halts(self):
        result = LogicSimulator().run(counted_loop_program())
        assert result.halted
        assert result.instructions > 0
        assert result.cycles > result.instructions / 4  # IPC <= 4

    def test_deterministic(self):
        program = counted_loop_program()
        a = LogicSimulator().run(program)
        b = LogicSimulator().run(program)
        assert a.cycles == b.cycles

    def test_config_sensitivity(self):
        """Different machine configs time the same program differently."""
        program = counted_loop_program(iterations=200)
        fast = LogicSimulator(base_config()).run(program)
        small = LogicSimulator(l1_32k_1w_3c()).run(program)
        assert fast.instructions == small.instructions
        # Timing may legitimately differ; at minimum both complete.
        assert fast.cycles > 0 and small.cycles > 0

    def test_cross_check_loop(self):
        result = cross_check(counted_loop_program())
        assert result.halted

    def test_cross_check_different_configs_differ(self):
        """Cross-check passes per config even though configs disagree."""
        program = counted_loop_program(iterations=100)
        a = cross_check(program, config=base_config())
        b = cross_check(program, config=l1_32k_1w_3c())
        assert a.instructions == b.instructions
