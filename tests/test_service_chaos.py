"""Chaos tests: the campaign service under injected distributed faults.

The headline invariant: a campaign driven through
:class:`~repro.service.CampaignService` with worker kills, hangs, lease
expiries, stalled heartbeats, duplicate delivery, and store corruption
injected must **complete** and produce results **bit-identical** to a
fault-free serial run.  The simulation is a pure function of
(config, seeded trace), the store is content-addressed, and completion
is idempotent — so no amount of retrying, re-delivery, or orphaned
execution can change a single statistic.
"""

from __future__ import annotations

import pytest

from repro.analysis.policy import RunPolicy
from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import workload_by_name
from repro.common import faults
from repro.common.errors import QueueFull
from repro.model.config import base_config
from repro.model.stats import sim_result_from_dict
from repro.service import CampaignService, JobQueue, make_spec, spec_key
from repro.service.queue import DEAD, DONE, PENDING

WARM = 2_000
TIMED = 800


@pytest.fixture(autouse=True)
def _clean_faults():
    """No fault spec may leak into other tests (or their workers)."""
    yield
    faults.install_spec(None)
    faults.reset()


def _service(tmp_path, **kwargs) -> CampaignService:
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault(
        "policy", RunPolicy(retries=3, backoff_base=0.01, backoff_max=0.05)
    )
    return CampaignService(
        tmp_path / "queue.jsonl", cache_dir=str(tmp_path / "cache"), **kwargs
    )


def _serial_stats(workload_name: str) -> dict:
    """Fault-free serial reference statistics for one point."""
    result = ExperimentRunner().run(
        base_config(), workload_by_name(workload_name, warm=WARM, timed=TIMED)
    )
    return result.as_dict(include_speed=False)


def _service_stats(service: CampaignService, key: str) -> dict:
    payload = service.result(key)
    assert payload is not None, "service result missing from store"
    return sim_result_from_dict(payload).as_dict(include_speed=False)


class TestChaosBitIdentity:
    def test_combined_fault_storm_converges_bit_identically(self, tmp_path):
        """Worker kill + hang + store corruption in one campaign.

        The acceptance criterion of the service: chaos-injected
        campaigns complete with results bit-identical to a fault-free
        serial run.
        """
        expected = {
            name: _serial_stats(name) for name in ("SPECint95", "SPECfp95")
        }

        faults.install_spec(
            "worker-crash,times=1,match=SPECint95;"
            "worker-hang,times=1,hang=60,match=SPECfp95;"
            "store-corrupt,times=1"
        )
        service = _service(
            tmp_path,
            policy=RunPolicy(
                timeout=3.0, retries=3, backoff_base=0.01, backoff_max=0.05
            ),
        )
        keys = {
            name: service.submit_point(name, warm=WARM, timed=TIMED)
            for name in expected
        }
        service.run()
        counts = service.queue.counts()
        assert counts["done"] == 2 and counts["dead"] == 0
        # The storm actually happened.  (The hang may be reaped either
        # by the watchdog or as collateral of the crash's pool break —
        # both are charged failures.)
        assert service.queue.stats.failures >= 2
        assert service.stats.pool_restarts >= 1
        for name, key in keys.items():
            assert _service_stats(service, key) == expected[name]
        # Every injected failure was recovered from, with latency recorded.
        assert service.stats.recovery_seconds
        service.close()

    def test_hung_worker_hits_watchdog_and_recovers(self, tmp_path):
        """A wedged worker cannot be cancelled: the watchdog kills the
        pool, charges the run, and the spared retry completes."""
        expected = _serial_stats("SPECint95")
        faults.install_spec("worker-hang,times=1,hang=60")
        service = _service(
            tmp_path,
            policy=RunPolicy(
                timeout=2.0, retries=2, backoff_base=0.01, backoff_max=0.05
            ),
        )
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.stats.timeouts == 1
        assert service.stats.pool_restarts >= 1
        assert service.queue.counts()["done"] == 1
        assert _service_stats(service, key) == expected
        service.close()

    def test_store_corruption_is_recomputed(self, tmp_path):
        """store-corrupt damages the first stored result post-rename; the
        coordinator's read-back detects it and recomputes."""
        expected = _serial_stats("SPECint95")
        faults.install_spec("store-corrupt,times=1")
        service = _service(tmp_path)
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.queue.counts()["done"] == 1
        assert service.queue.stats.failures == 1  # the corrupt round
        assert _service_stats(service, key) == expected
        service.close()

    def test_kill_mid_write_never_exposes_a_torn_entry(self, tmp_path):
        """kill-mid-write dies between temp-write and rename: the store
        must show *no* entry (not a torn one) and the retry must land."""
        expected = _serial_stats("SPECint95")
        faults.install_spec("kill-mid-write,times=1")
        service = _service(tmp_path)
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.queue.counts()["done"] == 1
        assert service.stats.pool_restarts >= 1  # the kill broke the pool
        assert _service_stats(service, key) == expected
        # The atomic protocol leaves no half-written .json entries ever;
        # at most an orphaned temp file from the killed worker remains.
        assert service.cache.stats.corrupt == 0
        service.close()


class TestLeaseChaos:
    def test_forced_lease_expiry_orphan_still_completes(self, tmp_path):
        """lease-expiry requeues a healthy running job; either the orphan
        or the redispatch completes it — exactly once."""
        expected = _serial_stats("SPECint95")
        faults.install_spec("lease-expiry,times=1")
        # Fast ticks so lease upkeep observes the run in flight even on
        # a machine where the simulation itself is quick.
        service = _service(tmp_path, poll_interval=0.02)
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.queue.stats.lease_expiries == 1
        assert service.queue.counts()["done"] == 1
        assert _service_stats(service, key) == expected
        service.close()

    def test_stalled_heartbeats_starve_lease_but_campaign_completes(
        self, tmp_path
    ):
        """heartbeat-stall swallows every renewal: the lease lapses while
        the worker still computes.  The orphaned run's result is accepted
        idempotently (or the redispatch wins); either way the point
        completes bit-identically."""
        expected = _serial_stats("TPC-C")
        faults.install_spec("heartbeat-stall,times=1000")
        service = _service(tmp_path, lease_seconds=0.25, poll_interval=0.02)
        key = service.submit_point("TPC-C", warm=WARM, timed=TIMED)
        service.run()
        assert service.queue.stats.lease_expiries >= 1
        assert service.queue.counts()["done"] == 1
        assert service.queue.stats.completions == 1
        assert _service_stats(service, key) == expected
        service.close()

    def test_duplicate_delivery_simulates_once_effectively(self, tmp_path):
        """duplicate-delivery hands the same job to a second worker; the
        idempotent completion keeps exactly one result."""
        expected = _serial_stats("SPECint95")
        faults.install_spec("duplicate-delivery,times=1")
        service = _service(tmp_path)
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.queue.stats.duplicate_deliveries == 1
        assert service.stats.dispatched == 2  # both deliveries executed
        assert service.queue.stats.completions == 1  # but one completion
        assert service.queue.stats.duplicate_completions == 1
        assert service.queue.counts()["done"] == 1
        assert _service_stats(service, key) == expected
        service.close()


class TestSingleFlight:
    def test_n_duplicate_submissions_one_simulation(self, tmp_path):
        """Acceptance criterion: N submissions, exactly one simulation."""
        service = _service(tmp_path)
        keys = {
            service.submit_point("SPECint95", warm=WARM, timed=TIMED)
            for _ in range(5)
        }
        assert len(keys) == 1
        service.run()
        assert service.queue.stats.submitted == 5
        assert service.queue.stats.deduped == 4
        assert service.stats.dispatched == 1  # exactly one simulation
        assert service.queue.counts()["done"] == 1
        service.close()

    def test_resubmission_after_completion_hits_cache(self, tmp_path):
        service = _service(tmp_path)
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.stats.dispatched == 1
        service.close()
        # Same journal: the replay already knows the job is done.
        service2 = _service(tmp_path)
        assert service2.submit_point("SPECint95", warm=WARM, timed=TIMED) == key
        service2.run()
        assert service2.stats.dispatched == 0
        assert service2.queue.stats.deduped == 1
        service2.close()
        # Fresh journal, same result store: the point completes straight
        # from the cache at submit time, never reaching the pool.
        service3 = CampaignService(
            tmp_path / "queue2.jsonl", cache_dir=str(tmp_path / "cache")
        )
        assert service3.submit_point("SPECint95", warm=WARM, timed=TIMED) == key
        service3.run()
        assert service3.stats.dispatched == 0
        assert service3.stats.cache_hits == 1
        assert service3.queue.jobs[key].source == "cache"
        service3.close()


class TestCrashRecovery:
    def test_new_instance_recovers_a_died_services_leases(self, tmp_path):
        """A service that died holding claims: its successor replays the
        journal, expires the stale leases, and finishes the campaign."""
        cache_dir = str(tmp_path / "cache")
        dead_service = CampaignService(
            tmp_path / "queue.jsonl", cache_dir=cache_dir, lease_seconds=0.3
        )
        key_a = dead_service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        key_b = dead_service.submit_point("SPECfp95", warm=WARM, timed=TIMED)
        # Claim one job, then "crash" without completing or renewing —
        # the journal now shows a RUNNING job under a soon-stale lease.
        claimed = dead_service.queue.claim(dead_service.worker_id)
        assert claimed is not None
        dead_service.queue.close()  # no pool was ever started

        service = CampaignService(
            tmp_path / "queue.jsonl",
            cache_dir=cache_dir,
            lease_seconds=5.0,
            policy=RunPolicy(retries=2, backoff_base=0.01, backoff_max=0.05),
            poll_interval=0.1,
        )
        assert service.queue.resumed
        service.run()
        counts = service.queue.counts()
        assert counts["done"] == 2 and counts["pending"] == 0
        assert service.queue.stats.lease_expiries >= 1
        for key, name in ((key_a, "SPECint95"), (key_b, "SPECfp95")):
            assert _service_stats(service, key) == _serial_stats(name)
        service.close()


class TestDegradation:
    def test_bounded_queue_sheds_local_submissions(self, tmp_path):
        service = _service(tmp_path, capacity=1)
        service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        with pytest.raises(QueueFull, match="capacity"):
            service.submit_point("SPECfp95", warm=WARM, timed=TIMED)
        # Duplicates of the existing backlog still single-flight fine.
        service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.close()

    def test_serve_stale_when_store_goes_unreadable(self, tmp_path):
        """After a result is served once, destroying its store entry
        degrades to the remembered copy and schedules a recompute."""
        service = _service(tmp_path)
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        first = service.result(key)
        assert first is not None
        # Bitrot the stored entry beyond recognition.
        service.cache.path(key).write_text("garbage", encoding="utf-8")
        stale = service.result(key)
        assert stale == first  # served from memory, bit-identical
        assert service.stats.stale_serves == 1
        # The job was reopened so the store heals on the next cycle.
        assert service.queue.jobs[key].state == PENDING
        service.run()
        assert service.queue.jobs[key].state == DONE
        assert service.cache.load(key) is not None
        service.close()

    def test_on_failure_skip_marks_dead_and_continues(self, tmp_path):
        """A persistently failing job goes dead without sinking the
        campaign; healthy jobs still complete."""
        faults.install_spec("worker-raise,times=100,match=SPECint95")
        service = _service(
            tmp_path,
            policy=RunPolicy(
                retries=1,
                on_failure="skip",
                backoff_base=0.01,
                backoff_max=0.05,
            ),
        )
        bad = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        good = service.submit_point("SPECfp95", warm=WARM, timed=TIMED)
        service.run()
        assert service.queue.jobs[bad].state == DEAD
        assert service.queue.jobs[good].state == DONE
        assert service.stats.skipped == ["SPECint95@SPARC64-V"]
        assert _service_stats(service, good) == _serial_stats("SPECfp95")
        service.close()

    def test_on_failure_retry_falls_back_in_process(self, tmp_path):
        """The default policy's last resort: rerun in the service
        process, where injected worker faults do not fire."""
        expected = _serial_stats("SPECint95")
        faults.install_spec("worker-raise,times=100")
        service = _service(
            tmp_path,
            policy=RunPolicy(retries=1, backoff_base=0.01, backoff_max=0.05),
        )
        key = service.submit_point("SPECint95", warm=WARM, timed=TIMED)
        service.run()
        assert service.stats.in_process_fallbacks == 1
        assert service.queue.counts()["done"] == 1
        assert _service_stats(service, key) == expected
        service.close()
