"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.events import EventQueue
from repro.common.rng import DeterministicRng
from repro.memory.bus import Bus
from repro.memory.cache import LineState, SetAssociativeCache
from repro.memory.mshr import MshrFile
from repro.memory.params import BusParams, CacheGeometry
from repro.frontend.bht import BhtParams, BranchHistoryTable
from repro.trace.io import read_trace, write_trace
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.isa.opcodes import OpClass


# ---------------------------------------------------------------------------
# Cache invariants.
# ---------------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


@given(st.lists(st.tuples(addresses, st.booleans()), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_cache_capacity_never_exceeded(operations):
    cache = SetAssociativeCache(CacheGeometry("c", 1024, 2, line_bytes=64))
    capacity = cache.geometry.sets * cache.geometry.ways
    for address, is_write in operations:
        if not cache.lookup(address, is_write=is_write):
            cache.fill(
                address,
                state=LineState.MODIFIED if is_write else LineState.EXCLUSIVE,
            )
        assert cache.valid_line_count() <= capacity


@given(st.lists(addresses, min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_fill_makes_resident(addrs):
    cache = SetAssociativeCache(CacheGeometry("c", 4096, 4, line_bytes=64))
    for address in addrs:
        cache.fill(address)
        assert cache.resident(address)  # most recent fill always present


@given(st.lists(addresses, min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_cache_stats_consistent(addrs):
    cache = SetAssociativeCache(CacheGeometry("c", 2048, 2, line_bytes=64))
    for address in addrs:
        if not cache.lookup(address):
            cache.fill(address)
    stats = cache.stats
    assert stats.demand_misses <= stats.demand_accesses == len(addrs)
    assert 0.0 <= stats.demand_miss_ratio <= 1.0


# ---------------------------------------------------------------------------
# MSHR invariants.
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),  # line index
            st.integers(min_value=1, max_value=500),  # fill delay
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_mshr_never_overflows(requests):
    mshr = MshrFile(4)
    cycle = 0
    for line_index, delay in requests:
        cycle += 1
        line = line_index * 64
        if mshr.outstanding(line, cycle) is not None:
            continue
        if mshr.can_allocate(cycle):
            mshr.allocate(line, cycle + delay, cycle)
        assert len(mshr) <= 4


# ---------------------------------------------------------------------------
# Bus invariants.
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),  # inter-arrival gap
            st.integers(min_value=1, max_value=256),  # payload bytes
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_bus_transfers_never_overlap(requests):
    bus = Bus(BusParams("b", latency=5, bytes_per_cycle=16))
    cycle = 0
    previous_start = -1
    previous_busy = 0
    for gap, payload in requests:
        cycle += gap
        timing = bus.transfer(cycle, payload)
        assert timing.start >= cycle
        assert timing.start >= previous_busy  # no overlap with prior transfer
        assert timing.done >= timing.start
        previous_busy = timing.start + bus.params.occupancy(payload)
        previous_start = timing.start


# ---------------------------------------------------------------------------
# BHT: misprediction ratio bounded, training converges.
# ---------------------------------------------------------------------------


@given(st.lists(st.booleans(), min_size=8, max_size=200), st.integers(0, 1 << 30))
@settings(max_examples=50, deadline=None)
def test_bht_statistics_bounded(outcomes, pc_seed):
    table = BranchHistoryTable(BhtParams("t", entries=64, ways=2, access_latency=1))
    pc = (pc_seed & ~0x3) or 4
    for taken in outcomes:
        predicted = table.predict(pc)
        table.update(pc, taken, predicted)
    assert table.stats.conditional_branches == len(outcomes)
    assert 0.0 <= table.stats.misprediction_ratio <= 1.0


@given(st.integers(1, 1 << 30))
@settings(max_examples=30, deadline=None)
def test_bht_constant_branch_converges(pc_seed):
    table = BranchHistoryTable(BhtParams("t", entries=64, ways=2, access_latency=1))
    pc = (pc_seed & ~0x3) or 4
    for _ in range(10):
        table.update(pc, True, table.predict(pc))
    assert table.predict(pc) is True


# ---------------------------------------------------------------------------
# Trace I/O round trip.
# ---------------------------------------------------------------------------

record_strategy = st.builds(
    TraceRecord,
    pc=st.integers(min_value=0, max_value=(1 << 47) - 1).map(lambda v: v & ~0x3),
    op=st.sampled_from([OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE, OpClass.NOP]),
    dest=st.integers(min_value=-1, max_value=65),
    srcs=st.lists(st.integers(min_value=0, max_value=65), max_size=3).map(tuple),
    ea=st.integers(min_value=-1, max_value=(1 << 47) - 1),
    size=st.sampled_from([0, 4, 8]),
    privileged=st.booleans(),
)


@given(st.lists(record_strategy, max_size=50))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_trace_io_roundtrip(tmp_path_factory, records):
    trace = Trace(records, name="prop", cpu=1)
    directory = tmp_path_factory.mktemp("io")
    for suffix in (".jsonl", ".trc"):
        path = directory / f"t{suffix}"
        write_trace(trace, path)
        assert read_trace(path).records == trace.records


# ---------------------------------------------------------------------------
# Event queue ordering.
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_event_queue_pops_in_cycle_order(cycles):
    queue = EventQueue()
    for index, cycle in enumerate(cycles):
        queue.schedule(cycle, (cycle, index))
    popped = list(queue.pop_due(1000))
    assert [item[0] for item in popped] == sorted(cycles)
    # Ties keep insertion order.
    for earlier, later in zip(popped, popped[1:]):
        if earlier[0] == later[0]:
            assert earlier[1] < later[1]


# ---------------------------------------------------------------------------
# Synthetic traces: control-flow consistency for arbitrary seeds.
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_generated_traces_always_consistent(seed):
    from repro.trace.synth import generate_trace, standard_profiles

    trace = generate_trace(standard_profiles()["SPECint95"], 1500, seed=seed)
    trace.validate()
    assert len(trace) == 1500


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_rng_geometric_always_positive(seed):
    rng = DeterministicRng(seed)
    assert all(rng.geometric(5.0) >= 1 for _ in range(100))
