"""Unit tests for the L2 hardware-prefetch engine."""

import pytest

from repro.memory.params import PrefetchParams
from repro.memory.prefetch import PrefetchEngine


def feed_lines(engine, lines):
    out = []
    for line in lines:
        out.extend(engine.on_demand_miss(line * 64))
    return out


class TestStreamDetection:
    def test_sequential_stream_confirms(self):
        engine = PrefetchEngine(PrefetchParams(confirmation_threshold=2))
        issued = feed_lines(engine, [100, 101, 102])
        assert issued  # confirmed on the third miss
        assert all(address % 64 == 0 for address in issued)

    def test_prefetch_runs_ahead(self):
        params = PrefetchParams(degree=2, distance=2, confirmation_threshold=2)
        engine = PrefetchEngine(params)
        issued = feed_lines(engine, [100, 101, 102])
        lines = [address // 64 for address in issued]
        assert lines == [104, 105]

    def test_negative_stride(self):
        engine = PrefetchEngine(PrefetchParams(confirmation_threshold=2))
        issued = feed_lines(engine, [200, 199, 198])
        lines = [address // 64 for address in issued]
        assert all(line < 198 for line in lines)

    def test_strided_stream(self):
        engine = PrefetchEngine(PrefetchParams(confirmation_threshold=2))
        issued = feed_lines(engine, [100, 103, 106])
        lines = [address // 64 for address in issued]
        assert lines[0] == 106 + 3 * 2

    def test_random_misses_no_prefetch(self):
        engine = PrefetchEngine(PrefetchParams())
        issued = feed_lines(engine, [100, 5000, 90, 12345, 777])
        assert issued == []

    def test_below_threshold_silent(self):
        engine = PrefetchEngine(PrefetchParams(confirmation_threshold=3))
        issued = feed_lines(engine, [100, 101])
        assert issued == []

    def test_disabled(self):
        engine = PrefetchEngine(PrefetchParams(enabled=False))
        assert feed_lines(engine, [100, 101, 102, 103]) == []

    def test_repeat_miss_ignored(self):
        engine = PrefetchEngine(PrefetchParams(confirmation_threshold=2))
        issued = feed_lines(engine, [100, 100, 100])
        assert issued == []


class TestInterleaving:
    def test_concurrent_streams(self):
        """Interleaved streams must each confirm (the SPECfp case)."""
        engine = PrefetchEngine(PrefetchParams(streams=8, confirmation_threshold=2))
        streams = [1000, 2000, 3000, 4000]
        issued = []
        for step in range(4):
            for base in streams:
                issued.extend(engine.on_demand_miss((base + step) * 64))
        assert len(issued) >= 8  # every stream eventually prefetches

    def test_active_stream_survives_light_noise(self):
        """LRU keeps an active stream while noise churns other entries.

        (With a 4-entry table, four noise misses *would* evict the stream
        — LRU protects only streams touched more often than the table
        turns over, which is the behaviour that lets finished streams age
        out; see the victim-selection comment in the engine.)
        """
        engine = PrefetchEngine(PrefetchParams(streams=4, confirmation_threshold=2))
        feed_lines(engine, [100, 101, 102])  # confirmed
        feed_lines(engine, [9000, 12000, 15000])  # three noise allocations
        issued = feed_lines(engine, [103])
        assert issued, "established stream lost to light noise"

    def test_stats(self):
        engine = PrefetchEngine(PrefetchParams(confirmation_threshold=2))
        feed_lines(engine, [100, 101, 102])
        assert engine.stats.triggers == 3
        assert engine.stats.issued >= 1
