"""Unit tests for the fetch unit and RAS."""

import pytest

from repro.frontend.bht import BHT_4K_2W_1T, BHT_16K_4W_2T
from repro.frontend.fetch import FetchUnit, FrontEndParams
from repro.frontend.ras import ReturnAddressStack
from repro.isa.opcodes import OpClass
from repro.model.simulator import build_hierarchy
from repro.trace.record import TraceRecord, make_alu, make_branch
from repro.trace.stream import Trace


def make_fetch(records, config, frontend=None, bht=None):
    hierarchy = build_hierarchy(config)
    # Pre-warm the I-side so fetch timing is deterministic.
    for record in records:
        if not hierarchy.l1i.lookup(record.pc):
            hierarchy.l2.lookup(record.pc)
            hierarchy.l2.fill(record.pc)
            hierarchy.l1i.fill(record.pc)
        hierarchy.itlb.translate(record.pc)
    hierarchy.l1i.stats.__init__()
    unit = FetchUnit(
        Trace(records),
        hierarchy,
        bht or BHT_16K_4W_2T,
        frontend or FrontEndParams(),
    )
    return unit


class TestRas:
    def test_push_pop_match(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        assert ras.predict_return(0x100)
        assert ras.accuracy == 1.0

    def test_mismatch(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        assert not ras.predict_return(0x200)

    def test_underflow(self):
        ras = ReturnAddressStack(4)
        assert not ras.predict_return(0x100)

    def test_depth_limit_drops_oldest(self):
        ras = ReturnAddressStack(2)
        for address in (1, 2, 3):
            ras.push(address)
        assert ras.predict_return(3)
        assert ras.predict_return(2)
        assert not ras.predict_return(1)  # dropped


class TestFetchGroups:
    def test_sequential_delivery(self, small_config):
        records = [make_alu(0x1000 + 4 * i, dest=8, srcs=()) for i in range(16)]
        unit = make_fetch(records, small_config)
        unit.step(0)
        popped = unit.pop_ready(0 + unit.params.pipeline_depth, 8)
        assert len(popped) == 8  # one full 32-byte group

    def test_group_respects_alignment(self, small_config):
        # Start mid-group: 0x1010 leaves only 4 slots to the boundary.
        records = [make_alu(0x1010 + 4 * i, dest=8, srcs=()) for i in range(8)]
        unit = make_fetch(records, small_config)
        unit.step(0)
        popped = unit.pop_ready(5, 8)
        assert len(popped) == 4

    def test_stops_at_taken_branch(self, small_config):
        records = [
            make_alu(0x1000, dest=8, srcs=()),
            make_branch(0x1004, taken=True, target=0x2000),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        unit = make_fetch(records, small_config)
        unit.step(0)
        popped = unit.pop_ready(5, 8)
        assert len(popped) == 2  # group ends at the taken branch

    def test_taken_branch_bubbles(self, small_config):
        records = [
            make_branch(0x1000, taken=True, target=0x2000, conditional=False),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        unit = make_fetch(records, small_config)
        unit.step(0)
        bubbles = unit.bht.params.access_latency
        # Fetch must be stalled for `bubbles` cycles after the branch.
        for cycle in range(1, 1 + bubbles):
            before = len(unit._buffer)
            unit.step(cycle)
            assert len(unit._buffer) == before
        unit.step(1 + bubbles)
        assert len(unit._buffer) == 2

    def test_one_bubble_with_fast_bht(self, small_config):
        records = [
            make_branch(0x1000, taken=True, target=0x2000, conditional=False),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        unit = make_fetch(records, small_config, bht=BHT_4K_2W_1T)
        unit.step(0)
        unit.step(1)  # single bubble
        unit.step(2)
        assert len(unit._buffer) == 2

    def test_exhausted(self, small_config):
        records = [make_alu(0x1000, dest=8, srcs=())]
        unit = make_fetch(records, small_config)
        unit.step(0)
        assert unit.exhausted


class TestMisprediction:
    def test_mispredict_blocks_fetch(self, small_config):
        # Untrained BHT predicts not-taken; the branch is taken -> mispredict.
        records = [
            make_branch(0x1000, taken=True, target=0x2000),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        unit = make_fetch(records, small_config)
        unit.step(0)
        assert unit._buffer[0].mispredicted
        for cycle in range(1, 6):
            unit.step(cycle)
        assert len(unit._buffer) == 1  # blocked until redirect

    def test_redirect_resumes(self, small_config):
        records = [
            make_branch(0x1000, taken=True, target=0x2000),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        unit = make_fetch(records, small_config)
        unit.step(0)
        unit.redirect(10)
        resume = 10 + unit.params.redirect_penalty
        unit.step(resume)
        assert len(unit._buffer) == 2

    def test_perfect_prediction_never_blocks(self, small_config):
        records = [
            make_branch(0x1000, taken=True, target=0x2000),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        frontend = FrontEndParams(perfect_prediction=True)
        unit = make_fetch(records, small_config, frontend=frontend)
        unit.step(0)
        assert not unit._buffer[0].mispredicted


class TestIcacheMiss:
    def test_miss_stalls_then_delivers(self, small_config):
        records = [make_alu(0x1000, dest=8, srcs=())]
        hierarchy = build_hierarchy(small_config)
        unit = FetchUnit(Trace(records), hierarchy, BHT_16K_4W_2T, FrontEndParams())
        unit.step(0)  # cold miss
        assert unit.buffer_empty()
        assert unit.icache_stall_cycles > 0
        ready = unit._stall_until
        unit.step(ready)
        assert len(unit._buffer) == 1
        # Only one L1I demand access recorded despite the retry.
        assert hierarchy.l1i.stats.demand_accesses == 1
