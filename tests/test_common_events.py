"""Unit tests for repro.common.events."""

from repro.common.events import EventQueue


class TestEventQueue:
    def test_empty(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert list(queue.pop_due(100)) == []

    def test_orders_by_cycle(self):
        queue = EventQueue()
        queue.schedule(5, "b")
        queue.schedule(3, "a")
        queue.schedule(9, "c")
        assert queue.next_cycle() == 3
        assert list(queue.pop_due(5)) == ["a", "b"]
        assert list(queue.pop_due(9)) == ["c"]

    def test_ties_preserve_insertion_order(self):
        queue = EventQueue()
        for index in range(10):
            queue.schedule(7, index)
        assert list(queue.pop_due(7)) == list(range(10))

    def test_pop_due_leaves_future(self):
        queue = EventQueue()
        queue.schedule(1, "now")
        queue.schedule(10, "later")
        assert list(queue.pop_due(5)) == ["now"]
        assert len(queue) == 1

    def test_unorderable_payloads(self):
        queue = EventQueue()
        queue.schedule(1, {"a": 1})
        queue.schedule(1, {"b": 2})
        assert len(list(queue.pop_due(1))) == 2

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1, "x")
        queue.clear()
        assert not queue
