"""Unit tests for TraceRecord semantics."""

from repro.isa.opcodes import OpClass
from repro.isa.registers import ICC
from repro.trace.record import (
    NO_ADDR,
    NO_REG,
    TraceRecord,
    make_alu,
    make_branch,
    make_load,
    make_store,
)


class TestPredicates:
    def test_load(self):
        record = make_load(0x100, dest=8, addr_srcs=(1,), ea=0x2000)
        assert record.is_load and record.is_memory and not record.is_store
        assert not record.is_branch

    def test_store(self):
        record = make_store(0x100, srcs=(1, 9), ea=0x2000)
        assert record.is_store and record.is_memory
        assert record.dest == NO_REG

    def test_branch_kinds(self):
        cond = make_branch(0x100, taken=True, target=0x200)
        assert cond.is_branch and cond.is_conditional_branch
        uncond = make_branch(0x100, taken=True, target=0x200, conditional=False)
        assert uncond.is_branch and not uncond.is_conditional_branch
        call = TraceRecord(0x100, OpClass.CALL, taken=True, target=0x200)
        ret = TraceRecord(0x100, OpClass.RETURN, taken=True, target=0x200)
        assert call.is_branch and ret.is_branch

    def test_alu(self):
        record = make_alu(0x100, dest=8, srcs=(1, 2))
        assert not record.is_branch and not record.is_memory


class TestNextPc:
    def test_sequential(self):
        record = make_alu(0x100, dest=8, srcs=())
        assert record.next_pc() == 0x104
        assert record.fall_through() == 0x104

    def test_taken_branch(self):
        record = make_branch(0x100, taken=True, target=0x500)
        assert record.next_pc() == 0x500

    def test_not_taken_branch(self):
        record = make_branch(0x100, taken=False, target=0x500)
        assert record.next_pc() == 0x104


class TestEquality:
    def test_equal_records(self):
        a = make_load(0x100, dest=8, addr_srcs=(1,), ea=0x2000)
        b = make_load(0x100, dest=8, addr_srcs=(1,), ea=0x2000)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_records(self):
        a = make_load(0x100, dest=8, addr_srcs=(1,), ea=0x2000)
        b = make_load(0x100, dest=8, addr_srcs=(1,), ea=0x2008)
        assert a != b

    def test_repr_variants(self):
        assert "ea=" in repr(make_load(0x100, dest=8, addr_srcs=(1,), ea=0x2000))
        assert "taken=" in repr(make_branch(0x100, taken=True, target=0x200))
        priv = TraceRecord(0x100, OpClass.INT_ALU, privileged=True)
        assert "priv" in repr(priv)

    def test_defaults(self):
        record = TraceRecord(0x100, OpClass.NOP)
        assert record.dest == NO_REG
        assert record.ea == NO_ADDR
        assert record.srcs == ()
