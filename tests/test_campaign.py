"""Unit tests for :class:`repro.analysis.campaign.CampaignManifest`.

The manifest's whole job is to survive exactly the failures that
interrupt campaigns: a kill mid-append, a simulator upgrade between
sessions, stray garbage in the file.  Each property documented in the
module docstring gets a test here.
"""

import json

import pytest

from repro.analysis.campaign import MANIFEST_FORMAT, CampaignManifest
from repro.common.errors import CampaignError


def _manifest(tmp_path, **kwargs):
    return CampaignManifest(tmp_path / "campaign.jsonl", code_hash="deadbeef", **kwargs)


class TestBasics:
    def test_fresh_manifest_is_empty(self, tmp_path):
        manifest = _manifest(tmp_path)
        assert len(manifest) == 0
        assert not manifest.resumed
        assert not manifest.is_done("anything")

    def test_mark_and_reload(self, tmp_path):
        with _manifest(tmp_path) as manifest:
            key = manifest.key("up", "cfg-hash", "wl-key")
            manifest.mark(key, "SPECint95@SPARC64-V")

        reloaded = _manifest(tmp_path)
        assert reloaded.resumed
        assert len(reloaded) == 1
        assert reloaded.is_done(key)
        assert reloaded.completed[key] == "SPECint95@SPARC64-V"

    def test_mark_is_idempotent(self, tmp_path):
        with _manifest(tmp_path) as manifest:
            key = manifest.key("up", "a", "b")
            manifest.mark(key, "x")
            manifest.mark(key, "x")
        lines = (tmp_path / "campaign.jsonl").read_text().splitlines()
        assert len(lines) == 2  # header + one record, not two

    def test_keys_are_deterministic_and_distinct(self, tmp_path):
        manifest = _manifest(tmp_path)
        assert manifest.key("up", "a", "b") == manifest.key("up", "a", "b")
        assert manifest.key("up", "a", "b") != manifest.key("smp", "a", "b")
        assert manifest.key("up", "a", "b") != manifest.key("up", "a", "c")
        # The separator keeps ("ab", "c") and ("a", "bc") apart.
        assert manifest.key("up", "ab", "c") != manifest.key("up", "a", "bc")

    def test_summary_mentions_state(self, tmp_path):
        manifest = _manifest(tmp_path)
        assert "new" in manifest.summary()
        with manifest:
            manifest.mark(manifest.key("up", "a"), "a")
        assert "resumed" in _manifest(tmp_path).summary()


class TestCrashRecovery:
    def test_torn_final_line_is_dropped(self, tmp_path):
        """A crash mid-append leaves a partial line; load must shrug."""
        with _manifest(tmp_path) as manifest:
            done = manifest.key("up", "done")
            manifest.mark(done, "done-run")
        path = tmp_path / "campaign.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "abcd1234", "lab')  # no newline, no close

        reloaded = _manifest(tmp_path)
        assert reloaded.is_done(done)
        assert not reloaded.is_done("abcd1234")
        assert reloaded.recovered_drops == 1
        assert "torn" in reloaded.summary()

    def test_next_append_after_torn_line_still_parses(self, tmp_path):
        with _manifest(tmp_path) as manifest:
            manifest.mark(manifest.key("up", "one"), "one")
        path = tmp_path / "campaign.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "torn')
        recovered = _manifest(tmp_path)
        with recovered:
            two = recovered.key("up", "two")
            recovered.mark(two, "two")
        final = _manifest(tmp_path)
        assert final.is_done(two)


class TestQuarantine:
    def test_code_version_mismatch_sets_manifest_aside(self, tmp_path):
        with _manifest(tmp_path) as manifest:
            manifest.mark(manifest.key("up", "old"), "old-run")
        other = CampaignManifest(tmp_path / "campaign.jsonl", code_hash="cafebabe")
        assert len(other) == 0  # stale results are not trusted
        stale = tmp_path / "campaign.jsonl.stale"
        assert stale.exists()
        header = json.loads(stale.read_text().splitlines()[0])
        assert header["code"] == "deadbeef"

    def test_garbage_header_is_quarantined(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text("this is not a manifest\n")
        manifest = CampaignManifest(path, code_hash="deadbeef")
        assert len(manifest) == 0
        assert path.with_suffix(".jsonl.stale").exists()

    def test_strict_mode_raises_instead(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(CampaignError, match="unrecognised header"):
            CampaignManifest(path, code_hash="deadbeef", strict=True)

    def test_format_bump_is_treated_as_unrecognised(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text(
            json.dumps({"campaign": MANIFEST_FORMAT + 1, "code": "deadbeef"}) + "\n"
        )
        manifest = CampaignManifest(path, code_hash="deadbeef")
        assert len(manifest) == 0


def _append_marks(path, code_hash, tag, count):
    """Child-process body for the concurrent-appender test."""
    with CampaignManifest(path, code_hash=code_hash) as manifest:
        for index in range(count):
            manifest.mark(f"{tag}-{index:04d}", f"label-{tag}-{index}")


class TestConcurrentAppenders:
    def test_two_processes_interleave_at_record_granularity(self, tmp_path):
        """Two appender processes sharing one manifest: O_APPEND plus
        single-write line records mean every mark from both survives and
        no line is torn."""
        import multiprocessing

        path = tmp_path / "campaign.jsonl"
        count = 25
        workers = [
            multiprocessing.Process(
                target=_append_marks, args=(path, "deadbeef", tag, count)
            )
            for tag in ("left", "right")
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        merged = CampaignManifest(path, code_hash="deadbeef")
        assert merged.recovered_drops == 0
        assert len(merged) == 2 * count
        for tag in ("left", "right"):
            for index in range(count):
                assert merged.is_done(f"{tag}-{index:04d}")

    def test_duplicate_header_from_racing_fresh_appenders(self, tmp_path):
        """Two fresh appenders can both decide the file needs a header;
        the loader must treat the second header as benign, not torn."""
        path = tmp_path / "campaign.jsonl"
        with _manifest(tmp_path) as manifest:
            manifest.mark("aaaa", "one")
        # Replay the race: a second fresh appender's header landed
        # between two ordinary records.
        with path.open("a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"campaign": MANIFEST_FORMAT, "code": "deadbeef"})
                + "\n"
            )
        with _manifest(tmp_path) as manifest:
            manifest.mark("bbbb", "two")
        merged = _manifest(tmp_path)
        assert merged.recovered_drops == 0  # header is not a torn line
        assert merged.is_done("aaaa") and merged.is_done("bbbb")
