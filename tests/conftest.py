"""Shared fixtures: small fast machines and traces for unit testing."""

import pytest

from repro.frontend.bht import BhtParams
from repro.frontend.fetch import FrontEndParams
from repro.memory.params import (
    BusParams,
    CacheGeometry,
    MemoryParams,
    PrefetchParams,
    TlbGeometry,
)
from repro.model.config import MachineConfig, base_config
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.isa.opcodes import OpClass


@pytest.fixture
def table1_config() -> MachineConfig:
    """The production Table 1 configuration."""
    return base_config()


@pytest.fixture
def small_config() -> MachineConfig:
    """A scaled-down machine for fast unit tests (same structure)."""
    return MachineConfig(
        name="small",
        l1i=CacheGeometry("L1I", 8 * 1024, 2, hit_latency=3, mshr_count=4),
        l1d=CacheGeometry(
            "L1D", 8 * 1024, 2, hit_latency=4, mshr_count=4, banks=8, bank_bytes=4
        ),
        l2=CacheGeometry("L2", 64 * 1024, 4, hit_latency=12, mshr_count=8),
        itlb=TlbGeometry("ITLB", entries=16, ways=4, miss_penalty=20),
        dtlb=TlbGeometry("DTLB", entries=16, ways=4, miss_penalty=20),
        l1_l2_bus=BusParams("l1l2", latency=2, bytes_per_cycle=32),
        system_bus=BusParams("sys", latency=10, bytes_per_cycle=8),
        memory=MemoryParams(latency=60, channels=2, channel_occupancy=8),
        prefetch=PrefetchParams(streams=8),
        bht=BhtParams("small-bht", entries=256, ways=4, access_latency=2),
        frontend=FrontEndParams(),
    )


def make_alu_loop(iterations: int = 10, body: int = 63, base: int = 0x1000) -> Trace:
    """A warm loop of independent ALU ops ending in a backward jump."""
    records = []
    for _ in range(iterations):
        pc = base
        for i in range(body):
            records.append(
                TraceRecord(pc, OpClass.INT_ALU, dest=8 + (i % 8), srcs=(1,))
            )
            pc += 4
        records.append(
            TraceRecord(pc, OpClass.BRANCH_UNCOND, taken=True, target=base)
        )
    return Trace(records, name="alu-loop")


@pytest.fixture
def alu_loop_trace() -> Trace:
    return make_alu_loop()
