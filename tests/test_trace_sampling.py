"""Unit tests for systematic trace sampling."""

import gc
import weakref

import pytest

from repro.common.errors import TraceError
from repro.trace.record import make_alu
from repro.trace.sampling import SamplingPlan, merge_window_ipc, sample_trace
from repro.trace.stream import Trace


def make_trace(count):
    return Trace([make_alu(0x1000 + 4 * i, dest=8, srcs=()) for i in range(count)])


class TestSampleTrace:
    def test_window_count(self):
        windows = list(sample_trace(make_trace(100), period=40, sample_length=10))
        assert len(windows) == 3  # starts at 0, 40, 80

    def test_window_contents_contiguous(self):
        windows = list(sample_trace(make_trace(100), period=40, sample_length=10))
        first = windows[1]
        assert first[0].pc == 0x1000 + 4 * 40
        first.validate()

    def test_window_names_unique(self):
        windows = list(sample_trace(make_trace(100), period=30, sample_length=5))
        names = [window.name for window in windows]
        assert len(set(names)) == len(names)

    def test_invalid_params(self):
        with pytest.raises(TraceError):
            sample_trace(make_trace(10), period=0, sample_length=1)
        with pytest.raises(TraceError):
            sample_trace(make_trace(10), period=5, sample_length=6)

    def test_invalid_params_raise_eagerly(self):
        # Validation must not be deferred to the first next() call, or a
        # bad plan sits undetected until a worker finally consumes it.
        generator = None
        try:
            generator = sample_trace(make_trace(10), period=0, sample_length=1)
        except TraceError:
            pass
        assert generator is None

    def test_short_trace_no_windows(self):
        assert list(sample_trace(make_trace(5), period=100, sample_length=10)) == []

    def test_returns_lazy_iterator(self):
        windows = sample_trace(make_trace(100), period=40, sample_length=10)
        assert iter(windows) is windows  # a generator, not a list

    def test_windows_not_retained(self):
        """Peak live windows stays at one: consumed windows are collectable.

        Regression test for the eager-materialisation bug where
        ``sample_trace`` built every window Trace up front, holding
        O(trace/period) windows alive at once.
        """
        trace = make_trace(1000)
        refs = []
        for window in sample_trace(trace, period=50, sample_length=25):
            refs.append(weakref.ref(window))
            del window
            gc.collect()
            alive = sum(1 for ref in refs if ref() is not None)
            assert alive == 0, f"{alive} previous windows still alive"
        assert len(refs) == 20


class TestSamplingPlan:
    def test_window_schedule(self):
        plan = SamplingPlan(
            period=100, sample_length=20, warmup=10, detail_warmup=8, drain_pad=4
        )
        windows = list(plan.windows(250))
        assert len(windows) == plan.window_count(250) == 3
        first = windows[0]
        assert first.start == 0
        assert first.detail_start == 10
        assert first.measure_start == 18
        assert first.measure_end == 38
        assert first.end == 42
        assert windows[1].start == 100
        assert first.measured_records == 20
        assert first.detailed_records == 32

    def test_key_is_stable(self):
        plan = SamplingPlan(period=200, sample_length=20)
        assert plan.key() == SamplingPlan(period=200, sample_length=20).key()
        assert plan.key() != SamplingPlan(period=200, sample_length=21).key()

    def test_span_must_fit_period(self):
        with pytest.raises(TraceError):
            SamplingPlan(period=100, sample_length=90, warmup=50)

    def test_rejects_nonpositive(self):
        with pytest.raises(TraceError):
            SamplingPlan(period=0, sample_length=1)
        with pytest.raises(TraceError):
            SamplingPlan(period=10, sample_length=0)
        with pytest.raises(TraceError):
            SamplingPlan(period=100, sample_length=10, warmup=-1)


class TestMergeIpc:
    def test_weighted_by_cycles(self):
        # window A: 100 insts / 100 cycles; window B: 100 insts / 300 cycles
        # aggregate = 200/400 = 0.5, not mean(1.0, 0.33)
        assert merge_window_ipc([100, 100], [100, 300]) == pytest.approx(0.5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TraceError):
            merge_window_ipc([1], [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            merge_window_ipc([], [])

    def test_rejects_zero_cycles(self):
        with pytest.raises(TraceError):
            merge_window_ipc([5], [0])
