"""Unit tests for systematic trace sampling."""

import pytest

from repro.common.errors import TraceError
from repro.trace.record import make_alu
from repro.trace.sampling import merge_window_ipc, sample_trace
from repro.trace.stream import Trace


def make_trace(count):
    return Trace([make_alu(0x1000 + 4 * i, dest=8, srcs=()) for i in range(count)])


class TestSampleTrace:
    def test_window_count(self):
        windows = sample_trace(make_trace(100), period=40, sample_length=10)
        assert len(windows) == 3  # starts at 0, 40, 80

    def test_window_contents_contiguous(self):
        windows = sample_trace(make_trace(100), period=40, sample_length=10)
        first = windows[1]
        assert first[0].pc == 0x1000 + 4 * 40
        first.validate()

    def test_window_names_unique(self):
        windows = sample_trace(make_trace(100), period=30, sample_length=5)
        names = [window.name for window in windows]
        assert len(set(names)) == len(names)

    def test_invalid_params(self):
        with pytest.raises(TraceError):
            sample_trace(make_trace(10), period=0, sample_length=1)
        with pytest.raises(TraceError):
            sample_trace(make_trace(10), period=5, sample_length=6)

    def test_short_trace_no_windows(self):
        assert sample_trace(make_trace(5), period=100, sample_length=10) == []


class TestMergeIpc:
    def test_weighted_by_cycles(self):
        # window A: 100 insts / 100 cycles; window B: 100 insts / 300 cycles
        # aggregate = 200/400 = 0.5, not mean(1.0, 0.33)
        assert merge_window_ipc([100, 100], [100, 300]) == pytest.approx(0.5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TraceError):
            merge_window_ipc([1], [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            merge_window_ipc([], [])

    def test_rejects_zero_cycles(self):
        with pytest.raises(TraceError):
            merge_window_ipc([5], [0])
