"""Unit and behaviour tests for the out-of-order pipeline engine."""

import pytest

from repro.core.pipeline import ProcessorCore
from repro.core.params import RsOrganization
from repro.isa.opcodes import OpClass
from repro.model.simulator import build_hierarchy, warm_structures
from repro.trace.record import TraceRecord, make_branch
from repro.trace.stream import Trace


def run_core(records, config, warm=True, max_cycles=500_000):
    hierarchy = build_hierarchy(config)
    trace = Trace(records, name="t")
    core = ProcessorCore(trace, hierarchy, config.core, config.frontend, config.bht)
    if warm:
        warm_structures(hierarchy, core.fetch.bht, trace)
    stats = core.run(max_cycles=max_cycles)
    return stats, core, hierarchy


def alu_block(count, base=0x1000, dest_cycle=8):
    return [
        TraceRecord(base + 4 * i, OpClass.INT_ALU, dest=8 + (i % dest_cycle), srcs=(1,))
        for i in range(count)
    ]


class TestThroughput:
    def test_independent_alu_bounded_by_dispatch(self, table1_config):
        """Two integer units, one dispatch each per cycle: IPC -> 2."""
        records = []
        for _ in range(30):
            records.extend(alu_block(255))
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        stats, _, _ = run_core(records, table1_config)
        assert 1.6 < stats.ipc <= 2.05

    def test_dependent_chain_ipc_one(self, table1_config):
        """A serial dependence chain with forwarding commits ~1 per cycle."""
        records = []
        for _ in range(20):
            records.extend(
                TraceRecord(0x1000 + 4 * i, OpClass.INT_ALU, dest=8, srcs=(8,))
                for i in range(255)
            )
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        stats, _, _ = run_core(records, table1_config)
        assert 0.8 < stats.ipc <= 1.1

    def test_no_forwarding_slows_chain(self, table1_config):
        records = []
        for _ in range(10):
            records.extend(
                TraceRecord(0x1000 + 4 * i, OpClass.INT_ALU, dest=8, srcs=(8,))
                for i in range(255)
            )
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        fast, _, _ = run_core(records, table1_config)
        slow_config = table1_config.derived(
            "no-fwd", core=table1_config.core.derived(data_forwarding=False)
        )
        slow, _, _ = run_core(records, slow_config)
        assert slow.ipc < fast.ipc

    def test_fp_uses_fp_units(self, table1_config):
        records = []
        for _ in range(10):
            records.extend(
                TraceRecord(0x1000 + 4 * i, OpClass.FP_FMA, dest=40 + (i % 8),
                            srcs=(33, 34))
                for i in range(255)
            )
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        stats, _, _ = run_core(records, table1_config)
        assert stats.ipc > 1.2  # two pipelined FMA units


class TestLoadBehaviour:
    def _load_chain(self, ea_of, count=300):
        records = []
        pc = 0x1000
        for i in range(count):
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,), ea=ea_of(i), size=8)
            )
            pc += 4
            records.append(TraceRecord(pc, OpClass.INT_ALU, dest=9, srcs=(8,)))
            pc += 4
        return records

    def test_speculative_dispatch_replays_on_miss(self, table1_config):
        records = self._load_chain(lambda i: 0x100000 + i * 8192)
        stats, _, _ = run_core(records, table1_config, warm=False)
        assert stats.replays > 0

    def test_hits_cause_no_replays(self, table1_config):
        records = self._load_chain(lambda i: 0x100000 + (i % 8) * 8)
        stats, _, _ = run_core(records, table1_config)
        assert stats.replays == 0
        levels = stats.load_level_counts
        assert levels.get("l1", 0) > 250

    def test_speculative_dispatch_off_no_replays(self, table1_config):
        config = table1_config.derived(
            "no-spec", core=table1_config.core.derived(speculative_dispatch=False)
        )
        records = self._load_chain(lambda i: 0x100000 + i * 8192)
        stats, _, _ = run_core(records, config, warm=False)
        assert stats.replays == 0

    def test_speculative_dispatch_helps_hits(self, table1_config):
        records = self._load_chain(lambda i: 0x100000 + (i % 8) * 8)
        fast, _, _ = run_core(records, table1_config)
        config = table1_config.derived(
            "no-spec", core=table1_config.core.derived(speculative_dispatch=False)
        )
        slow, _, _ = run_core(records, config)
        assert fast.cycles < slow.cycles

    def test_store_to_load_forwarding(self, table1_config):
        records = []
        pc = 0x1000
        for i in range(100):
            ea = 0x200000 + (i % 4) * 64
            records.append(
                TraceRecord(pc, OpClass.STORE, srcs=(1, 9), ea=ea, size=8)
            )
            pc += 4
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,), ea=ea, size=8)
            )
            pc += 4
        stats, _, _ = run_core(records, table1_config)
        assert stats.store_forwards > 0

    def test_bank_conflicts_counted(self, table1_config):
        # Pairs of independent loads to the same bank (same addr mod 32).
        records = []
        pc = 0x1000
        for i in range(200):
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,),
                            ea=0x100000 + (i % 4) * 32, size=8)
            )
            pc += 4
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=9, srcs=(2,),
                            ea=0x140000 + (i % 4) * 32, size=8)
            )
            pc += 4
        stats, _, _ = run_core(records, table1_config)
        assert stats.bank_conflicts > 0


class TestBranches:
    def test_mispredicted_branch_costs_cycles(self, table1_config):
        base = [
            *alu_block(30),
        ]
        taken = list(base)
        # Random-direction branch: untrained BHT mispredicts the taken one.
        taken.append(make_branch(0x1000 + 4 * 30, taken=True, target=0x2000))
        taken.extend(alu_block(30, base=0x2000))
        not_taken = list(base)
        not_taken.append(make_branch(0x1000 + 4 * 30, taken=False, target=0x2000))
        not_taken.extend(alu_block(30, base=0x1000 + 4 * 31))
        fast, _, _ = run_core(not_taken, table1_config)
        slow, _, _ = run_core(taken, table1_config)
        assert slow.cycles > fast.cycles

    def test_branch_stats_populated(self, table1_config):
        records = []
        for _ in range(20):
            records.extend(alu_block(62))
            records.append(
                TraceRecord(0x1000 + 4 * 62, OpClass.INT_ALU, dest=64, srcs=(8, 9))
            )
            records.append(
                make_branch(0x1000 + 4 * 63, taken=True, target=0x1000, srcs=(64,))
            )
        stats, _, _ = run_core(records, table1_config)
        assert stats.conditional_branches == 20
        assert stats.branches == 20


class TestOrganisation:
    def test_one_rs_at_least_as_fast(self, table1_config):
        """1RS dispatches flexibly; the paper found 2RS slightly slower."""
        records = []
        for _ in range(20):
            records.extend(alu_block(255))
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        two_rs, _, _ = run_core(records, table1_config)
        one_rs_config = table1_config.derived(
            "1rs",
            core=table1_config.core.derived(rs_organization=RsOrganization.ONE_RS),
        )
        one_rs, _, _ = run_core(records, one_rs_config)
        assert one_rs.cycles <= two_rs.cycles

    def test_issue_width_two_caps_ipc(self, table1_config):
        records = []
        for _ in range(20):
            records.extend(alu_block(255))
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        config = table1_config.derived(
            "2w", core=table1_config.core.derived(issue_width=2, commit_width=2)
        )
        stats, _, _ = run_core(records, config)
        assert stats.ipc <= 2.01


class TestTermination:
    def test_all_instructions_commit(self, table1_config, alu_loop_trace):
        stats, _, _ = run_core(list(alu_loop_trace.records), table1_config)
        assert stats.instructions == len(alu_loop_trace)

    def test_max_cycles_guard(self, table1_config):
        from repro.common.errors import SimulationError

        records = alu_block(100)
        with pytest.raises(SimulationError):
            run_core(records, table1_config, warm=False, max_cycles=3)

    def test_determinism(self, table1_config, alu_loop_trace):
        a, _, _ = run_core(list(alu_loop_trace.records), table1_config)
        b, _, _ = run_core(list(alu_loop_trace.records), table1_config)
        assert a.cycles == b.cycles
