"""Unit and behaviour tests for the out-of-order pipeline engine."""

import pytest

from repro.core.pipeline import ProcessorCore
from repro.core.params import RsOrganization
from repro.isa.opcodes import OpClass
from repro.model.simulator import build_hierarchy, warm_structures
from repro.trace.record import TraceRecord, make_branch
from repro.trace.stream import Trace


def run_core(records, config, warm=True, max_cycles=500_000):
    hierarchy = build_hierarchy(config)
    trace = Trace(records, name="t")
    core = ProcessorCore(trace, hierarchy, config.core, config.frontend, config.bht)
    if warm:
        warm_structures(hierarchy, core.fetch.bht, trace)
    stats = core.run(max_cycles=max_cycles)
    return stats, core, hierarchy


def alu_block(count, base=0x1000, dest_cycle=8):
    return [
        TraceRecord(base + 4 * i, OpClass.INT_ALU, dest=8 + (i % dest_cycle), srcs=(1,))
        for i in range(count)
    ]


class TestThroughput:
    def test_independent_alu_bounded_by_dispatch(self, table1_config):
        """Two integer units, one dispatch each per cycle: IPC -> 2."""
        records = []
        for _ in range(30):
            records.extend(alu_block(255))
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        stats, _, _ = run_core(records, table1_config)
        assert 1.6 < stats.ipc <= 2.05

    def test_dependent_chain_ipc_one(self, table1_config):
        """A serial dependence chain with forwarding commits ~1 per cycle."""
        records = []
        for _ in range(20):
            records.extend(
                TraceRecord(0x1000 + 4 * i, OpClass.INT_ALU, dest=8, srcs=(8,))
                for i in range(255)
            )
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        stats, _, _ = run_core(records, table1_config)
        assert 0.8 < stats.ipc <= 1.1

    def test_no_forwarding_slows_chain(self, table1_config):
        records = []
        for _ in range(10):
            records.extend(
                TraceRecord(0x1000 + 4 * i, OpClass.INT_ALU, dest=8, srcs=(8,))
                for i in range(255)
            )
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        fast, _, _ = run_core(records, table1_config)
        slow_config = table1_config.derived(
            "no-fwd", core=table1_config.core.derived(data_forwarding=False)
        )
        slow, _, _ = run_core(records, slow_config)
        assert slow.ipc < fast.ipc

    def test_fp_uses_fp_units(self, table1_config):
        records = []
        for _ in range(10):
            records.extend(
                TraceRecord(0x1000 + 4 * i, OpClass.FP_FMA, dest=40 + (i % 8),
                            srcs=(33, 34))
                for i in range(255)
            )
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        stats, _, _ = run_core(records, table1_config)
        assert stats.ipc > 1.2  # two pipelined FMA units


class TestLoadBehaviour:
    def _load_chain(self, ea_of, count=300):
        records = []
        pc = 0x1000
        for i in range(count):
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,), ea=ea_of(i), size=8)
            )
            pc += 4
            records.append(TraceRecord(pc, OpClass.INT_ALU, dest=9, srcs=(8,)))
            pc += 4
        return records

    def test_speculative_dispatch_replays_on_miss(self, table1_config):
        records = self._load_chain(lambda i: 0x100000 + i * 8192)
        stats, _, _ = run_core(records, table1_config, warm=False)
        assert stats.replays > 0

    def test_hits_cause_no_replays(self, table1_config):
        records = self._load_chain(lambda i: 0x100000 + (i % 8) * 8)
        stats, _, _ = run_core(records, table1_config)
        assert stats.replays == 0
        levels = stats.load_level_counts
        assert levels.get("l1", 0) > 250

    def test_speculative_dispatch_off_no_replays(self, table1_config):
        config = table1_config.derived(
            "no-spec", core=table1_config.core.derived(speculative_dispatch=False)
        )
        records = self._load_chain(lambda i: 0x100000 + i * 8192)
        stats, _, _ = run_core(records, config, warm=False)
        assert stats.replays == 0

    def test_speculative_dispatch_helps_hits(self, table1_config):
        records = self._load_chain(lambda i: 0x100000 + (i % 8) * 8)
        fast, _, _ = run_core(records, table1_config)
        config = table1_config.derived(
            "no-spec", core=table1_config.core.derived(speculative_dispatch=False)
        )
        slow, _, _ = run_core(records, config)
        assert fast.cycles < slow.cycles

    def test_store_to_load_forwarding(self, table1_config):
        records = []
        pc = 0x1000
        for i in range(100):
            ea = 0x200000 + (i % 4) * 64
            records.append(
                TraceRecord(pc, OpClass.STORE, srcs=(1, 9), ea=ea, size=8)
            )
            pc += 4
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,), ea=ea, size=8)
            )
            pc += 4
        stats, _, _ = run_core(records, table1_config)
        assert stats.store_forwards > 0

    def test_bank_conflicts_counted(self, table1_config):
        # Pairs of independent loads to the same bank (same addr mod 32).
        records = []
        pc = 0x1000
        for i in range(200):
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,),
                            ea=0x100000 + (i % 4) * 32, size=8)
            )
            pc += 4
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=9, srcs=(2,),
                            ea=0x140000 + (i % 4) * 32, size=8)
            )
            pc += 4
        stats, _, _ = run_core(records, table1_config)
        assert stats.bank_conflicts > 0


class TestBranches:
    def test_mispredicted_branch_costs_cycles(self, table1_config):
        """Alternating directions thrash one BHT entry; misses cost cycles."""

        def stream(directions):
            records = []
            base = 0x1000
            for taken in directions:
                records.extend(alu_block(10, base=base))
                # Same branch PC every block: one shared BHT entry, so an
                # alternating direction pattern defeats the counter while
                # a constant one trains it.
                records.append(
                    make_branch(0x90000, taken=taken, target=base + 0x100)
                )
                base += 0x100
            return records

        alternating = stream([index % 2 == 0 for index in range(40)])
        predictable = stream([False] * 40)
        slow, _, _ = run_core(alternating, table1_config)
        fast, _, _ = run_core(predictable, table1_config)
        assert slow.branch_mispredictions > fast.branch_mispredictions
        assert slow.branch_mispredictions > 0
        assert slow.cycles > fast.cycles

    def test_branch_stats_populated(self, table1_config):
        records = []
        for _ in range(20):
            records.extend(alu_block(62))
            records.append(
                TraceRecord(0x1000 + 4 * 62, OpClass.INT_ALU, dest=64, srcs=(8, 9))
            )
            records.append(
                make_branch(0x1000 + 4 * 63, taken=True, target=0x1000, srcs=(64,))
            )
        stats, _, _ = run_core(records, table1_config)
        assert stats.conditional_branches == 20
        assert stats.branches == 20


class TestOrganisation:
    def test_one_rs_at_least_as_fast(self, table1_config):
        """1RS dispatches flexibly; the paper found 2RS slightly slower."""
        records = []
        for _ in range(20):
            records.extend(alu_block(255))
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        two_rs, _, _ = run_core(records, table1_config)
        one_rs_config = table1_config.derived(
            "1rs",
            core=table1_config.core.derived(rs_organization=RsOrganization.ONE_RS),
        )
        one_rs, _, _ = run_core(records, one_rs_config)
        assert one_rs.cycles <= two_rs.cycles

    def test_issue_width_two_caps_ipc(self, table1_config):
        records = []
        for _ in range(20):
            records.extend(alu_block(255))
            records.append(
                make_branch(0x1000 + 4 * 255, taken=True, target=0x1000,
                            conditional=False)
            )
        config = table1_config.derived(
            "2w", core=table1_config.core.derived(issue_width=2, commit_width=2)
        )
        stats, _, _ = run_core(records, config)
        assert stats.ipc <= 2.01


class TestTermination:
    def test_all_instructions_commit(self, table1_config, alu_loop_trace):
        stats, _, _ = run_core(list(alu_loop_trace.records), table1_config)
        assert stats.instructions == len(alu_loop_trace)

    def test_max_cycles_guard(self, table1_config):
        from repro.common.errors import SimulationError

        records = alu_block(100)
        with pytest.raises(SimulationError):
            run_core(records, table1_config, warm=False, max_cycles=3)

    def test_determinism(self, table1_config, alu_loop_trace):
        a, _, _ = run_core(list(alu_loop_trace.records), table1_config)
        b, _, _ = run_core(list(alu_loop_trace.records), table1_config)
        assert a.cycles == b.cycles


class TestIdleSkipAhead:
    """Wake-time correctness of the idle-cycle jump under DRAM misses.

    ``run()`` skips idle spans via ``_next_cycle``; that is only sound if
    the jump never lands *past* a cycle where the pipeline would report
    activity.  These tests drive a trace of cold DRAM-missing loads,
    probe every multi-cycle jump with a deep-copied core stepped one
    cycle at a time (each intermediate cycle must be idle), and
    cross-check the two wake caches — the LSU pending-work minimum and
    the dispatch-tail station-wake note — against from-scratch
    recomputation at every idle cycle.
    """

    @staticmethod
    def _dram_miss_records(count=32, stride=1 << 20):
        """Widely-strided loads (cold DRAM misses) with dependent ALU ops."""
        records = []
        for i in range(count):
            pc = 0x1000 + 8 * i
            records.append(
                TraceRecord(pc, OpClass.LOAD, dest=8, srcs=(1,),
                            ea=0x40_0000 + i * stride, size=8)
            )
            records.append(
                TraceRecord(pc + 4, OpClass.INT_ALU, dest=9, srcs=(8,))
            )
        return records

    def _fresh_core(self, config, records):
        hierarchy = build_hierarchy(config)
        trace = Trace(list(records), name="dram")
        return ProcessorCore(
            trace, hierarchy, config.core, config.frontend, config.bht
        )

    def test_jumps_never_overshoot_activity(self, table1_config):
        import copy
        import dataclasses

        records = self._dram_miss_records()
        core = self._fresh_core(table1_config, records)
        cycle = 0
        max_jump = 0
        while not core.finished:
            assert cycle < 200_000, "driver runaway"
            if core.step_cycle(cycle):
                cycle += 1
                continue

            # Wake-cache cross-checks at every idle cycle.
            lsu = core.lsu
            cached = lsu.pending_work_cycle(cycle)
            lsu._pending_dirty = True  # force a queue re-walk
            assert lsu.pending_work_cycle(cycle) == cached, (
                "stale LSU pending-work cache at an idle cycle"
            )
            notes = [
                station.next_eligible
                for station in core._all_stations
                if station.next_eligible is not None
                and station.next_eligible > cycle
            ]
            assert core._station_wake == (min(notes) if notes else None), (
                "dispatch-tail station wake disagrees with a full walk"
            )

            target = core._next_cycle(cycle)
            assert target > cycle
            if target > cycle + 1:
                # Gold standard: stepping a cloned core through every
                # skipped cycle must find nothing to do.
                probe = copy.deepcopy(core)
                for skipped in range(cycle + 1, target):
                    assert not probe.step_cycle(skipped), (
                        f"jump to {target} overshot activity at {skipped}"
                    )
            max_jump = max(max_jump, target - cycle)
            cycle = target
        manual = dataclasses.asdict(core.finalize_stats(cycle))

        # The manual driver above is run()\'s loop; run() must agree.
        reference = self._fresh_core(table1_config, records)
        reference.run(max_cycles=200_000)
        assert dataclasses.asdict(reference.stats) == manual

        # A cold load miss serviced by DRAM (260-cycle latency) must be
        # covered by large jumps, not limped through cycle by cycle.
        assert max_jump > 50
