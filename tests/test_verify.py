"""Tests for the verification methodology (Reverse Tracer, logic sim, Fig 19)."""

import pytest

from repro.common.errors import VerificationError
from repro.isa.executor import FunctionalExecutor
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.trace.synth import generate_trace, standard_profiles
from repro.verify import (
    MODEL_VERSIONS,
    LogicSimulator,
    ReverseTracer,
    cross_check,
    model_version,
)
from repro.verify.reverse_tracer import _classify_outcomes


class TestOutcomeClassification:
    def test_always(self):
        assert _classify_outcomes([True, True, True]) == ("always", 0)

    def test_never(self):
        assert _classify_outcomes([False, False]) == ("never", 0)

    def test_loop(self):
        kind, trip = _classify_outcomes([True] * 3 + [False] + [True] * 3 + [False])
        assert kind == "loop" and trip == 3

    def test_truncated_loop_tail(self):
        kind, trip = _classify_outcomes([True, True, False, True])
        assert kind == "loop" and trip == 2

    def test_mixed(self):
        assert _classify_outcomes([True, False, False, True])[0] == "mixed"


@pytest.fixture(scope="module")
def replay_pair():
    trace = generate_trace(standard_profiles()["SPECint95"], 2500, seed=5)
    program, fidelity = ReverseTracer().generate(trace)
    return trace, program, fidelity


class TestReverseTracer:
    def test_program_is_finalized_and_runnable(self, replay_pair):
        _, program, _ = replay_pair
        executor = FunctionalExecutor(max_steps=10_000, halt_on_limit=True)
        result = executor.run(program)
        assert result.steps > 0

    def test_fidelity_reported(self, replay_pair):
        _, _, fidelity = replay_pair
        assert fidelity.static_sites > 100
        assert fidelity.branch_exact_fraction > 0.7
        data = fidelity.as_dict()
        assert "branch_exact_fraction" in data

    def test_replay_instruction_mix_similar(self, replay_pair):
        trace, program, _ = replay_pair
        executor = FunctionalExecutor(max_steps=len(trace), halt_on_limit=True)
        result = executor.run(program)
        from repro.trace.stream import Trace

        original = trace.stats()
        replay = Trace(result.records).stats()
        assert abs(original.load_fraction - replay.load_fraction) < 0.12
        assert abs(original.branch_fraction - replay.branch_fraction) < 0.12

    def test_loop_counters_replay_trips(self):
        # Hand-build a trace with one clean loop pattern.
        from repro.trace.record import TraceRecord, make_alu

        records = []
        for _ in range(4):
            for _ in range(1):
                pass
        pc_body, pc_branch = 0x1000, 0x1004
        for iteration in range(8):
            records.append(make_alu(pc_body, dest=8, srcs=(1,)))
            taken = (iteration % 4) != 3  # 3 takens then exit
            records.append(
                TraceRecord(pc_branch, OpClass.BRANCH_COND, srcs=(64,),
                            taken=taken, target=pc_body)
            )
            if not taken:
                records.append(make_alu(pc_branch + 4, dest=8, srcs=(1,)))
                records.append(
                    TraceRecord(pc_branch + 8, OpClass.BRANCH_UNCOND,
                                taken=True, target=pc_body)
                )
        from repro.trace.stream import Trace

        program, fidelity = ReverseTracer().generate(Trace(records))
        assert fidelity.loop_sites_with_counters == 1
        executor = FunctionalExecutor(max_steps=200, halt_on_limit=True)
        result = executor.run(program)
        branch_outcomes = [
            r.taken for r in result.records if r.is_conditional_branch
        ]
        # The replayed loop shows the 3-taken/1-not pattern.
        assert branch_outcomes[:4] == [True, True, True, False]


class TestLogicSimulator:
    def test_runs_program(self, replay_pair):
        _, program, _ = replay_pair
        result = LogicSimulator(max_steps=5000).run(program)
        assert result.cycles > 0
        assert result.instructions == 5000
        assert 0 < result.ipc < 4

    def test_cross_check_passes(self, replay_pair):
        _, program, _ = replay_pair
        result = cross_check(program, max_steps=5000)
        assert result.cycles > 0

    def test_cross_check_detects_divergence(self):
        # Tamper with the trace-driven path via a mismatched config by
        # monkeypatching: easiest honest check is that identical paths
        # agree and a perturbed cycle count raises.
        program = Program(name="tiny")
        program.append(Instruction(Mnemonic.MOV, rd=1, imm=1))
        program.append(Instruction(Mnemonic.HALT))
        result = cross_check(program)
        assert result.instructions == 1


class TestModelVersions:
    def test_eight_versions(self):
        assert MODEL_VERSIONS == [f"v{i}" for i in range(1, 9)]

    def test_v8_is_final(self):
        from repro.model.config import base_config

        final = base_config()
        v8 = model_version("v8", final)
        assert v8.l1d == final.l1d
        assert v8.memory == final.memory
        assert v8.core.special_serialize == final.core.special_serialize

    def test_v1_is_optimistic(self):
        v1 = model_version("v1")
        assert v1.perfect_tlb
        assert v1.l1d.banks == 1
        assert v1.l1d.mshr_count >= 64

    def test_v4_has_experimental_penalty(self):
        from repro.verify.fidelity import EXPERIMENTAL_SPECIAL_PENALTY

        v4 = model_version("v4")
        assert not v4.core.special_serialize
        assert v4.core.special_latency == EXPERIMENTAL_SPECIAL_PENALTY

    def test_v5_restores_detailed_specials(self):
        v5 = model_version("v5")
        final = model_version("v8")
        assert v5.core.special_serialize == final.core.special_serialize
        assert v5.core.special_latency == final.core.special_latency

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            model_version("v99")

    def test_versions_add_detail_monotonically(self):
        """Each version's config differs from the previous (progression)."""
        previous = None
        for label in MODEL_VERSIONS[:-1]:
            config = model_version(label)
            assert config != previous
            previous = config
