"""Unit tests for the data-address stream generators."""

import pytest

from repro.common.rng import DeterministicRng
from repro.trace.synth.data import (
    AddressGenerator,
    ChainStream,
    SharedRegionGenerator,
    StrideStream,
)
from repro.trace.synth.profiles import DataMix


class TestStrideStream:
    def test_sequential_within_run(self):
        stream = StrideStream(
            DeterministicRng(1), 0x10000, 1 << 20, stride=8, run_length=16
        )
        addresses = [stream.next_address() for _ in range(8)]
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {8}

    def test_restart_after_run(self):
        stream = StrideStream(
            DeterministicRng(1), 0x10000, 1 << 20, stride=8, run_length=4
        )
        addresses = [stream.next_address() for _ in range(12)]
        # After every 4 accesses a new base is chosen.
        assert addresses[4] - addresses[3] != 8 or addresses[8] - addresses[7] != 8

    def test_stays_in_region(self):
        stream = StrideStream(
            DeterministicRng(2), 0x10000, 64 * 1024, stride=64, run_length=32
        )
        for _ in range(500):
            address = stream.next_address()
            assert 0x10000 <= address < 0x10000 + 64 * 1024 + 64 * 32


class TestChainStream:
    def test_covers_region_before_repeat(self):
        stream = ChainStream(DeterministicRng(3), 0, 64 * 64)  # 64 lines
        seen = [stream.next_address() for _ in range(64)]
        assert len(set(seen)) > 48  # near-full permutation coverage

    def test_line_aligned(self):
        stream = ChainStream(DeterministicRng(3), 0x100000, 1 << 20)
        for _ in range(100):
            assert stream.next_address() % 64 == 0

    def test_stays_in_region(self):
        base, size = 0x200000, 1 << 18
        stream = ChainStream(DeterministicRng(4), base, size)
        for _ in range(1000):
            address = stream.next_address()
            assert base <= address < base + size + 64


class TestAddressGenerator:
    def test_mix_obeys_fractions(self):
        mix = DataMix(
            hot_fraction=1.0,
            stride_fraction=0.0,
            chain_fraction=0.0,
            random_fraction=0.0,
            hot_region_bytes=4096,
            working_set_bytes=1 << 20,
        )
        generator = AddressGenerator(mix, DeterministicRng(5), region_base=0x1000_0000)
        for _ in range(200):
            address = generator.next_address()
            assert 0x1000_0000 <= address < 0x1000_0000 + 4096

    def test_alignment(self):
        mix = DataMix()
        generator = AddressGenerator(mix, DeterministicRng(6))
        for _ in range(200):
            assert generator.next_address() % 8 == 0


class TestSharedRegion:
    def test_zipf_concentration(self):
        generator = SharedRegionGenerator(DeterministicRng(7), 1 << 20, base=0, skew=1.5)
        head = sum(1 for _ in range(2000) if generator.next_address() < (1 << 20) // 10)
        assert head / 2000 > 0.3

    def test_region_bounds(self):
        base = 0xC000_0000
        generator = SharedRegionGenerator(DeterministicRng(8), 4096, base=base)
        for _ in range(100):
            address = generator.next_address()
            assert base <= address < base + 4096

    def test_rejects_empty_region(self):
        import pytest
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            SharedRegionGenerator(DeterministicRng(9), 0)
