"""Unit tests for the branch history table."""

import pytest

from repro.common.errors import ConfigError
from repro.frontend.bht import (
    BHT_4K_2W_1T,
    BHT_16K_4W_2T,
    BhtParams,
    BranchHistoryTable,
)


class TestParams:
    def test_paper_configs(self):
        assert BHT_16K_4W_2T.entries == 16 * 1024
        assert BHT_16K_4W_2T.ways == 4
        assert BHT_16K_4W_2T.access_latency == 2
        assert BHT_4K_2W_1T.entries == 4 * 1024
        assert BHT_4K_2W_1T.ways == 2
        assert BHT_4K_2W_1T.access_latency == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            BhtParams("bad", entries=100, ways=3)
        with pytest.raises(ConfigError):
            BhtParams("bad", entries=0)
        with pytest.raises(ConfigError):
            BhtParams("bad", access_latency=0)


class TestPrediction:
    def test_unknown_branch_predicts_not_taken(self):
        table = BranchHistoryTable(BHT_16K_4W_2T)
        assert table.predict(0x1000) is False

    def test_learns_taken(self):
        table = BranchHistoryTable(BHT_16K_4W_2T)
        for _ in range(3):
            table.update(0x1000, taken=True, predicted=table.predict(0x1000))
        assert table.predict(0x1000) is True

    def test_hysteresis(self):
        table = BranchHistoryTable(BHT_16K_4W_2T)
        for _ in range(4):
            table.update(0x1000, taken=True, predicted=True)
        # One not-taken should not flip a saturated counter.
        table.update(0x1000, taken=False, predicted=True)
        assert table.predict(0x1000) is True
        table.update(0x1000, taken=False, predicted=True)
        assert table.predict(0x1000) is False

    def test_not_taken_branches_not_allocated(self):
        table = BranchHistoryTable(BHT_16K_4W_2T)
        table.update(0x1000, taken=False, predicted=False)
        # Entry absent; a taken branch elsewhere in the set is unaffected.
        assert table.stats.taken_misses == 0

    def test_stats_count_mispredictions(self):
        table = BranchHistoryTable(BHT_16K_4W_2T)
        table.update(0x1000, taken=True, predicted=False)
        table.update(0x1000, taken=True, predicted=True)
        assert table.stats.conditional_branches == 2
        assert table.stats.mispredictions == 1
        assert table.stats.misprediction_ratio == pytest.approx(0.5)


class TestCapacity:
    def test_small_table_evicts_under_pressure(self):
        params = BhtParams("tiny", entries=8, ways=2, access_latency=1)
        table = BranchHistoryTable(params)
        # Train 32 distinct taken branches; 8 entries cannot hold them.
        pcs = [0x1000 + 4 * i for i in range(32)]
        for _ in range(2):
            for pc in pcs:
                table.update(pc, taken=True, predicted=table.predict(pc))
        # Re-visiting the first pcs should find them evicted.
        assert table.predict(pcs[0]) is False

    def test_large_table_retains(self):
        table = BranchHistoryTable(BHT_16K_4W_2T)
        pcs = [0x1000 + 4 * i for i in range(32)]
        for _ in range(2):
            for pc in pcs:
                table.update(pc, taken=True, predicted=table.predict(pc))
        assert all(table.predict(pc) for pc in pcs)

    def test_capacity_separates_paper_tables(self):
        """The 16K table must out-predict the 4K table when the active
        branch-site set is between their capacities (Figure 10)."""
        big = BranchHistoryTable(BHT_16K_4W_2T)
        small = BranchHistoryTable(BHT_4K_2W_1T)
        pcs = [0x10000 + 4 * i for i in range(8000)]
        for round_index in range(3):
            for pc in pcs:
                for table in (big, small):
                    predicted = table.predict(pc)
                    table.update(pc, taken=True, predicted=predicted)
        assert small.stats.misprediction_ratio > big.stats.misprediction_ratio
