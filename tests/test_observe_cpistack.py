"""CPI-stack accountant tests: conservation, classification, helpers.

The conservation invariant is the load-bearing property: every simulated
cycle is attributed to exactly one category, and the attributed cycles
sum to ``CoreStats.cycles`` with exact integer equality — for every
standard workload, for SMP runs (including the early-finisher drain
tail), and for hand-built corner-case traces.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import smp_workload, standard_workloads
from repro.core.pipeline import ProcessorCore
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel, build_hierarchy
from repro.observe import categories as cat
from repro.observe.cpistack import (
    ConservationError,
    collapse_fig7,
    fractions,
    merge,
    new_stack,
    ordered_items,
    prune,
    render_stack,
    render_stack_table,
    total,
    verify_conservation,
)
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.isa.opcodes import OpClass

WARM = 4_000
TIMED = 1_000


def make_alu_loop(iterations: int = 10, body: int = 63, base: int = 0x1000) -> Trace:
    """A warm loop of independent ALU ops ending in a backward jump."""
    records = []
    for _ in range(iterations):
        pc = base
        for i in range(body):
            records.append(
                TraceRecord(pc, OpClass.INT_ALU, dest=8 + (i % 8), srcs=(1,))
            )
            pc += 4
        records.append(
            TraceRecord(pc, OpClass.BRANCH_UNCOND, taken=True, target=base)
        )
    return Trace(records, name="alu-loop")


# ---------------------------------------------------------------------------
# The acceptance invariant: conservation on every benchmark workload.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload",
    standard_workloads(warm=WARM, timed=TIMED),
    ids=lambda w: w.name,
)
def test_conservation_every_standard_workload(workload):
    """sum(cpi_stack) == cycles, exactly, for each benchmark workload."""
    result = ExperimentRunner().run(base_config(), workload)
    stack = result.core.cpi_stack
    assert stack, "accountant produced an empty stack"
    assert total(stack) == result.core.cycles
    assert all(count > 0 for count in stack.values()), "pruning leaked zeros"
    assert set(stack) <= set(cat.CPI_CATEGORIES)
    # At least one instruction committed, so base cycles must exist.
    assert stack[cat.BASE] > 0


def test_conservation_smp_per_cpu():
    """Each SMP core conserves cycles against the *global* cycle count."""
    result = ExperimentRunner().run_smp(
        base_config(), smp_workload(2, warm=2_000, timed=600), 2
    )
    cycle_counts = {r.core.cycles for r in result.per_cpu}
    assert len(cycle_counts) == 1, "SMP cores must share the end cycle"
    for cpu in result.per_cpu:
        assert total(cpu.core.cpi_stack) == cpu.core.cycles
    # The cores finish at different times; at least one must carry an
    # explicit drain tail (cycles spent waiting for its peers).
    assert any(cat.DRAIN in r.core.cpi_stack for r in result.per_cpu)
    merged = merge([r.core.cpi_stack for r in result.per_cpu])
    assert total(merged) == sum(r.core.cycles for r in result.per_cpu)


def test_conservation_small_config(small_config):
    trace = make_alu_loop(iterations=20)
    core = ProcessorCore(
        trace,
        build_hierarchy(small_config),
        small_config.core,
        small_config.frontend,
        small_config.bht,
    )
    stats = core.run()
    assert total(stats.cpi_stack) == stats.cycles


# ---------------------------------------------------------------------------
# Classification sanity on traces with a known dominant behaviour.
# ---------------------------------------------------------------------------


def _run_trace(config, records, name):
    return PerformanceModel(config).run(
        Trace(records, name=name), warmup_fraction=0.0
    )


def test_alu_loop_is_mostly_base_and_core(table1_config):
    """Independent ALU ops: cycles go to base/exec/frontend, not memory."""
    result = _run_trace(
        table1_config, make_alu_loop(iterations=30).records, "alu"
    )
    stack = result.core.cpi_stack
    assert total(stack) == result.core.cycles
    memory = sum(
        stack.get(c, 0)
        for c in (cat.DCACHE_L2, cat.DCACHE_REMOTE, cat.DCACHE_MEM)
    )
    assert memory == 0
    assert stack[cat.BASE] > 0


def test_dependent_long_latency_chain_charges_exec(table1_config):
    """A serial FP-divide chain is execution latency, not memory."""
    records = []
    pc = 0x2000
    for i in range(80):
        records.append(
            TraceRecord(pc, OpClass.FP_DIV, dest=40, srcs=(40,))
        )
        pc += 4
    result = _run_trace(table1_config, records, "fpdiv-chain")
    stack = result.core.cpi_stack
    assert total(stack) == result.core.cycles
    assert stack[cat.EXEC] > stack.get(cat.DCACHE_L1, 0)
    assert stack[cat.EXEC] > stack[cat.BASE]


def test_pointer_chase_charges_memory_levels(table1_config):
    """Serially-dependent loads over a large footprint stall on memory."""
    records = []
    pc = 0x3000
    stride = 8192 + 64  # defeat the stride prefetcher and the L1
    for i in range(200):
        records.append(
            TraceRecord(
                pc, OpClass.LOAD, dest=9, srcs=(9,), ea=0x10_0000 + i * stride
            )
        )
        pc += 4
    result = _run_trace(table1_config, records, "chase")
    stack = result.core.cpi_stack
    assert total(stack) == result.core.cycles
    memory = sum(
        stack.get(c, 0)
        for c in (cat.DCACHE_L1, cat.DCACHE_L2, cat.DCACHE_MEM)
    )
    assert memory > stack[cat.BASE]


def test_store_chain_charges_exec_not_store_data(table1_config):
    """Stores fed by a divide chain charge exec, never store_data.

    The store's data producer is always older, and commit is in order,
    so by the time a store reaches the window head its producer has
    committed and the data is ready — the wait shows up while the
    *producer* is at the head (exec), and ``store_data`` stays zero.
    The category remains as a tripwire: cycles appearing there would
    mean the commit discipline changed.
    """
    records = []
    pc = 0x4000
    for i in range(40):
        records.append(TraceRecord(pc, OpClass.FP_DIV, dest=40, srcs=(40,)))
        pc += 4
        records.append(
            TraceRecord(pc, OpClass.STORE, srcs=(1, 40), ea=0x20_0000 + i * 8)
        )
        pc += 4
    result = _run_trace(table1_config, records, "store-chain")
    stack = result.core.cpi_stack
    assert total(stack) == result.core.cycles
    assert stack.get(cat.STORE_DATA, 0) == 0
    assert stack[cat.EXEC] > 0


def test_mispredict_cycles_appear_for_random_branches(table1_config):
    """Alternating-taken branches defeat the BHT; dead time is charged."""
    records = []
    pc = 0x5000
    for i in range(120):
        records.append(TraceRecord(pc, OpClass.INT_ALU, dest=8, srcs=(1,)))
        records.append(
            TraceRecord(
                pc + 4,
                OpClass.BRANCH_COND,
                taken=(i % 2 == 0),
                target=pc + 16 if i % 2 == 0 else 0,
            )
        )
        if i % 2 == 0:
            pc += 16
        else:
            pc += 8
    result = _run_trace(table1_config, records, "mispredicts")
    stack = result.core.cpi_stack
    assert total(stack) == result.core.cycles
    assert result.core.branch_mispredictions > 0
    assert stack.get(cat.BRANCH_MISPREDICT, 0) > 0


# ---------------------------------------------------------------------------
# The invariant actually bites: a corrupted stack raises.
# ---------------------------------------------------------------------------


def test_finalize_raises_on_corrupted_stack(small_config):
    core = ProcessorCore(
        make_alu_loop(iterations=5),
        build_hierarchy(small_config),
        small_config.core,
        small_config.frontend,
        small_config.bht,
    )
    cycle = 0
    while not core.finished:
        if not core.step_cycle(cycle):
            cycle = core._next_cycle(cycle)
        else:
            cycle += 1
    core._stack[cat.BASE] += 3  # sabotage the books
    with pytest.raises(ConservationError) as excinfo:
        core.finalize_stats(cycle)
    message = str(excinfo.value)
    assert "+3" in message and "base" in message


def test_verify_conservation_message_has_delta_and_stack():
    stack = new_stack()
    stack[cat.BASE] = 7
    verify_conservation(stack, 7)  # exact: no raise
    with pytest.raises(ConservationError) as excinfo:
        verify_conservation(stack, 9, where="unit test")
    message = str(excinfo.value)
    assert "unit test" in message
    assert "-2" in message
    assert "base=7" in message


# ---------------------------------------------------------------------------
# Helper functions.
# ---------------------------------------------------------------------------


def test_stack_helpers_roundtrip():
    stack = new_stack()
    stack[cat.BASE] = 60
    stack[cat.DCACHE_L2] = 30
    stack[cat.ICACHE] = 10
    pruned = prune(stack)
    assert pruned == {cat.BASE: 60, cat.DCACHE_L2: 30, cat.ICACHE: 10}
    assert total(pruned) == 100
    fracs = fractions(pruned)
    assert fracs[cat.BASE] == pytest.approx(0.6)
    assert sum(fracs.values()) == pytest.approx(1.0)
    assert ordered_items(pruned)[0] == (cat.BASE, 60)


def test_collapse_fig7_conserves_cycles():
    stack = {
        cat.BASE: 40,
        cat.EXEC: 10,
        cat.DCACHE_L2: 25,
        cat.DCACHE_MEM: 5,
        cat.BRANCH_MISPREDICT: 12,
        cat.ICACHE: 8,
    }
    collapsed = collapse_fig7(stack)
    assert sum(collapsed.values()) == total(stack)
    assert collapsed["sx"] == 30
    assert collapsed["branch"] == 12
    assert collapsed["ibs/tlb"] == 8
    assert collapsed["core"] == 50
    # Unknown categories fold into core rather than vanishing.
    assert sum(collapse_fig7({"martian": 4}).values()) == 4


def test_merge_sums_elementwise():
    merged = merge([{cat.BASE: 3, cat.EXEC: 1}, {cat.BASE: 2, cat.DRAIN: 4}])
    assert merged == {cat.BASE: 5, cat.EXEC: 1, cat.DRAIN: 4}


def test_renderers_cover_all_categories():
    stack = {c: i + 1 for i, c in enumerate(cat.CPI_CATEGORIES)}
    text = render_stack(stack)
    for label in cat.CATEGORY_LABELS.values():
        assert label in text
    table = render_stack_table({"wl": stack})
    assert "wl" in table
    fig7 = render_stack_table({"wl": stack}, fig7=True)
    for group in cat.FIG7_ORDER:
        assert group in fig7


def test_every_category_mapped():
    """Drift guard: each category has a label and a Figure 7 bucket."""
    assert set(cat.CATEGORY_LABELS) == set(cat.CPI_CATEGORIES)
    assert set(cat.FIG7_GROUPS) == set(cat.CPI_CATEGORIES)
    assert set(cat.FIG7_GROUPS.values()) <= set(cat.FIG7_ORDER)
    assert set(cat.LEVEL_CATEGORY.values()) <= set(cat.CPI_CATEGORIES)
    assert set(cat.FETCH_CATEGORY.values()) <= set(cat.CPI_CATEGORIES)
    assert set(cat.DECODE_STALL_LABELS) == set(cat.DECODE_STALL_KINDS)


def test_runner_metrics_view_matches_registry():
    """ExperimentRunner.metrics() is the registry view of its results."""
    from repro.analysis.workloads import workload_by_name
    from repro.observe.registry import collect

    runner = ExperimentRunner()
    workload = workload_by_name("SPECint95", warm=1_000, timed=500)
    result = runner.run(base_config(), workload)

    metrics = runner.metrics()
    assert len(metrics) == 1
    (key, flat), = metrics.items()
    assert flat == collect(result)
    assert flat[f"cpistack.{cat.BASE}"] == result.core.cpi_stack[cat.BASE]
    assert total(result.core.cpi_stack) == sum(
        value for name, value in flat.items() if name.startswith("cpistack.")
    )
