"""Unit tests for the architected register model."""

import pytest

from repro.common.errors import SimulationError
from repro.isa.registers import (
    FCC,
    FP_REG_BASE,
    G0,
    ICC,
    RegisterFile,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    reg_name,
)


class TestFlatIds:
    def test_int_mapping(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31

    def test_fp_mapping(self):
        assert fp_reg(0) == FP_REG_BASE
        assert fp_reg(31) == FP_REG_BASE + 31

    def test_ranges_disjoint(self):
        ints = {int_reg(i) for i in range(32)}
        fps = {fp_reg(i) for i in range(32)}
        assert not ints & fps
        assert ICC not in ints | fps
        assert FCC not in ints | fps

    def test_predicates(self):
        assert is_int_reg(5)
        assert not is_int_reg(FP_REG_BASE)
        assert is_fp_reg(fp_reg(3))
        assert not is_fp_reg(ICC)

    def test_out_of_range(self):
        with pytest.raises(SimulationError):
            int_reg(32)
        with pytest.raises(SimulationError):
            fp_reg(-1)

    def test_names(self):
        assert reg_name(0) == "%r0"
        assert reg_name(fp_reg(4)) == "%f4"
        assert reg_name(ICC) == "%icc"
        assert reg_name(FCC) == "%fcc"
        with pytest.raises(SimulationError):
            reg_name(999)


class TestRegisterFile:
    def test_g0_hardwired_zero(self):
        regs = RegisterFile()
        regs.write_int(G0, 123)
        assert regs.read_int(G0) == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs.write_int(5, 42)
        assert regs.read_int(5) == 42

    def test_64bit_wrap(self):
        regs = RegisterFile()
        regs.write_int(5, 1 << 64)
        assert regs.read_int(5) == 0

    def test_signed_read(self):
        regs = RegisterFile()
        regs.write_int(5, (1 << 64) - 1)
        assert regs.read_int_signed(5) == -1

    def test_fp(self):
        regs = RegisterFile()
        regs.write_fp(2, 3.5)
        assert regs.read_fp(2) == 3.5

    def test_icc(self):
        regs = RegisterFile()
        regs.set_icc(0)
        assert regs.icc_zero and not regs.icc_negative
        regs.set_icc(-5)
        assert not regs.icc_zero and regs.icc_negative

    def test_fcc(self):
        regs = RegisterFile()
        regs.set_fcc(1.0, 2.0)
        assert regs.fcc_less and not regs.fcc_equal
        regs.set_fcc(2.0, 2.0)
        assert regs.fcc_equal and not regs.fcc_less

    def test_snapshot(self):
        regs = RegisterFile()
        regs.write_int(9, 7)
        snap = regs.snapshot()
        assert snap["int"][9] == 7
        regs.write_int(9, 8)
        assert snap["int"][9] == 7  # snapshot is a copy
