"""Unit tests for repro.common.rng."""

from collections import Counter

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 1000) for _ in range(50)] == [
            b.randint(0, 1000) for _ in range(50)
        ]

    def test_different_seed_different_stream(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10 ** 9) for _ in range(10)] != [
            b.randint(0, 10 ** 9) for _ in range(10)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.random() == b.random()

    def test_fork_independent_of_parent_consumption(self):
        parent1 = DeterministicRng(7)
        parent1.random()
        parent2 = DeterministicRng(7)
        assert parent1.fork(5).random() == parent2.fork(5).random()

    def test_forks_with_different_salts_differ(self):
        parent = DeterministicRng(7)
        assert parent.fork(1).random() != parent.fork(2).random()

    def test_seed_property(self):
        assert DeterministicRng(99).seed == 99


class TestDistributions:
    def test_chance_extremes(self):
        rng = DeterministicRng(1)
        assert all(rng.chance(1.0) for _ in range(10))
        assert not any(rng.chance(0.0) for _ in range(10))

    def test_chance_probability(self):
        rng = DeterministicRng(1)
        hits = sum(rng.chance(0.3) for _ in range(20000))
        assert 0.27 < hits / 20000 < 0.33

    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.randint(5, 9) for _ in range(500)]
        assert min(values) == 5
        assert max(values) == 9

    def test_geometric_mean(self):
        rng = DeterministicRng(11)
        draws = [rng.geometric(8.0) for _ in range(20000)]
        mean = sum(draws) / len(draws)
        assert 7.0 < mean < 9.0
        assert min(draws) >= 1

    def test_geometric_maximum_clamps(self):
        rng = DeterministicRng(11)
        assert all(rng.geometric(100.0, maximum=5) <= 5 for _ in range(200))

    def test_geometric_mean_one(self):
        rng = DeterministicRng(11)
        assert all(rng.geometric(1.0) == 1 for _ in range(20))

    def test_zipf_bounds(self):
        rng = DeterministicRng(5)
        values = [rng.zipf_index(100, 1.0) for _ in range(1000)]
        assert all(0 <= value < 100 for value in values)

    def test_zipf_skews_to_head(self):
        rng = DeterministicRng(5)
        values = [rng.zipf_index(1000, 1.5) for _ in range(5000)]
        head = sum(1 for value in values if value < 100)
        assert head / len(values) > 0.3  # far above the uniform 10%

    def test_zipf_zero_skew_is_uniform_like(self):
        rng = DeterministicRng(5)
        values = [rng.zipf_index(1000, 0.0) for _ in range(5000)]
        head = sum(1 for value in values if value < 100)
        assert 0.05 < head / len(values) < 0.15

    def test_zipf_population_one(self):
        rng = DeterministicRng(5)
        assert rng.zipf_index(1, 2.0) == 0

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng(13)
        picks = Counter(
            rng.weighted_choice(("a", "b"), (0.9, 0.1)) for _ in range(5000)
        )
        assert picks["a"] > picks["b"] * 4

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRng(17)
        items = list(range(20))
        assert sorted(rng.shuffled(items)) == items
