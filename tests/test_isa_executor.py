"""Unit tests for the functional SPARC-subset executor."""

import pytest

from repro.common.errors import SimulationError
from repro.isa.executor import ExecutionResult, FunctionalExecutor
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.opcodes import OpClass
from repro.isa.program import Program


def run(instructions, memory=None, max_steps=10_000):
    program = Program(name="t")
    for instruction in instructions:
        program.append(instruction)
    if memory:
        for address, value in memory.items():
            program.set_memory(address, value)
    return FunctionalExecutor(max_steps=max_steps).run(program)


class TestArithmetic:
    def test_add_immediate(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=10),
            Instruction(Mnemonic.ADD, rd=2, rs1=1, imm=5),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(2) == 15

    def test_add_register(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=10),
            Instruction(Mnemonic.MOV, rd=2, imm=32),
            Instruction(Mnemonic.ADD, rd=3, rs1=1, rs2=2),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(3) == 42

    def test_sub_negative_wraps(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=1),
            Instruction(Mnemonic.SUB, rd=2, rs1=0, rs2=1),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int_signed(2) == -1

    def test_logic_ops(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=0b1100),
            Instruction(Mnemonic.MOV, rd=2, imm=0b1010),
            Instruction(Mnemonic.AND, rd=3, rs1=1, rs2=2),
            Instruction(Mnemonic.OR, rd=4, rs1=1, rs2=2),
            Instruction(Mnemonic.XOR, rd=5, rs1=1, rs2=2),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(3) == 0b1000
        assert result.registers.read_int(4) == 0b1110
        assert result.registers.read_int(5) == 0b0110

    def test_shifts(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=4),
            Instruction(Mnemonic.SLL, rd=2, rs1=1, imm=3),
            Instruction(Mnemonic.SRL, rd=3, rs1=2, imm=1),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(2) == 32
        assert result.registers.read_int(3) == 16

    def test_mulx_sdivx(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=6),
            Instruction(Mnemonic.MOV, rd=2, imm=7),
            Instruction(Mnemonic.MULX, rd=3, rs1=1, rs2=2),
            Instruction(Mnemonic.SDIVX, rd=4, rs1=3, rs2=1),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(3) == 42
        assert result.registers.read_int(4) == 7

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            run([
                Instruction(Mnemonic.SDIVX, rd=1, rs1=0, rs2=0),
                Instruction(Mnemonic.HALT),
            ])

    def test_g0_write_discarded(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=0, imm=5),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(0) == 0


class TestFloatingPoint:
    def test_fadd_fmul(self):
        result = run([
            Instruction(Mnemonic.LDF, rd=1, rs1=0, imm=0x100),
            Instruction(Mnemonic.FADD, rd=2, rs1=1, rs2=1),
            Instruction(Mnemonic.FMUL, rd=3, rs1=2, rs2=2),
            Instruction(Mnemonic.HALT),
        ])
        # fp memory defaults to 0.0
        assert result.registers.read_fp(3) == 0.0

    def test_fmadd(self):
        result = run([
            Instruction(Mnemonic.FADD, rd=7, rs1=0, rs2=0),
            Instruction(Mnemonic.FMADD, rd=7, rs1=1, rs2=2),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_fp(7) == 0.0

    def test_fcmp_sets_fcc(self):
        result = run([
            Instruction(Mnemonic.FCMP, rs1=0, rs2=0),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.fcc_equal


class TestMemory:
    def test_store_load_roundtrip(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=0xDEAD),
            Instruction(Mnemonic.STX, rd=1, rs1=0, imm=0x2000),
            Instruction(Mnemonic.LDX, rd=2, rs1=0, imm=0x2000),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(2) == 0xDEAD

    def test_initial_memory(self):
        result = run(
            [
                Instruction(Mnemonic.LDX, rd=1, rs1=0, imm=0x3000),
                Instruction(Mnemonic.HALT),
            ],
            memory={0x3000: 77},
        )
        assert result.registers.read_int(1) == 77

    def test_effective_address_base_plus_imm(self):
        result = run(
            [
                Instruction(Mnemonic.MOV, rd=1, imm=0x3000),
                Instruction(Mnemonic.LDX, rd=2, rs1=1, imm=8),
                Instruction(Mnemonic.HALT),
            ],
            memory={0x3008: 99},
        )
        assert result.registers.read_int(2) == 99

    def test_record_carries_ea(self):
        result = run(
            [
                Instruction(Mnemonic.LDX, rd=1, rs1=0, imm=0x3000),
                Instruction(Mnemonic.HALT),
            ],
        )
        assert result.records[0].ea == 0x3000
        assert result.records[0].op == OpClass.LOAD


class TestControlFlow:
    def test_counted_loop(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=5),
            Instruction(Mnemonic.MOV, rd=2, imm=0),
            Instruction(Mnemonic.ADD, rd=2, rs1=2, imm=1, label="loop"),
            Instruction(Mnemonic.SUBCC, rd=0, rs1=2, rs2=1),
            Instruction(Mnemonic.BNE, target="loop"),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(2) == 5
        branch_records = [r for r in result.records if r.is_conditional_branch]
        assert [r.taken for r in branch_records] == [True] * 4 + [False]

    def test_ba_always(self):
        result = run([
            Instruction(Mnemonic.BA, target="end"),
            Instruction(Mnemonic.MOV, rd=1, imm=1),
            Instruction(Mnemonic.HALT, label="end"),
        ])
        assert result.registers.read_int(1) == 0

    def test_call_and_return(self):
        result = run([
            Instruction(Mnemonic.CALL, target="fn"),
            Instruction(Mnemonic.MOV, rd=3, imm=9),  # return lands here
            Instruction(Mnemonic.HALT),
            Instruction(Mnemonic.MOV, rd=2, imm=4, label="fn"),
            Instruction(Mnemonic.RET),
        ])
        assert result.registers.read_int(2) == 4
        assert result.registers.read_int(3) == 9

    def test_conditional_directions(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=3),
            Instruction(Mnemonic.SUBCC, rd=0, rs1=1, imm=3),  # zero
            Instruction(Mnemonic.BG, target="skip"),
            Instruction(Mnemonic.MOV, rd=2, imm=1),
            Instruction(Mnemonic.MOV, rd=3, imm=1, label="skip"),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(2) == 1  # BG not taken on equal

    def test_trace_control_flow_consistent(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=3),
            Instruction(Mnemonic.MOV, rd=2, imm=0),
            Instruction(Mnemonic.ADD, rd=2, rs1=2, imm=1, label="loop"),
            Instruction(Mnemonic.SUBCC, rd=0, rs1=2, rs2=1),
            Instruction(Mnemonic.BNE, target="loop"),
            Instruction(Mnemonic.HALT),
        ])
        from repro.trace.stream import Trace

        Trace(result.records).validate()


class TestLimits:
    def test_runaway_raises(self):
        with pytest.raises(SimulationError):
            run(
                [
                    Instruction(Mnemonic.BA, target="self", label="self"),
                ],
                max_steps=100,
            )

    def test_halt_on_limit_mode(self):
        program = Program(name="spin")
        program.append(Instruction(Mnemonic.BA, target="self", label="self"))
        executor = FunctionalExecutor(max_steps=100, halt_on_limit=True)
        result = executor.run(program)
        assert not result.halted
        assert result.steps == 100

    def test_fall_off_end_raises(self):
        with pytest.raises(SimulationError):
            run([Instruction(Mnemonic.NOP)])

    def test_special_mnemonics_are_nops(self):
        result = run([
            Instruction(Mnemonic.SAVE),
            Instruction(Mnemonic.RESTORE),
            Instruction(Mnemonic.MEMBAR),
            Instruction(Mnemonic.HALT),
        ])
        assert result.steps == 3
        assert all(r.op == OpClass.SPECIAL for r in result.records)


class TestExtendedOps:
    def test_sra_sign_extends(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=0),
            Instruction(Mnemonic.SUB, rd=2, rs1=1, imm=8),   # -8
            Instruction(Mnemonic.SRA, rd=3, rs1=2, imm=1),   # -4
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int_signed(3) == -4

    def test_srl_zero_extends(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=0),
            Instruction(Mnemonic.SUB, rd=2, rs1=1, imm=8),   # -8
            Instruction(Mnemonic.SRL, rd=3, rs1=2, imm=1),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int_signed(3) > 0

    def test_andn_orn_xnor(self):
        result = run([
            Instruction(Mnemonic.MOV, rd=1, imm=0b1100),
            Instruction(Mnemonic.MOV, rd=2, imm=0b1010),
            Instruction(Mnemonic.ANDN, rd=3, rs1=1, rs2=2),
            Instruction(Mnemonic.ORN, rd=4, rs1=1, rs2=2),
            Instruction(Mnemonic.XNOR, rd=5, rs1=1, rs2=2),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(3) == 0b0100
        assert result.registers.read_int_signed(4) == (0b1100 | ~0b1010)
        assert result.registers.read_int_signed(5) == ~(0b1100 ^ 0b1010)

    def test_sethi(self):
        result = run([
            Instruction(Mnemonic.SETHI, rd=1, imm=0x3FF),
            Instruction(Mnemonic.HALT),
        ])
        assert result.registers.read_int(1) == 0x3FF << 10

    def test_extended_ops_are_alu_class(self):
        from repro.isa.instructions import MNEMONIC_OPCLASS

        for mnemonic in (Mnemonic.SRA, Mnemonic.ANDN, Mnemonic.ORN,
                         Mnemonic.XNOR, Mnemonic.SETHI):
            assert MNEMONIC_OPCLASS[mnemonic] == OpClass.INT_ALU
