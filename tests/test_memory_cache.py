"""Unit tests for the set-associative cache model."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.memory.cache import LineState, SetAssociativeCache
from repro.memory.params import CacheGeometry


def make_cache(size=4096, ways=2, line=64, **kwargs):
    return SetAssociativeCache(
        CacheGeometry("test", size, ways, line_bytes=line, **kwargs)
    )


class TestGeometry:
    def test_sets(self):
        cache = make_cache(size=4096, ways=2, line=64)
        assert cache.geometry.sets == 32

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            CacheGeometry("bad", 4096, 3)  # sets not a power of two
        with pytest.raises(ConfigError):
            CacheGeometry("bad", 0, 1)
        with pytest.raises(ConfigError):
            CacheGeometry("bad", 4096, 2, line_bytes=48)

    def test_line_addr(self):
        cache = make_cache()
        assert cache.line_addr(0x1234) == 0x1200

    def test_bank_of(self):
        cache = make_cache(banks=8, bank_bytes=4)
        assert cache.bank_of(0) == 0
        assert cache.bank_of(4) == 1
        assert cache.bank_of(32) == 0


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.demand_accesses == 2
        assert cache.stats.demand_misses == 1

    def test_same_line_offsets_hit(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x1038)  # same 64B line

    def test_probe_does_not_count(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.probe(0x1000)
        assert cache.stats.demand_accesses == 0

    def test_prefetch_stats_separate(self):
        cache = make_cache()
        cache.lookup(0x1000, prefetch=True)
        assert cache.stats.prefetch_accesses == 1
        assert cache.stats.prefetch_misses == 1
        assert cache.stats.demand_accesses == 0

    def test_prefetch_useful_counted_once(self):
        cache = make_cache()
        cache.fill(0x1000, from_prefetch=True)
        cache.lookup(0x1000)
        cache.lookup(0x1000)
        assert cache.stats.prefetch_useful == 1


class TestReplacement:
    def test_lru_evicts_oldest(self):
        cache = make_cache(size=128, ways=2, line=64)  # 1 set, 2 ways
        cache.fill(0x0000)
        cache.fill(0x1000)
        cache.lookup(0x0000)  # touch to make 0x1000 the LRU
        evicted = cache.fill(0x2000)
        assert evicted is not None
        assert evicted.line_addr == 0x1000

    def test_dirty_eviction_reported(self):
        cache = make_cache(size=128, ways=1, line=64)
        cache.fill(0x0000, state=LineState.MODIFIED)
        evicted = cache.fill(0x1000)
        assert evicted.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_not_writeback(self):
        cache = make_cache(size=128, ways=1, line=64)
        cache.fill(0x0000, state=LineState.SHARED)
        evicted = cache.fill(0x1000)
        assert not evicted.dirty
        assert cache.stats.writebacks == 0

    def test_refill_existing_line_no_eviction(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.fill(0x1000) is None

    def test_direct_mapped_conflicts(self):
        cache = make_cache(size=128, ways=1, line=64)  # 2 sets
        cache.fill(0x0000)
        # Find another line that maps to the same (hashed) set.
        target_set = cache._index_tag(0x0000)[0]
        conflicting = next(
            addr for addr in range(0x40, 0x4000, 0x40)
            if cache._index_tag(addr)[0] == target_set
        )
        cache.fill(conflicting)
        assert not cache.resident(0x0000)


class TestCoherenceStates:
    def test_write_makes_modified(self):
        cache = make_cache()
        cache.fill(0x1000, state=LineState.SHARED)
        cache.lookup(0x1000, is_write=True)
        assert cache.probe(0x1000) == LineState.MODIFIED

    def test_downgrade(self):
        cache = make_cache()
        cache.fill(0x1000, state=LineState.MODIFIED)
        previous = cache.downgrade(0x1000, LineState.OWNED)
        assert previous == LineState.MODIFIED
        assert cache.probe(0x1000) == LineState.OWNED

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.invalidate(0x1000)
        assert not cache.resident(0x1000)
        assert cache.stats.invalidations_received == 1

    def test_invalidate_missing_line(self):
        cache = make_cache()
        assert cache.invalidate(0x1000) is None

    def test_dirty_states(self):
        assert LineState.MODIFIED.is_dirty
        assert LineState.OWNED.is_dirty
        assert not LineState.SHARED.is_dirty
        assert not LineState.EXCLUSIVE.is_dirty
        assert not LineState.INVALID.is_valid

    def test_fill_invalid_rejected(self):
        cache = make_cache()
        with pytest.raises(SimulationError):
            cache.fill(0x1000, state=LineState.INVALID)

    def test_valid_line_count(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.fill(0x2000)
        assert cache.valid_line_count() == 2
