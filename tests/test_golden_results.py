"""Golden-result regression tests.

``tests/golden/base_config.json`` pins the exact statistics of tiny
(5k-instruction) base-configuration runs of every standard workload,
plus one 2-processor TPC-C run.  The simulator is deterministic, so any
difference from the golden file means the model's numbers drifted —
deliberately (re-bless with ``REPRO_UPDATE_GOLDEN=1 pytest
tests/test_golden_results.py``) or by accident (this test fails with a
field-by-field diff).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import smp_workload, standard_workloads
from repro.model.config import base_config

GOLDEN_PATH = Path(__file__).parent / "golden" / "base_config.json"

#: 5k-instruction windows: 4k functional warm-up + 1k timed.
WARM = 4_000
TIMED = 1_000
SMP_CPUS = 2
SMP_WARM = 2_000
SMP_TIMED = 600

UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


def compute_current() -> dict:
    """Regenerate every pinned statistic from the current model."""
    runner = ExperimentRunner()
    config = base_config()
    workloads = {
        w.name: runner.run(config, w).as_dict(include_speed=False)
        for w in standard_workloads(warm=WARM, timed=TIMED)
    }
    smp = runner.run_smp(
        config, smp_workload(SMP_CPUS, warm=SMP_WARM, timed=SMP_TIMED), SMP_CPUS
    ).as_dict()
    return {
        "_meta": {
            "config": config.name,
            "warm": WARM,
            "timed": TIMED,
            "smp": {"cpus": SMP_CPUS, "warm": SMP_WARM, "timed": SMP_TIMED},
        },
        "workloads": workloads,
        "smp": smp,
    }


def diff_tables(golden: dict, current: dict) -> list:
    """Readable per-field differences between two nested stat tables."""
    lines = []
    for section in sorted(set(golden) | set(current)):
        gold_section = golden.get(section)
        new_section = current.get(section)
        if gold_section == new_section:
            continue
        if not (isinstance(gold_section, dict) and isinstance(new_section, dict)):
            lines.append(f"{section}: golden={gold_section!r} current={new_section!r}")
            continue
        for field in sorted(set(gold_section) | set(new_section)):
            gold = gold_section.get(field, "<absent>")
            new = new_section.get(field, "<absent>")
            if gold != new:
                lines.append(f"{section}.{field}: golden={gold!r} current={new!r}")
    return lines


@pytest.fixture(scope="module")
def current() -> dict:
    return compute_current()


def test_golden_file_exists():
    if UPDATE:
        pytest.skip("update mode: file is being rewritten")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; generate it with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden_results.py"
    )


def test_base_config_matches_golden(current):
    if UPDATE:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"golden file rewritten at {GOLDEN_PATH}")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    differences = diff_tables(golden["workloads"], current["workloads"])
    differences += diff_tables(
        {"smp": golden["smp"]}, {"smp": current["smp"]}
    )
    assert not differences, (
        "model statistics drifted from tests/golden/base_config.json:\n  "
        + "\n  ".join(differences)
        + "\nIf the change is intentional, re-bless with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden_results.py"
    )


def test_golden_covers_all_standard_workloads(current):
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert set(golden["workloads"]) == set(current["workloads"]) == {
        "SPECint95",
        "SPECfp95",
        "SPECint2000",
        "SPECfp2000",
        "TPC-C",
    }


def test_golden_sanity_bounds():
    """The pinned numbers themselves must be physically plausible."""
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for name, stats in golden["workloads"].items():
        assert 0.0 < stats["ipc"] <= 4.0, name
        for ratio_key in (
            "l1i_miss_ratio",
            "l1d_miss_ratio",
            "l2_miss_ratio",
            "bht_misprediction_ratio",
        ):
            assert 0.0 <= stats[ratio_key] <= 1.0, f"{name}.{ratio_key}"
    assert golden["smp"]["cpus"] == SMP_CPUS
    assert 0.0 < golden["smp"]["system_ipc"] <= 4.0 * SMP_CPUS
