"""Tests for parameter sweeps and workload characterisation."""

import pytest

from repro.analysis.characterize import characterize_trace, characterize_workload
from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweeps import (
    bht_size_sweep,
    l2_size_sweep,
    smp_scaling_sweep,
    window_size_sweep,
)
from repro.analysis.workloads import workload_by_name


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def small_tpcc():
    return workload_by_name("TPC-C", warm=20_000, timed=6_000)


@pytest.fixture(scope="module")
def small_int():
    return workload_by_name("SPECint95", warm=15_000, timed=6_000)


class TestSweeps:
    def test_l2_sweep_monotone_miss(self, runner, small_tpcc):
        result = l2_size_sweep((1, 4), workload=small_tpcc, runner=runner)
        misses = result.series["L2 miss ratio"]
        # Bigger L2 never misses more.
        assert misses[-1] <= misses[0] + 1e-9
        assert "L2 capacity" in result.format_table()

    def test_window_sweep_monotone_ipc(self, runner, small_int):
        result = window_size_sweep((16, 64), workload=small_int, runner=runner)
        ipcs = result.series["IPC"]
        assert ipcs[-1] >= ipcs[0] - 0.02  # deeper window never materially hurts

    def test_bht_sweep_monotone(self, runner, small_tpcc):
        result = bht_size_sweep((1024, 16384), workload=small_tpcc, runner=runner)
        rates = result.series["mispredict ratio"]
        assert rates[-1] <= rates[0] + 1e-9

    def test_smp_scaling(self, runner):
        result = smp_scaling_sweep((1, 2), runner=runner, warm=4000, timed=2000)
        assert len(result.series["system IPC"]) == 2
        # System throughput grows with a second processor.
        assert result.series["system IPC"][1] > result.series["system IPC"][0]

    def test_format_table(self, runner, small_int):
        result = window_size_sweep((16,), workload=small_int, runner=runner)
        text = result.format_table()
        assert "window" in text and "IPC" in text


class TestCharacterize:
    def test_trace_only(self, small_int):
        report = characterize_trace(small_int.trace())
        text = report.format_report()
        assert "instructions" in text
        assert "IPC" not in text  # no simulation requested

    def test_with_simulation(self, small_int):
        report = characterize_workload(small_int)
        text = report.format_report()
        assert "IPC" in text
        assert "L1D miss" in text

    def test_with_breakdown(self):
        workload = workload_by_name("SPECint95", warm=8000, timed=4000)
        report = characterize_workload(workload, with_breakdown=True)
        text = report.format_report()
        assert "time: core" in text
        report.breakdown.validate()
