"""Extra Reverse-Tracer coverage: memory sites, FP, multi-workload."""

import pytest

from repro.common.errors import TraceError
from repro.isa.executor import FunctionalExecutor
from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord, make_alu, make_load, make_store
from repro.trace.stream import Trace
from repro.trace.synth import generate_trace, standard_profiles
from repro.verify import ReverseTracer
from repro.trace.compare import compare_traces


class TestMemoryReplay:
    def test_load_site_replays_address(self):
        records = [
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9010),
            make_alu(0x1004, dest=9, srcs=(8,)),
        ] * 1
        program, fidelity = ReverseTracer().generate(Trace(records))
        result = FunctionalExecutor(max_steps=50, halt_on_limit=True).run(program)
        load_records = [r for r in result.records if r.is_load]
        assert load_records
        assert load_records[0].ea == 0x9010
        assert fidelity.memory_sites == 1
        assert fidelity.constant_address_sites == 1

    def test_store_site_replays(self):
        records = [make_store(0x1000, srcs=(1, 9), ea=0x9020)]
        program, _ = ReverseTracer().generate(Trace(records))
        result = FunctionalExecutor(max_steps=50, halt_on_limit=True).run(program)
        stores = [r for r in result.records if r.is_store]
        assert stores and stores[0].ea == 0x9020

    def test_fp_load_uses_fp_register(self):
        from repro.isa.registers import fp_reg

        records = [
            TraceRecord(0x1000, OpClass.LOAD, dest=fp_reg(4), srcs=(1,),
                        ea=0x9030, size=8),
        ]
        program, _ = ReverseTracer().generate(Trace(records))
        result = FunctionalExecutor(max_steps=50, halt_on_limit=True).run(program)
        loads = [r for r in result.records if r.is_load]
        assert loads and loads[0].dest == fp_reg(4)

    def test_varying_addresses_counted(self):
        records = [
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9000),
            make_alu(0x1004, dest=9, srcs=(8,)),
        ]
        records += [
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9100),
            make_alu(0x1004, dest=9, srcs=(8,)),
        ]
        # Stitch control flow: second visit needs a branch back.
        records = [
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9000),
            TraceRecord(0x1004, OpClass.BRANCH_UNCOND, taken=True, target=0x1000),
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9100),
            TraceRecord(0x1004, OpClass.BRANCH_UNCOND, taken=True, target=0x1000),
        ]
        program, fidelity = ReverseTracer().generate(Trace(records))
        assert fidelity.memory_sites == 1
        assert fidelity.constant_address_sites == 0  # address varied

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            ReverseTracer().generate(Trace([]))


class TestWorkloadReplays:
    @pytest.mark.parametrize("name", ["SPECfp95", "TPC-C"])
    def test_replay_similarity(self, name):
        trace = generate_trace(standard_profiles()[name], 2000, seed=3)
        program, fidelity = ReverseTracer().generate(trace)
        executor = FunctionalExecutor(max_steps=2000, halt_on_limit=True)
        replay = Trace(executor.run(program).records)
        comparison = compare_traces(trace, replay)
        # Not record-exact (documented approximations), but the replay
        # must be the same *kind* of program.
        assert comparison.mix_distance < 0.5
        assert fidelity.branch_exact_fraction > 0.6

    def test_program_deterministic(self):
        trace = generate_trace(standard_profiles()["SPECint95"], 1500, seed=4)
        a, _ = ReverseTracer().generate(trace)
        b, _ = ReverseTracer().generate(trace)
        assert [str(x) for x in a.instructions] == [str(x) for x in b.instructions]

    def test_loop_counter_budget_respected(self):
        trace = generate_trace(standard_profiles()["SPECint95"], 4000, seed=5)
        program, fidelity = ReverseTracer(max_loop_counters=3).generate(trace)
        assert fidelity.loop_sites_with_counters <= 3
