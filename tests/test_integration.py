"""End-to-end integration tests exercising whole-system behaviours.

These assert the *qualitative relationships* the paper's studies turn on,
at reduced scale so the suite stays fast.
"""

import pytest

from repro.analysis.workloads import workload_by_name
from repro.model.config import (
    base_config,
    l1_32k_1w_3c,
    l2_off_8m_1w,
    prefetch_off,
)
from repro.model.simulator import PerformanceModel


def run(config, workload):
    return PerformanceModel(config).run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
    )


@pytest.fixture(scope="module")
def tpcc():
    return workload_by_name("TPC-C", warm=40_000, timed=12_000)


@pytest.fixture(scope="module")
def fp95():
    return workload_by_name("SPECfp95", warm=40_000, timed=12_000)


@pytest.fixture(scope="module")
def int95():
    return workload_by_name("SPECint95", warm=40_000, timed=12_000)


class TestL1Study:
    """Figures 11-13: the small direct-mapped L1 must miss more on TPC-C."""

    def test_small_l1_misses_more(self, tpcc):
        big = run(base_config(), tpcc)
        small = run(l1_32k_1w_3c(), tpcc)
        assert small.miss_ratio("l1i") > big.miss_ratio("l1i")
        assert small.miss_ratio("l1d") > big.miss_ratio("l1d")

    def test_spec_less_sensitive_than_tpcc(self, tpcc, int95):
        big_tpcc = run(base_config(), tpcc)
        small_tpcc = run(l1_32k_1w_3c(), tpcc)
        big_int = run(base_config(), int95)
        small_int = run(l1_32k_1w_3c(), int95)
        tpcc_delta = small_tpcc.miss_ratio("l1i") - big_tpcc.miss_ratio("l1i")
        int_delta = small_int.miss_ratio("l1i") - big_int.miss_ratio("l1i")
        assert tpcc_delta > int_delta


class TestL2Study:
    """Figures 14-15: the direct-mapped off-chip L2 hurts TPC-C."""

    def test_off_chip_direct_mapped_slower_on_tpcc(self, tpcc):
        on_chip = run(base_config(), tpcc)
        off_chip = run(l2_off_8m_1w(), tpcc)
        assert off_chip.ipc < on_chip.ipc


class TestPrefetchStudy:
    """Figures 16-17: prefetch helps SPECfp most."""

    def test_prefetch_improves_fp(self, fp95):
        with_pf = run(base_config(), fp95)
        without_pf = run(prefetch_off(), fp95)
        assert with_pf.ipc > without_pf.ipc

    def test_prefetch_cuts_demand_misses(self, fp95):
        with_pf = run(base_config(), fp95)
        without_pf = run(prefetch_off(), fp95)
        assert with_pf.miss_ratio("l2") < without_pf.miss_ratio("l2")

    def test_with_demand_distinction(self, fp95):
        """Fig 17: total miss ratio (incl. prefetches) exceeds demand-only."""
        with_pf = run(base_config(), fp95)
        assert with_pf.miss_ratio("l2", demand_only=False) >= with_pf.miss_ratio("l2")


class TestWorkloadCharacter:
    """Figure 7 shapes at small scale."""

    def test_fp_branch_stalls_smaller_than_int(self, fp95, int95):
        fp_result = run(base_config(), fp95)
        int_result = run(base_config(), int95)
        assert fp_result.bht_misprediction_ratio < int_result.bht_misprediction_ratio

    def test_tpcc_misses_most(self, tpcc, int95):
        tpcc_result = run(base_config(), tpcc)
        int_result = run(base_config(), int95)
        assert tpcc_result.miss_ratio("l1i") > int_result.miss_ratio("l1i")
        assert tpcc_result.ipc < int_result.ipc

    def test_model_speed_reported(self, int95):
        result = run(base_config(), int95)
        # Pure-Python model: anywhere from 1k to 1M trace-instr/s.
        assert 1_000 < result.sim_speed < 10_000_000
