"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "SPARC-V9" in out
        assert "1.3 GHz" in out

    def test_table1_variant(self, capsys):
        main(["table1", "--config", "l2-off-8m-2w"])
        out = capsys.readouterr().out
        assert "8 MB" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "SPECint95", "--config", "nope"])

    def test_run_small(self, capsys):
        main(["run", "SPECint95", "--warm", "4000", "--timed", "2000"])
        out = capsys.readouterr().out
        assert "ipc" in out

    def test_trace_generation(self, tmp_path, capsys):
        path = tmp_path / "t.trc"
        main(["trace", "SPECfp95", str(path), "--length", "2000"])
        assert path.exists()
        out = capsys.readouterr().out
        assert "2,000 records" in out
        from repro.trace.io import read_trace

        assert len(read_trace(path)) == 2000

    def test_trace_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "SPECweb", str(tmp_path / "t.trc")])

    def test_verify(self, capsys):
        main(["verify", "--length", "1200", "--workload", "SPECint95"])
        out = capsys.readouterr().out
        assert "cross-check OK" in out

    def test_smp(self, capsys):
        main(["smp", "--cpus", "2", "--warm", "2000", "--timed", "1000"])
        out = capsys.readouterr().out
        assert "system_ipc" in out
