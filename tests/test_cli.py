"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "SPARC-V9" in out
        assert "1.3 GHz" in out

    def test_table1_variant(self, capsys):
        main(["table1", "--config", "l2-off-8m-2w"])
        out = capsys.readouterr().out
        assert "8 MB" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "SPECint95", "--config", "nope"])

    def test_run_small(self, capsys):
        main(["run", "SPECint95", "--warm", "4000", "--timed", "2000"])
        out = capsys.readouterr().out
        assert "ipc" in out

    def test_trace_generation(self, tmp_path, capsys):
        path = tmp_path / "t.trc"
        main(["trace", "SPECfp95", str(path), "--length", "2000"])
        assert path.exists()
        out = capsys.readouterr().out
        assert "2,000 records" in out
        from repro.trace.io import read_trace

        assert len(read_trace(path)) == 2000

    def test_trace_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "SPECweb", str(tmp_path / "t.trc")])

    def test_verify(self, capsys):
        main(["verify", "--length", "1200", "--workload", "SPECint95"])
        out = capsys.readouterr().out
        assert "cross-check OK" in out

    def test_smp(self, capsys):
        main(["smp", "--cpus", "2", "--warm", "2000", "--timed", "1000"])
        out = capsys.readouterr().out
        assert "system_ipc" in out


class TestServiceCommands:
    def test_submit_serve_status_roundtrip(self, tmp_path, capsys):
        queue = str(tmp_path / "q.jsonl")
        cache = str(tmp_path / "cache")
        main([
            "submit", "SPECint95", "--queue", queue, "--cache-dir", cache,
            "--warm", "2000", "--timed", "800", "--repeat", "3",
        ])
        out = capsys.readouterr().out
        assert "queued SPECint95@SPARC64-V" in out
        assert "3 submissions, single-flighted" in out
        assert "1 pending" in out

        main([
            "serve", "--queue", queue, "--cache-dir", cache,
            "--jobs", "1", "--quiet",
        ])
        out = capsys.readouterr().out
        assert "1 done" in out and "0 dead" in out
        assert "dedup 2" in out

        main(["status", "--queue", queue, "--cache-dir", cache])
        out = capsys.readouterr().out
        assert "done" in out and "stored" in out
        assert "SPECint95@SPARC64-V" in out

    def test_status_without_journal_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no queue journal"):
            main(["status", "--queue", str(tmp_path / "missing.jsonl")])

    def test_submit_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["submit", "SPECweb", "--queue", str(tmp_path / "q.jsonl")])

    def test_serve_reports_dead_jobs_in_exit_code(self, tmp_path, capsys):
        from repro.common import faults

        queue = str(tmp_path / "q.jsonl")
        cache = str(tmp_path / "cache")
        main([
            "submit", "SPECint95", "--queue", queue, "--cache-dir", cache,
            "--warm", "2000", "--timed", "800",
        ])
        capsys.readouterr()
        try:
            with pytest.raises(SystemExit):
                main([
                    "serve", "--queue", queue, "--cache-dir", cache,
                    "--jobs", "1", "--quiet", "--retries", "0",
                    "--on-failure", "skip",
                    "--inject-faults", "worker-raise,times=100",
                ])
            err = capsys.readouterr().err
            assert "retry budget" in err
        finally:
            faults.install_spec(None)
            faults.reset()
