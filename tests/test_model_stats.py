"""Unit tests for SimResult aggregation helpers."""

import pytest

from repro.core.pipeline import CoreStats
from repro.model.stats import SimResult, ipc_ratio


def make_result(cycles=100, instructions=100, **kwargs):
    return SimResult(
        config_name="cfg",
        trace_name="trace",
        core=CoreStats(cycles=cycles, instructions=instructions),
        **kwargs,
    )


class TestSimResult:
    def test_ipc(self):
        assert make_result(cycles=200, instructions=100).ipc == pytest.approx(0.5)

    def test_miss_ratio_lookup(self):
        result = make_result(
            l1d={"demand_miss_ratio": 0.25, "total_miss_ratio": 0.5}
        )
        assert result.miss_ratio("l1d") == 0.25
        assert result.miss_ratio("l1d", demand_only=False) == 0.5

    def test_miss_ratio_missing_key(self):
        assert make_result().miss_ratio("l2") == 0.0

    def test_as_dict_keys(self):
        data = make_result().as_dict()
        for key in ("config", "trace", "ipc", "l1d_miss_ratio", "replays"):
            assert key in data

    def test_summary_contains_all(self):
        text = make_result().summary()
        assert "config" in text and "ipc" in text


class TestIpcRatio:
    def test_ratio(self):
        fast = make_result(cycles=100, instructions=200)  # ipc 2
        slow = make_result(cycles=200, instructions=200)  # ipc 1
        assert ipc_ratio(fast, slow) == pytest.approx(2.0)

    def test_zero_baseline(self):
        fast = make_result()
        zero = make_result(cycles=0, instructions=0)
        assert ipc_ratio(fast, zero) == 0.0
