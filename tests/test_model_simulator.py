"""Integration tests for the assembled performance model."""

import pytest

from repro.common.errors import ConfigError
from repro.model.config import base_config
from repro.model.perfect import stall_breakdown
from repro.model.simulator import PerformanceModel
from repro.trace.stream import Trace
from repro.trace.synth import TraceGenerator, standard_profiles


@pytest.fixture(scope="module")
def int95_run():
    profile = standard_profiles()["SPECint95"]
    generator = TraceGenerator(profile, seed=11)
    trace = generator.generate(30_000)
    result = PerformanceModel(base_config()).run(
        trace, warmup_fraction=0.5, regions=generator.memory_regions()
    )
    return result


class TestRun:
    def test_all_instructions_commit(self, int95_run):
        assert int95_run.instructions == 15_000

    def test_plausible_ipc(self, int95_run):
        assert 0.3 < int95_run.ipc < 4.0

    def test_stats_populated(self, int95_run):
        assert int95_run.l1d["demand_accesses"] > 0
        assert 0.0 <= int95_run.miss_ratio("l1d") < 1.0
        assert int95_run.sim_speed > 0

    def test_summary_renders(self, int95_run):
        text = int95_run.summary()
        assert "ipc" in text

    def test_as_dict(self, int95_run):
        data = int95_run.as_dict()
        assert data["instructions"] == 15_000

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            PerformanceModel(base_config()).run(Trace([]))

    def test_bad_warmup_fraction(self):
        trace = Trace([__import__("repro.trace.record", fromlist=["make_alu"]).make_alu(0x1000, 8, ())])
        with pytest.raises(ConfigError):
            PerformanceModel(base_config()).run(trace, warmup_fraction=1.0)

    def test_deterministic(self):
        profile = standard_profiles()["SPECint95"]
        generator_a = TraceGenerator(profile, seed=3)
        trace_a = generator_a.generate(5000)
        generator_b = TraceGenerator(profile, seed=3)
        trace_b = generator_b.generate(5000)
        run_a = PerformanceModel(base_config()).run(
            trace_a, 0.4, regions=generator_a.memory_regions()
        )
        run_b = PerformanceModel(base_config()).run(
            trace_b, 0.4, regions=generator_b.memory_regions()
        )
        assert run_a.cycles == run_b.cycles


class TestPerfectStructures:
    @pytest.fixture(scope="class")
    def breakdown(self):
        profile = standard_profiles()["SPECint95"]
        generator = TraceGenerator(profile, seed=11)
        trace = generator.generate(20_000)
        return stall_breakdown(
            base_config(), trace, warmup_fraction=0.5,
            regions=generator.memory_regions(),
        )

    def test_sums_to_one(self, breakdown):
        total = breakdown.core + breakdown.branch + breakdown.ibs_tlb + breakdown.sx
        assert total == pytest.approx(1.0)

    def test_all_components_non_negative(self, breakdown):
        assert breakdown.core >= 0
        assert breakdown.branch >= 0
        assert breakdown.ibs_tlb >= 0
        assert breakdown.sx >= 0

    def test_core_dominates_for_specint(self, breakdown):
        assert breakdown.core > 0.35

    def test_as_dict(self, breakdown):
        data = breakdown.as_dict()
        assert set(data) == {"core", "branch", "ibs/tlb", "sx"}

    def test_perfect_model_is_faster(self):
        profile = standard_profiles()["SPECint95"]
        generator = TraceGenerator(profile, seed=13)
        trace = generator.generate(8000)
        regions = generator.memory_regions()
        base = PerformanceModel(base_config()).run(trace, 0.5, regions=regions)
        perfect = PerformanceModel(
            base_config().derived(
                "perfect",
                perfect_l1=True,
                perfect_l2=True,
                perfect_tlb=True,
                perfect_branch_prediction=True,
            )
        ).run(trace, 0.5, regions=regions)
        assert perfect.cycles <= base.cycles
