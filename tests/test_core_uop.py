"""Unit tests for Uop state and CoreStats."""

import pytest

from repro.core.pipeline import CoreStats
from repro.core.uop import FAR_FUTURE, Uop, UopState
from repro.isa.opcodes import OpClass
from repro.isa.registers import ICC
from repro.trace.record import TraceRecord


def make(op=OpClass.INT_ALU, **kwargs):
    return Uop(0, TraceRecord(0x1000, op, **kwargs), 0)


class TestUop:
    def test_initial_state(self):
        uop = make(dest=8, srcs=(1, 2))
        assert uop.state == UopState.WAITING
        assert uop.result_ready == FAR_FUTURE
        assert not uop.confirmed
        assert uop.epoch == 0

    def test_class_flags(self):
        assert make(OpClass.LOAD, dest=8, ea=0x100, size=8).is_load
        assert make(OpClass.STORE, ea=0x100, size=8).is_store
        assert make(OpClass.BRANCH_COND, srcs=(ICC,), taken=True, target=0x2000).is_branch
        alu = make()
        assert not (alu.is_load or alu.is_store or alu.is_branch)

    def test_op_property(self):
        assert make(OpClass.FP_FMA, dest=40, srcs=(33, 34)).op == OpClass.FP_FMA

    def test_repr_shows_state(self):
        text = repr(make(dest=8))
        assert "WAITING" in text

    def test_state_ordering_for_lsq_checks(self):
        # The LSQ relies on WAITING/INFLIGHT < DONE/COMMITTED numerically.
        assert UopState.WAITING.value < UopState.DONE.value
        assert UopState.INFLIGHT.value < UopState.DONE.value
        assert UopState.DONE.value < UopState.COMMITTED.value


class TestCoreStats:
    def test_ipc(self):
        stats = CoreStats(cycles=200, instructions=100)
        assert stats.ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert CoreStats().ipc == 0.0

    def test_misprediction_ratio(self):
        stats = CoreStats(branch_mispredictions=5, conditional_branches=50)
        assert stats.misprediction_ratio == pytest.approx(0.1)

    def test_misprediction_ratio_no_branches(self):
        assert CoreStats().misprediction_ratio == 0.0
