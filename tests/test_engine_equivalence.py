"""Reference vs fast core engine: bit-identity, everywhere.

The fast engine (:mod:`repro.core.fastcore`) is only allowed to exist
because it changes *nothing* observable: every counter, CPI-stack
bucket and derived metric must equal the reference engine's on every
workload, driver (merged ``run``, per-cycle ``step_cycle`` under SMP,
windowed ``run_measured`` under sampling) and µop representation
(prebuilt slots for bounded traces, the pooled recycling fallback for
megatraces).  These tests pin that contract; a single differing field
is a correctness bug in the fast engine, never an acceptable tradeoff.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.workloads import standard_workloads, workload_by_name
from repro.core import fastcore
from repro.frontend.bht import BHT_4K_2W_1T, BHT_16K_4W_2T
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.smp.system import run_smp
from repro.trace.sampling import SamplingPlan
from repro.trace.synth import build_smp_generators, standard_profiles

WARM = 2_000
TIMED = 5_000


def _strip_speed(payload):
    """Drop wall-clock-derived keys; everything else must be identical."""
    if isinstance(payload, dict):
        return {
            key: _strip_speed(value)
            for key, value in payload.items()
            if key not in ("sim_speed", "sim_speed_ips")
        }
    if isinstance(payload, list):
        return [_strip_speed(value) for value in payload]
    return payload


def _run_both(config, workload, **kwargs):
    trace = workload.trace()
    regions = workload.regions()
    reference = PerformanceModel(config, engine="reference").run(
        trace, warmup_fraction=workload.warmup_fraction, regions=regions, **kwargs
    )
    fast = PerformanceModel(config, engine="fast").run(
        trace, warmup_fraction=workload.warmup_fraction, regions=regions, **kwargs
    )
    return reference, fast


def _assert_identical(reference, fast):
    # Full serialised result (counters, cache stats, utilizations, ...).
    assert _strip_speed(fast.as_dict(include_speed=False)) == _strip_speed(
        reference.as_dict(include_speed=False)
    )
    # Core stats dataclass, including the CPI stack and stall breakdowns.
    assert dataclasses.asdict(fast.core) == dataclasses.asdict(reference.core)
    assert fast.cpi_stack_report() == reference.cpi_stack_report()


@pytest.mark.parametrize(
    "name", ["SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000", "TPC-C"]
)
def test_all_profiles_identical(name):
    workload = next(
        w for w in standard_workloads(warm=WARM, timed=TIMED) if w.name == name
    )
    reference, fast = _run_both(base_config(), workload)
    _assert_identical(reference, fast)


def test_smp_identical():
    """SMP steps cores via step_cycle; both engines must agree there too."""
    generators = build_smp_generators(standard_profiles()["TPC-C"], 2, seed=7)
    traces = [generator.generate(6_000) for generator in generators]
    regions = [generator.memory_regions() for generator in generators]
    reference = run_smp(
        base_config(), traces, warmup_fraction=0.25,
        regions_per_cpu=regions, engine="reference",
    )
    fast = run_smp(
        base_config(), traces, warmup_fraction=0.25,
        regions_per_cpu=regions, engine="fast",
    )
    assert _strip_speed(fast.to_dict()) == _strip_speed(reference.to_dict())
    assert fast.as_dict() == reference.as_dict()


def test_sampled_identical():
    """Windowed run_measured under a SMARTS plan is also bit-identical."""
    plan = SamplingPlan(period=4_000, sample_length=400, warmup=300,
                        detail_warmup=600)
    workload = workload_by_name("TPC-C", warm=0, timed=20_000)
    trace = workload.trace()
    regions = workload.regions()
    reference = PerformanceModel(base_config(), engine="reference").run_sampled(
        trace, plan, regions=regions
    )
    fast = PerformanceModel(base_config(), engine="fast").run_sampled(
        trace, plan, regions=regions
    )
    assert _strip_speed(fast.to_dict()) == _strip_speed(reference.to_dict())
    assert fast.window_stacks == reference.window_stacks
    assert fast.estimates_report() == reference.estimates_report()


def test_pooled_fallback_identical(monkeypatch):
    """Megatrace path: pooled slot recycling instead of prebuilt µops.

    Forcing the prebuild limit to -1 makes every trace take the pooled
    path, so this run exercises slot recycling, epoch bumps and the
    rename-map-backed decode — all invisible in the results.
    """
    monkeypatch.setattr(fastcore, "_PREBUILD_LIMIT", -1)
    workload = workload_by_name("TPC-C", warm=WARM, timed=TIMED)
    reference, fast = _run_both(base_config(), workload)
    _assert_identical(reference, fast)


def _tracer_pair():
    from repro.observe import PipelineTracer

    return PipelineTracer(capacity=2_048), PipelineTracer(capacity=2_048)


def test_traced_runs_identical():
    """Attaching a tracer must not perturb either engine's numbers."""
    workload = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
    ref_tracer, fast_tracer = _tracer_pair()
    trace = workload.trace()
    regions = workload.regions()
    reference = PerformanceModel(base_config(), engine="reference").run(
        trace, warmup_fraction=workload.warmup_fraction, regions=regions,
        tracer=ref_tracer,
    )
    fast = PerformanceModel(base_config(), engine="fast").run(
        trace, warmup_fraction=workload.warmup_fraction, regions=regions,
        tracer=fast_tracer,
    )
    _assert_identical(reference, fast)


# ----------------------------------------------------------------------
# Property test: random small machines, same contract.
# ----------------------------------------------------------------------

_PROFILES = ("SPECint95", "SPECfp95", "TPC-C")


@st.composite
def small_configs(draw):
    base = base_config()
    issue = draw(st.sampled_from((2, 4)))
    core = base.core.derived(
        issue_width=issue,
        commit_width=issue,
        window_size=draw(st.sampled_from((16, 32, 64))),
        rsa_entries=draw(st.sampled_from((4, 10))),
        rsbr_entries=draw(st.sampled_from((3, 6))),
        load_queue=draw(st.sampled_from((6, 16))),
        store_queue=draw(st.sampled_from((5, 10))),
        data_forwarding=draw(st.booleans()),
    )
    return base.derived(
        "prop",
        core=core,
        bht=draw(st.sampled_from((BHT_4K_2W_1T, BHT_16K_4W_2T))),
        perfect_branch_prediction=draw(st.booleans()),
        prefetch=base.prefetch if draw(st.booleans()) else
        dataclasses.replace(base.prefetch, enabled=False),
    )


@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    config=small_configs(),
    profile=st.sampled_from(_PROFILES),
    timed=st.integers(min_value=1_500, max_value=3_000),
)
def test_random_small_configs_identical(config, profile, timed):
    workload = workload_by_name(profile, warm=500, timed=timed)
    reference, fast = _run_both(config, workload)
    _assert_identical(reference, fast)
