"""Unit tests for Trace container, validation, and statistics."""

import pytest

from repro.common.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord, make_alu, make_branch, make_load
from repro.trace.stream import Trace


def sequential_records(count, base=0x1000):
    return [make_alu(base + 4 * i, dest=8, srcs=(1,)) for i in range(count)]


class TestContainer:
    def test_len_iter_index(self):
        trace = Trace(sequential_records(5))
        assert len(trace) == 5
        assert list(trace)[0].pc == 0x1000
        assert trace[2].pc == 0x1008

    def test_slice_returns_trace(self):
        trace = Trace(sequential_records(10), name="t")
        sliced = trace[2:5]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 3

    def test_head(self):
        trace = Trace(sequential_records(10))
        assert len(trace.head(4)) == 4

    def test_append_extend(self):
        trace = Trace()
        trace.append(make_alu(0x1000, dest=8, srcs=()))
        trace.extend(sequential_records(2, base=0x1004))
        assert len(trace) == 3


class TestValidation:
    def test_valid_sequential(self):
        Trace(sequential_records(20)).validate()

    def test_valid_with_taken_branch(self):
        records = [
            make_alu(0x1000, dest=8, srcs=()),
            make_branch(0x1004, taken=True, target=0x2000),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        Trace(records).validate()

    def test_control_flow_break_rejected(self):
        records = [
            make_alu(0x1000, dest=8, srcs=()),
            make_alu(0x2000, dest=8, srcs=()),
        ]
        with pytest.raises(TraceError):
            Trace(records).validate()

    def test_memory_without_address_rejected(self):
        record = TraceRecord(0x1000, OpClass.LOAD, dest=8)
        with pytest.raises(TraceError):
            Trace([record]).validate()

    def test_taken_branch_without_target_rejected(self):
        record = TraceRecord(0x1000, OpClass.BRANCH_COND, taken=True)
        with pytest.raises(TraceError):
            Trace([record]).validate()


class TestStats:
    def test_mix_fractions(self):
        records = [
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9000),
            make_alu(0x1004, dest=9, srcs=(8,)),
            make_branch(0x1008, taken=True, target=0x1000),
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9040),
        ]
        stats = Trace(records).stats()
        assert stats.instruction_count == 4
        assert stats.load_fraction == pytest.approx(0.5)
        assert stats.branch_fraction == pytest.approx(0.25)
        assert stats.taken_branch_fraction == pytest.approx(1.0)

    def test_footprints(self):
        records = [
            make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9000),
            make_load(0x1004, dest=8, addr_srcs=(1,), ea=0x9040),
        ]
        stats = Trace(records).stats(line_bytes=64)
        assert stats.unique_data_lines == 2
        assert stats.unique_code_lines == 1
        assert stats.data_footprint_bytes == 128

    def test_privileged_fraction(self):
        records = [
            TraceRecord(0x1000, OpClass.INT_ALU, privileged=True),
            TraceRecord(0x1004, OpClass.INT_ALU),
        ]
        assert Trace(records).stats().privileged_fraction == pytest.approx(0.5)

    def test_empty_trace_stats(self):
        stats = Trace([]).stats()
        assert stats.instruction_count == 0
        assert stats.load_fraction == 0.0

    def test_as_dict(self):
        stats = Trace(sequential_records(4)).stats()
        data = stats.as_dict()
        assert data["instruction_count"] == 4
        assert "op_counts" in data
