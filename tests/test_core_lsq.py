"""Unit tests for the load/store unit (queues, ports, forwarding)."""

import pytest

from repro.core.lsq import LoadStoreUnit
from repro.core.params import CoreParams
from repro.core.uop import Uop, UopState
from repro.isa.opcodes import OpClass
from repro.model.simulator import build_hierarchy
from repro.trace.record import TraceRecord


@pytest.fixture
def lsu(small_config):
    hierarchy = build_hierarchy(small_config)
    return LoadStoreUnit(CoreParams(), hierarchy), hierarchy


def load_uop(seq, ea):
    return Uop(seq, TraceRecord(0x1000 + seq * 4, OpClass.LOAD, dest=8,
                                srcs=(1,), ea=ea, size=8), 0)


def store_uop(seq, ea, data_producer=None):
    return Uop(seq, TraceRecord(0x1000 + seq * 4, OpClass.STORE,
                                srcs=(1, 9), ea=ea, size=8), 0)


class TestAllocation:
    def test_load_queue_capacity(self, lsu):
        unit, _ = lsu
        for seq in range(16):
            assert unit.can_allocate_load()
            unit.allocate(load_uop(seq, 0x1000 + seq * 64))
        assert not unit.can_allocate_load()
        assert unit.lq_full_stalls == 1

    def test_store_queue_capacity(self, lsu):
        unit, _ = lsu
        for seq in range(10):
            assert unit.can_allocate_store()
            unit.allocate(store_uop(seq, 0x1000 + seq * 64))
        assert not unit.can_allocate_store()

    def test_release_frees_load_entry(self, lsu):
        unit, _ = lsu
        uop = load_uop(0, 0x1000)
        unit.allocate(uop)
        unit.release(uop)
        assert unit.occupancy() == (0, 0)

    def test_non_memory_uop_rejected(self, lsu):
        from repro.common.errors import SimulationError

        unit, _ = lsu
        alu = Uop(0, TraceRecord(0x1000, OpClass.INT_ALU, dest=8), 0)
        with pytest.raises(SimulationError):
            unit.allocate(alu)


class TestIssue:
    def test_load_issues_after_address(self, lsu):
        unit, _ = lsu
        uop = load_uop(0, 0x8000)
        uop.state = UopState.INFLIGHT
        unit.allocate(uop)
        resolutions, _ = unit.step(0)
        assert resolutions == []  # address unknown
        unit.address_generated(uop, cycle=3, predicted_ready=7)
        resolutions, _ = unit.step(3)
        assert len(resolutions) == 1
        assert resolutions[0].uop is uop

    def test_port_limit_two_per_cycle(self, lsu):
        unit, _ = lsu
        uops = []
        for seq in range(4):
            uop = load_uop(seq, 0x8000 + seq * 68)  # distinct banks/lines
            uop.state = UopState.INFLIGHT
            unit.allocate(uop)
            unit.address_generated(uop, cycle=0, predicted_ready=4)
            uops.append(uop)
        resolutions, _ = unit.step(0)
        assert len(resolutions) == 2  # two L1D ports (§3.2)
        resolutions, _ = unit.step(1)
        assert len(resolutions) == 2

    def test_bank_conflict_retries(self, lsu):
        unit, _ = lsu
        # Same bank: same (addr // 4) % 8 — use identical offsets 2KB apart.
        a = load_uop(0, 0x8000)
        b = load_uop(1, 0x8000 + 2048)
        for uop in (a, b):
            uop.state = UopState.INFLIGHT
            unit.allocate(uop)
            unit.address_generated(uop, cycle=0, predicted_ready=4)
        resolutions, _ = unit.step(0)
        assert len(resolutions) == 1
        assert unit.bank_conflicts == 1
        resolutions, _ = unit.step(1)
        assert len(resolutions) == 1  # retried next cycle

    def test_prediction_held_flag(self, lsu):
        unit, hierarchy = lsu
        # Warm the line so the load hits at exactly the predicted time.
        hierarchy.l1d.fill(0x8000)
        hierarchy.dtlb.translate(0x8000)
        uop = load_uop(0, 0x8000)
        uop.state = UopState.INFLIGHT
        unit.allocate(uop)
        predicted = 3 + hierarchy.l1d.geometry.hit_latency
        unit.address_generated(uop, cycle=3, predicted_ready=predicted)
        resolutions, _ = unit.step(3)
        assert resolutions[0].prediction_held
        assert resolutions[0].level == "l1"

    def test_miss_breaks_prediction(self, lsu):
        unit, hierarchy = lsu
        uop = load_uop(0, 0x8000)
        uop.state = UopState.INFLIGHT
        unit.allocate(uop)
        unit.address_generated(uop, cycle=3, predicted_ready=7)
        resolutions, _ = unit.step(3)
        assert not resolutions[0].prediction_held


class TestOrderingAndForwarding:
    def test_unknown_store_address_blocks_younger_load(self, lsu):
        unit, _ = lsu
        store = store_uop(0, 0x8000)
        store.state = UopState.INFLIGHT
        unit.allocate(store)  # address not generated yet
        load = load_uop(1, 0x9000)
        load.state = UopState.INFLIGHT
        unit.allocate(load)
        unit.address_generated(load, cycle=0, predicted_ready=4)
        resolutions, _ = unit.step(0)
        assert resolutions == []
        assert unit.order_stalls == 1

    def test_forwarding_from_matching_store(self, lsu):
        unit, _ = lsu
        store = store_uop(0, 0x8000)
        store.state = UopState.INFLIGHT
        unit.allocate(store, data_producer=None)  # data ready immediately
        unit.address_generated(store, cycle=0, predicted_ready=0)
        load = load_uop(1, 0x8000)
        load.state = UopState.INFLIGHT
        unit.allocate(load)
        unit.address_generated(load, cycle=0, predicted_ready=4)
        resolutions, _ = unit.step(1)
        assert len(resolutions) == 1
        assert resolutions[0].level == "forward"
        assert unit.forwards == 1

    def test_store_writes_after_commit(self, lsu):
        unit, hierarchy = lsu
        store = store_uop(0, 0x8000)
        store.state = UopState.INFLIGHT
        unit.allocate(store)
        unit.address_generated(store, cycle=0, predicted_ready=0)
        _, activity = unit.step(1)
        assert hierarchy.l1d.stats.demand_accesses == 0  # not yet committed
        unit.store_committed(store, cycle=2)
        unit.step(3)
        assert hierarchy.l1d.stats.demand_accesses == 1

    def test_load_cancel_resets_entry(self, lsu):
        unit, _ = lsu
        uop = load_uop(0, 0x8000)
        uop.state = UopState.INFLIGHT
        unit.allocate(uop)
        unit.address_generated(uop, cycle=0, predicted_ready=4)
        unit.load_cancelled(uop)
        resolutions, _ = unit.step(0)
        assert resolutions == []  # address invalidated


class TestWakeHints:
    def test_pending_work_cycle(self, lsu):
        unit, _ = lsu
        assert unit.pending_work_cycle(0) is None
        uop = load_uop(0, 0x8000)
        uop.state = UopState.INFLIGHT
        unit.allocate(uop)
        unit.address_generated(uop, cycle=10, predicted_ready=14)
        assert unit.pending_work_cycle(0) == 10
