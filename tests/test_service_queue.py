"""Unit tests for the durable lease-based job queue.

Every test drives :class:`repro.service.queue.JobQueue` with explicit
``now`` timestamps — no sleeping — so lease arithmetic, retry gating,
and requeue behaviour are checked exactly.  Durability tests reopen the
journal in a fresh instance and assert the replayed state matches.
"""

from __future__ import annotations

import json

import pytest

from repro.common import faults
from repro.common.errors import QueueFull, ServiceError
from repro.service.queue import DEAD, DONE, PENDING, RUNNING, JobQueue

T0 = 1_000_000.0  # arbitrary wall-clock origin for explicit-time tests


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install_spec(None)
    faults.reset()


def _spec(name: str) -> dict:
    return {"v": 1, "kind": "up", "workload": name, "config": "base"}


def _submit(queue: JobQueue, name: str):
    return queue.submit("up", _spec(name), f"{name}@base", f"key-{name}")


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl", lease_seconds=30.0) as queue:
            job = _submit(queue, "a")
            assert job.state == PENDING
            claimed = queue.claim("w1", now=T0)
            assert claimed is job and job.state == RUNNING
            assert job.lease_deadline == T0 + 30.0
            assert queue.complete(job.key, "w1") is True
            assert job.state == DONE
            assert queue.drained()
            assert queue.stats.completions == 1

    def test_fifo_claim_order(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            for name in ("a", "b", "c"):
                _submit(queue, name)
            order = [queue.claim("w", now=T0).key for _ in range(3)]
            assert order == ["key-a", "key-b", "key-c"]

    def test_claim_respects_backoff_gate(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            job = _submit(queue, "a")
            queue.claim("w", now=T0)
            queue.fail(job.key, "w", "boom", retries=2, not_before=T0 + 10.0)
            assert job.state == PENDING
            assert queue.claim("w", now=T0 + 5.0) is None  # gate closed
            assert not queue.claimable(now=T0 + 5.0)
            assert queue.claim("w", now=T0 + 10.0) is job  # gate open

    def test_completion_is_idempotent(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            assert queue.complete(job.key, "w1") is True
            assert queue.complete(job.key, "w2") is False
            assert queue.stats.completions == 1
            assert queue.stats.duplicate_completions == 1

    def test_complete_unknown_job_raises(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            with pytest.raises(ServiceError, match="unknown job"):
                queue.complete("nope", "w")

    def test_retry_budget_exhaustion_goes_dead(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            job = _submit(queue, "a")
            queue.claim("w", now=T0)
            assert queue.fail(job.key, "w", "x", retries=1) == "requeued"
            assert job.state == PENDING and job.attempts == 1
            queue.claim("w", now=T0)
            assert queue.fail(job.key, "w", "x", retries=1) == "dead"
            assert job.state == DEAD
            assert queue.drained()  # dead is terminal


class TestSingleFlight:
    def test_duplicate_submissions_share_one_job(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            first = _submit(queue, "a")
            for _ in range(4):
                again = _submit(queue, "a")
                assert again is first
            assert len(queue.jobs) == 1
            assert first.submissions == 5
            assert queue.stats.submitted == 5
            assert queue.stats.deduped == 4

    def test_dedup_survives_restart(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path) as queue:
            _submit(queue, "a")
            _submit(queue, "a")
        with JobQueue(path) as replayed:
            assert replayed.resumed
            assert replayed.jobs["key-a"].submissions == 2
            assert replayed.stats.deduped == 1


class TestLeases:
    def test_expired_lease_requeues(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl", lease_seconds=10.0) as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            assert queue.expire_leases(now=T0 + 9.9) == []
            assert queue.expire_leases(now=T0 + 10.1) == [job.key]
            assert job.state == PENDING and job.worker is None
            assert queue.stats.lease_expiries == 1
            # The job is claimable again, uncharged.
            assert job.attempts == 0
            assert queue.claim("w2", now=T0 + 11.0) is job

    def test_heartbeat_extends_lease(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl", lease_seconds=10.0) as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            assert queue.heartbeat(job.key, now=T0 + 8.0, force=True)
            assert job.lease_deadline == T0 + 18.0
            assert queue.expire_leases(now=T0 + 10.1) == []

    def test_fresh_lease_renewal_skips_journal(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path, lease_seconds=10.0) as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            lines_before = path.read_text().count("\n")
            # Deadline is still > lease/2 away: renewal is a no-op.
            assert queue.heartbeat(job.key, now=T0 + 1.0)
            assert path.read_text().count("\n") == lines_before
            # Past the halfway point it journals.
            assert queue.heartbeat(job.key, now=T0 + 6.0)
            assert path.read_text().count("\n") == lines_before + 1

    def test_release_requeues_without_charging(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            queue.release(job.key, "pool-restart")
            assert job.state == PENDING and job.attempts == 0
            assert queue.stats.requeues == 1
            assert queue.stats.lease_expiries == 0


class TestCapacity:
    def test_local_submit_sheds_loudly(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl", capacity=2) as queue:
            _submit(queue, "a")
            _submit(queue, "b")
            with pytest.raises(QueueFull, match="capacity"):
                _submit(queue, "c")
            # Duplicates of a known job never shed (no new backlog).
            _submit(queue, "a")
            assert queue.stats.deduped == 1

    def test_enforce_capacity_sheds_foreign_overflow(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path) as submitter:  # unbounded foreign submitter
            for name in ("a", "b", "c", "d"):
                _submit(submitter, name)
        with JobQueue(path, capacity=2) as server:
            shed = server.enforce_capacity()
            # Newest submissions shed first; earlier ones keep their spot.
            assert shed == ["key-d", "key-c"]
            assert server.stats.shed == 2
            assert sorted(server.jobs) == ["key-a", "key-b"]
        with JobQueue(path, capacity=2) as replayed:
            assert sorted(replayed.jobs) == ["key-a", "key-b"]
            assert replayed.stats.shed == 2


class TestDurability:
    def test_full_history_replays(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path, lease_seconds=10.0) as queue:
            a = _submit(queue, "a")
            b = _submit(queue, "b")
            queue.claim("w1", now=T0)
            queue.complete(a.key, "w1")
            queue.claim("w1", now=T0)  # b now running under a live lease
        with JobQueue(path, lease_seconds=10.0) as replayed:
            assert replayed.resumed
            assert replayed.jobs["key-a"].state == DONE
            running = replayed.jobs["key-b"]
            assert running.state == RUNNING
            # The lease is wall-clock, so the new instance can expire it.
            assert replayed.expire_leases(now=T0 + 11.0) == [running.key]
            assert running.state == PENDING

    def test_torn_tail_is_sealed_and_dropped(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path) as queue:
            _submit(queue, "a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ev":"done","job":"key-a","wor')  # crash mid-append
        with JobQueue(path) as replayed:
            # The torn record is held back, not applied: it might be an
            # active writer mid-append rather than a crash.
            assert replayed.jobs["key-a"].state == PENDING
            _submit(replayed, "b")  # appending seals the torn tail first
        with JobQueue(path) as again:
            # Once sealed, the torn line is complete garbage: dropped.
            assert again.stats.recovered_drops == 1
            assert sorted(again.jobs) == ["key-a", "key-b"]
            assert again.jobs["key-a"].state == PENDING

    def test_stale_code_version_quarantines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path, code_hash="old") as queue:
            _submit(queue, "a")
        with JobQueue(path, code_hash="new") as fresh:
            assert fresh.jobs == {}
            assert not fresh.resumed
        assert path.with_suffix(".jsonl.stale").exists()

    def test_garbage_header_quarantines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text("not json at all\n")
        with JobQueue(path) as queue:
            assert queue.jobs == {}
            _submit(queue, "a")  # fresh journal starts cleanly
        assert path.with_suffix(".jsonl.stale").exists()

    def test_cross_instance_poll(self, tmp_path):
        """A server picks up submissions journaled by another process."""
        path = tmp_path / "q.jsonl"
        server = JobQueue(path)
        _submit(server, "a")
        submitter = JobQueue(path)
        assert submitter.jobs["key-a"].state == PENDING  # replay sees it
        _submit(submitter, "b")
        _submit(submitter, "a")  # foreign duplicate
        assert server.poll() == 2
        assert sorted(server.jobs) == ["key-a", "key-b"]
        assert server.jobs["key-a"].submissions == 2
        assert server.poll() == 0  # nothing new; own events skipped
        server.close()
        submitter.close()

    def test_own_events_not_double_applied(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            _submit(queue, "a")
            assert queue.poll() == 0
            assert queue.jobs["key-a"].submissions == 1
            assert queue.stats.submitted == 1


class TestServiceFaults:
    def test_lease_expiry_fault_forces_requeue(self, tmp_path):
        faults.install_spec("lease-expiry,times=1")
        with JobQueue(tmp_path / "q.jsonl", lease_seconds=1000.0) as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            # Lease is nowhere near lapsed, but the fault forces it.
            assert queue.expire_leases(now=T0 + 1.0) == [job.key]
            queue.claim("w1", now=T0 + 2.0)
            assert queue.expire_leases(now=T0 + 3.0) == []  # times=1 spent

    def test_heartbeat_stall_fault_swallows_renewal(self, tmp_path):
        faults.install_spec("heartbeat-stall,times=1")
        with JobQueue(tmp_path / "q.jsonl", lease_seconds=10.0) as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            assert queue.heartbeat(job.key, now=T0 + 8.0, force=True) is False
            assert job.lease_deadline == T0 + 10.0  # unchanged
            assert queue.heartbeat(job.key, now=T0 + 8.0, force=True) is True

    def test_duplicate_delivery_hands_out_running_job(self, tmp_path):
        faults.install_spec("duplicate-delivery,times=1")
        with JobQueue(tmp_path / "q.jsonl") as queue:
            job = _submit(queue, "a")
            _submit(queue, "b")
            first = queue.claim("w1", now=T0)
            assert first is job
            # The fault makes the next claim re-deliver the running job
            # instead of handing out the pending one.
            again = queue.claim("w2", now=T0)
            assert again is job
            assert queue.stats.duplicate_deliveries == 1
            # Fault spent: the next claim proceeds normally.
            assert queue.claim("w3", now=T0).key == "key-b"

    def test_match_scopes_service_faults(self, tmp_path):
        faults.install_spec("lease-expiry,times=5,match=b@base")
        with JobQueue(tmp_path / "q.jsonl", lease_seconds=1000.0) as queue:
            a = _submit(queue, "a")
            b = _submit(queue, "b")
            queue.claim("w1", now=T0)
            queue.claim("w1", now=T0)
            assert queue.expire_leases(now=T0 + 1.0) == [b.key]
            assert a.state == RUNNING


class TestValidation:
    def test_bad_lease_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="lease_seconds"):
            JobQueue(tmp_path / "q.jsonl", lease_seconds=0.0)

    def test_bad_capacity_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="capacity"):
            JobQueue(tmp_path / "q.jsonl", capacity=0)

    def test_journal_records_are_one_line_json(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path) as queue:
            job = _submit(queue, "a")
            queue.claim("w1", now=T0)
            queue.complete(job.key, "w1")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 4  # header + submit + claim + done
        for line in lines:
            assert isinstance(json.loads(line), dict)
