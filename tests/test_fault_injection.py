"""Fault-injection tests: every failure class recovers or fails loudly.

Uses :mod:`repro.common.faults` to deterministically inject the four
failure classes the pipeline claims to survive —

1. a worker process that *crashes* (``os._exit``, like a SIGKILL/OOM),
2. a worker that *hangs* (caught by the wall-clock watchdog),
3. a *corrupt result-cache entry* (detected, deleted, recomputed),
4. a *damaged trace file* (truncation and bit-flips; typed errors or
   counted drops in ``skip_corrupt`` mode)

— and asserts that the recovered statistics are bit-identical to a
clean serial run, plus that an interrupted sweep campaign resumed from
its manifest reproduces the uninterrupted sweep exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis.campaign import CampaignManifest
from repro.analysis.policy import RunPolicy
from repro.analysis.runner import ExperimentRunner, ParallelRunner
from repro.analysis.sweeps import l2_size_sweep
from repro.analysis.workloads import workload_by_name
from repro.common import faults
from repro.common.errors import ConfigError, InjectedFault, TraceError
from repro.model.config import base_config
from repro.trace.io import last_read_report, read_trace, write_trace
from repro.trace.record import make_load
from repro.trace.stream import Trace

WARM = 2_000
TIMED = 800


@pytest.fixture(autouse=True)
def _clean_faults():
    """No fault spec may leak into other tests (or their workers)."""
    yield
    faults.install_spec(None)
    faults.reset()


def _workload(name="SPECint95"):
    return workload_by_name(name, warm=WARM, timed=TIMED)


def _stats(result):
    return result.as_dict(include_speed=False)


def _fast_policy(**kwargs) -> RunPolicy:
    return RunPolicy(backoff_base=0.01, backoff_max=0.05, **kwargs)


class TestSpecParsing:
    def test_parse_full_grammar(self):
        specs = faults.parse_spec(
            "worker-hang,times=2,hang=5,match=TPC;cache-corrupt,p=0.5,seed=7"
        )
        assert [s.kind for s in specs] == ["worker-hang", "cache-corrupt"]
        assert specs[0].times == 2 and specs[0].hang == 5.0
        assert specs[0].match == "TPC"
        assert specs[1].probability == 0.5 and specs[1].seed == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            faults.parse_spec("worker-explode")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault parameters"):
            faults.parse_spec("worker-crash,bogus=1")

    def test_malformed_value_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            faults.parse_spec("worker-crash,times=lots")

    def test_probability_draws_are_cross_process_stable(self):
        """Two injectors from the same spec make identical decisions."""
        spec = "worker-raise,p=0.5,times=100"
        decisions = []
        for _ in range(2):
            injector = faults.FaultInjector.from_spec(spec)
            outcome = []
            for attempt in range(20):
                try:
                    injector.worker_fault("site", attempt)
                    outcome.append(False)
                except InjectedFault:
                    outcome.append(True)
            decisions.append(outcome)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_match_filters_sites(self):
        injector = faults.FaultInjector.from_spec("worker-raise,match=TPC-C")
        injector.worker_fault("SPECint95@SPARC64-V", 0)  # no match: no fault
        with pytest.raises(InjectedFault):
            injector.worker_fault("TPC-C@SPARC64-V", 0)


class TestWorkerCrash:
    def test_crashed_worker_is_retried_bit_identically(self, tmp_path):
        """Failure class 1: hard worker death (os._exit, like an OOM kill).

        The crash breaks the pool; the runner must respawn it, charge
        the run one attempt, and converge to the serial statistics.
        """
        config, workload = base_config(), _workload()
        expected = _stats(ExperimentRunner().run(config, workload))

        faults.install_spec("worker-crash,times=1")
        runner = ParallelRunner(
            jobs=2, cache_dir=str(tmp_path), policy=_fast_policy(retries=1)
        )
        runner.prefetch(up=[(config, workload)])
        assert runner.stats.retries == 1
        assert runner.stats.pool_restarts >= 1
        assert runner.stats.runs_in_workers == 1  # retry stayed in the pool
        assert _stats(runner.run(config, workload)) == expected


class TestWorkerHang:
    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        """Failure class 2: a wedged worker, reclaimed by the watchdog.

        ``shutdown()`` cannot cancel a running task, so the watchdog
        must kill the pool outright; the hang is charged as a timeout
        and the retry (attempt 1, past ``times=1``) runs clean.
        """
        config, workload = base_config(), _workload()
        expected = _stats(ExperimentRunner().run(config, workload))

        faults.install_spec("worker-hang,times=1,hang=60")
        runner = ParallelRunner(
            jobs=2,
            cache_dir=str(tmp_path),
            policy=_fast_policy(timeout=0.75, retries=1),
        )
        runner.prefetch(up=[(config, workload)])
        assert runner.stats.timeouts == 1
        assert runner.stats.retries == 1
        assert runner.stats.pool_restarts >= 1
        assert _stats(runner.run(config, workload)) == expected


class TestCorruptCache:
    def test_corrupt_entry_is_detected_and_recomputed(self, tmp_path):
        """Failure class 3: a scribbled cache entry must read as a miss."""
        config, workload = base_config(), _workload()

        faults.install_spec("cache-corrupt,times=1")
        writer = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        first = writer.run(config, workload)
        faults.install_spec(None)

        reader = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        recomputed = reader.run(config, workload)
        assert reader.stats.disk_hits == 0
        assert reader.stats.misses == 1
        assert reader.cache.stats.corrupt >= 1
        assert _stats(recomputed) == _stats(first)

        # The recompute healed the entry: a third runner hits disk.
        third = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        assert _stats(third.run(config, workload)) == _stats(first)
        assert third.stats.disk_hits == 1


def _sample_trace(n=200) -> Trace:
    records = [
        make_load(0x1000 + 4 * i, dest=8, addr_srcs=(1,), ea=0x9000 + 8 * i)
        for i in range(n)
    ]
    return Trace(records, name="fault-sample", cpu=0)


class TestDamagedTraces:
    def test_truncated_trace_fails_loudly(self, tmp_path):
        """Failure class 4a: truncation (full disk, torn copy)."""
        path = tmp_path / "t.trc"
        faults.install_spec("trace-truncate,times=1")
        write_trace(_sample_trace(), path)
        faults.install_spec(None)
        with pytest.raises(TraceError, match=r"truncated|mismatch"):
            read_trace(path)

    def test_truncated_trace_salvage_counts_drops(self, tmp_path):
        path = tmp_path / "t.trc"
        faults.install_spec("trace-truncate,times=1")
        write_trace(_sample_trace(200), path)
        faults.install_spec(None)
        salvaged = read_trace(path, skip_corrupt=True)
        report = last_read_report()
        assert 0 < len(salvaged) < 200
        assert report.dropped == 200 - len(salvaged)
        assert not report.clean

    def test_bitflipped_trace_fails_loudly(self, tmp_path):
        """Failure class 4b: a single flipped bit anywhere past the magic."""
        path = tmp_path / "t.trc"
        faults.install_spec("trace-bitflip,times=1")
        write_trace(_sample_trace(), path)
        faults.install_spec(None)
        with pytest.raises(TraceError, match=r"corrupt|truncated|mismatch"):
            read_trace(path)

    def test_unfaulted_writes_are_untouched(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(_sample_trace(), path)
        loaded = read_trace(path)
        assert len(loaded) == 200
        assert last_read_report().clean


class TestResumableCampaign:
    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path):
        """An interrupted campaign, resumed from its manifest, must
        reproduce the uninterrupted sweep exactly (acceptance criterion).
        """
        workload = _workload("TPC-C")
        sizes = (1, 2, 4)
        expected = l2_size_sweep(
            sizes_mb=sizes, workload=workload, runner=ExperimentRunner()
        )

        manifest_path = tmp_path / "campaign.jsonl"
        cache_dir = str(tmp_path / "cache")

        # "Interrupted" campaign: only the first point completes before
        # the (simulated) kill.
        first = ParallelRunner(
            jobs=1,
            cache_dir=cache_dir,
            manifest=CampaignManifest(manifest_path),
        )
        l2_size_sweep(sizes_mb=sizes[:1], workload=workload, runner=first)
        first.manifest.close()
        first.close()

        resumed = CampaignManifest(manifest_path)
        assert resumed.resumed and len(resumed) == 1

        second = ParallelRunner(jobs=2, cache_dir=cache_dir, manifest=resumed)
        got = l2_size_sweep(sizes_mb=sizes, workload=workload, runner=second)
        assert second.stats.disk_hits == 1  # finished point replayed, not rerun
        assert second.stats.misses == len(sizes) - 1
        assert got.series == expected.series
        assert not got.is_partial
        assert len(resumed) == len(sizes)
        resumed.close()
        second.close()


class TestServiceFaultKinds:
    """The five service fault classes added for repro.service."""

    def test_new_kinds_parse(self):
        specs = faults.parse_spec(
            "lease-expiry,times=2;heartbeat-stall,match=TPC;"
            "kill-mid-write;duplicate-delivery;store-corrupt,times=3"
        )
        assert [s.kind for s in specs] == [
            "lease-expiry",
            "heartbeat-stall",
            "kill-mid-write",
            "duplicate-delivery",
            "store-corrupt",
        ]

    def test_lease_expiry_counts_down_times(self):
        injector = faults.FaultInjector.from_spec("lease-expiry,times=2")
        assert injector.lease_expired("a@base") is True
        assert injector.lease_expired("a@base") is True
        assert injector.lease_expired("a@base") is False  # budget spent
        assert injector.fired["lease-expiry"] == 2

    def test_heartbeat_stall_respects_match(self):
        injector = faults.FaultInjector.from_spec("heartbeat-stall,match=TPC-C")
        assert injector.stall_heartbeat("SPECint95@SPARC64-V") is False
        assert injector.stall_heartbeat("TPC-C@SPARC64-V") is True

    def test_duplicate_delivery_fires_once_by_default(self):
        injector = faults.FaultInjector.from_spec("duplicate-delivery")
        assert injector.duplicate_delivery("a@base") is True
        assert injector.duplicate_delivery("a@base") is False

    def test_store_corrupt_truncates_final_file(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text("x" * 100, encoding="utf-8")
        injector = faults.FaultInjector.from_spec("store-corrupt,times=1")
        faults.install(injector)
        faults.corrupt_store_file(target)
        assert target.stat().st_size == 50
        faults.corrupt_store_file(target)  # budget spent: untouched
        assert target.stat().st_size == 50

    def test_attempt_scope_spares_store_faults_on_retry(self, tmp_path):
        """Store-side sites have no natural attempt number; attempt_scope
        supplies one so `times=N` spares attempts >= N, letting retries
        converge even though the counter would otherwise be per-process."""
        target = tmp_path / "entry.json"
        injector = faults.FaultInjector.from_spec("store-corrupt,times=1")
        faults.install(injector)
        # Retry attempt (1) is spared even though the site never fired.
        target.write_text("x" * 100, encoding="utf-8")
        with faults.attempt_scope(1):
            faults.corrupt_store_file(target)
        assert target.stat().st_size == 100
        # First attempt (0) fires.
        with faults.attempt_scope(0):
            faults.corrupt_store_file(target)
        assert target.stat().st_size == 50

    def test_kill_mid_write_dies_without_exposing_entry(self, tmp_path):
        """Subprocess proof of the store's atomicity: a writer killed
        between temp write and rename exits with CRASH_EXIT_CODE and
        leaves no entry visible (only temp debris at worst)."""
        import os
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        script = (
            "from repro.common import faults\n"
            "from repro.analysis.cache import ResultCache\n"
            "faults.install_spec('kill-mid-write,times=1')\n"
            f"cache = ResultCache({str(tmp_path)!r})\n"
            "key = cache.key('up', 'cfg', 'wl')\n"
            "open('key.txt', 'w').write(key)\n"
            "cache.store(key, {'ipc': 1.0})\n"
            "raise SystemExit('store unexpectedly survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=str(tmp_path),
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == faults.CRASH_EXIT_CODE
        key = (tmp_path / "key.txt").read_text()
        cache = __import__(
            "repro.analysis.cache", fromlist=["ResultCache"]
        ).ResultCache(str(tmp_path))
        assert cache.load(key) is None  # miss, never a torn entry
        assert cache.stats.corrupt == 0
        # The fsync'd temp file is the only trace of the dead writer.
        assert list(tmp_path.glob("*.tmp"))
