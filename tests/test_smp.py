"""Unit and integration tests for the SMP coherence domain and system."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.memory.bus import Bus
from repro.memory.cache import LineState
from repro.memory.dram import MemoryController
from repro.model.simulator import build_hierarchy
from repro.smp.coherence import CoherenceDomain
from repro.smp.system import SmpSystem, run_smp
from repro.trace.synth import generate_smp_traces, standard_profiles


@pytest.fixture
def domain(small_config):
    bus = Bus(small_config.system_bus)
    memory = MemoryController(small_config.memory)
    domain = CoherenceDomain(bus, memory)
    hierarchies = []
    for cpu in range(2):
        hierarchy = build_hierarchy(
            small_config, cpu=cpu, shared_system_bus=bus, shared_memory=memory
        )
        domain.attach(hierarchy)
        hierarchies.append(hierarchy)
    return domain, hierarchies


LINE = 0x8000


class TestProtocol:
    def test_read_miss_from_memory_exclusive(self, domain):
        dom, (a, b) = domain
        result = dom.fetch_line(0, cpu=0, line_addr=LINE, is_write=False)
        assert not result.from_cache
        assert result.state == LineState.EXCLUSIVE

    def test_read_of_clean_remote_installs_shared(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.EXCLUSIVE)
        result = dom.fetch_line(0, cpu=1, line_addr=LINE, is_write=False)
        assert result.state == LineState.SHARED

    def test_dirty_remote_serves_cache_to_cache(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.MODIFIED)
        result = dom.fetch_line(0, cpu=1, line_addr=LINE, is_write=False)
        assert result.from_cache  # the move-out of §3.3
        assert result.state == LineState.SHARED
        assert a.l2.probe(LINE) == LineState.OWNED
        assert dom.stats.cache_to_cache == 1

    def test_write_miss_invalidates_remotes(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.SHARED)
        result = dom.fetch_line(0, cpu=1, line_addr=LINE, is_write=True)
        assert result.state == LineState.MODIFIED
        assert a.l2.probe(LINE) is None
        assert dom.stats.invalidations_sent == 1

    def test_write_miss_pulls_dirty_line(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.MODIFIED)
        result = dom.fetch_line(0, cpu=1, line_addr=LINE, is_write=True)
        assert result.from_cache
        assert a.l2.probe(LINE) is None

    def test_upgrade_invalidates(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.SHARED)
        b.l2.fill(LINE, state=LineState.SHARED)
        dom.upgrade_line(0, cpu=1, line_addr=LINE)
        assert a.l2.probe(LINE) is None
        assert b.l2.probe(LINE) == LineState.SHARED  # requester keeps its copy

    def test_snoop_invalidation_reaches_l1(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.SHARED)
        a.l1d.fill(LINE, state=LineState.SHARED)
        dom.fetch_line(0, cpu=1, line_addr=LINE, is_write=True)
        assert a.l1d.probe(LINE) is None

    def test_cache_to_cache_faster_than_memory(self, domain):
        dom, (a, b) = domain
        a.l2.fill(LINE, state=LineState.MODIFIED)
        remote = dom.fetch_line(0, cpu=1, line_addr=LINE, is_write=False)
        cold = dom.fetch_line(0, cpu=1, line_addr=0x20000, is_write=False)
        assert remote.ready_cycle < cold.ready_cycle

    def test_duplicate_cpu_rejected(self, domain, small_config):
        dom, (a, b) = domain
        dup = build_hierarchy(small_config, cpu=0)
        with pytest.raises(SimulationError):
            dom.attach(dup)


class TestSmpSystem:
    @pytest.fixture(scope="class")
    def smp_result(self):
        from repro.model.config import MachineConfig
        from repro.frontend.bht import BhtParams
        from repro.memory.params import (
            BusParams, CacheGeometry, MemoryParams, PrefetchParams, TlbGeometry,
        )

        config = MachineConfig(
            name="small-smp",
            l1i=CacheGeometry("L1I", 8 * 1024, 2, hit_latency=3, mshr_count=4),
            l1d=CacheGeometry("L1D", 8 * 1024, 2, hit_latency=4, mshr_count=4,
                              banks=8, bank_bytes=4),
            l2=CacheGeometry("L2", 64 * 1024, 4, hit_latency=12, mshr_count=8),
            itlb=TlbGeometry("ITLB", entries=16, ways=4, miss_penalty=20),
            dtlb=TlbGeometry("DTLB", entries=16, ways=4, miss_penalty=20),
            l1_l2_bus=BusParams("l1l2", latency=2, bytes_per_cycle=32),
            system_bus=BusParams("sys", latency=10, bytes_per_cycle=8),
            memory=MemoryParams(latency=60, channels=2, channel_occupancy=8),
            prefetch=PrefetchParams(streams=8),
            bht=BhtParams("small-bht", entries=256, ways=4, access_latency=2),
        )
        traces = generate_smp_traces(standard_profiles()["TPC-C"], 2, 4000, seed=3)
        return run_smp(config, traces, warmup_fraction=0.25)

    def test_all_cpus_commit(self, smp_result):
        assert smp_result.cpu_count == 2
        assert smp_result.total_instructions == 2 * 3000

    def test_system_ipc_positive(self, smp_result):
        assert smp_result.ipc > 0
        assert smp_result.per_cpu_ipc <= smp_result.ipc

    def test_coherence_traffic_happened(self, smp_result):
        coherence = smp_result.coherence
        assert coherence["read_misses"] + coherence["write_misses"] > 0

    def test_per_cpu_results(self, smp_result):
        assert len(smp_result.per_cpu) == 2
        for result in smp_result.per_cpu:
            assert result.instructions == 3000

    def test_as_dict(self, smp_result):
        data = smp_result.as_dict()
        assert data["cpus"] == 2
        assert "coherence" in data

    def test_empty_traces_rejected(self, small_config):
        with pytest.raises(ConfigError):
            SmpSystem(small_config, [])

    def test_sharing_causes_invalidations(self, small_config):
        profile = standard_profiles()["TPC-C"].derived(
            shared_access_fraction=0.2, shared_write_fraction=0.5
        )
        traces = generate_smp_traces(profile, 2, 6000, seed=5)
        result = run_smp(small_config, traces, warmup_fraction=0.2)
        assert (
            result.coherence["invalidations_sent"]
            + result.coherence["upgrades"]
            + result.coherence["cache_to_cache"]
            > 0
        )
