"""Unit tests for trace file formats."""

import json
import struct

import pytest

from repro.common.errors import TraceError
from repro.trace.io import last_read_report, read_trace, write_trace
from repro.trace.record import TraceRecord, make_branch, make_load, make_store
from repro.trace.stream import Trace
from repro.isa.opcodes import OpClass


@pytest.fixture
def sample_trace():
    records = [
        make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9000),
        TraceRecord(0x1004, OpClass.INT_ALU, dest=9, srcs=(8,)),
        make_store(0x1008, srcs=(1, 9), ea=0x9008),
        make_branch(0x100C, taken=True, target=0x1000),
        TraceRecord(0x1000, OpClass.SPECIAL, privileged=True),
    ]
    return Trace(records, name="sample", cpu=3)


@pytest.mark.parametrize("suffix", [".jsonl", ".trc"])
class TestRoundTrip:
    def test_records_identical(self, tmp_path, sample_trace, suffix):
        path = tmp_path / f"trace{suffix}"
        write_trace(sample_trace, path)
        loaded = read_trace(path)
        assert loaded.records == sample_trace.records

    def test_metadata_preserved(self, tmp_path, sample_trace, suffix):
        path = tmp_path / f"trace{suffix}"
        write_trace(sample_trace, path)
        loaded = read_trace(path)
        assert loaded.name == "sample"
        assert loaded.cpu == 3

    def test_empty_trace(self, tmp_path, sample_trace, suffix):
        path = tmp_path / f"empty{suffix}"
        write_trace(Trace([], name="empty"), path)
        assert len(read_trace(path)) == 0


class TestErrors:
    def test_unknown_suffix(self, tmp_path, sample_trace):
        with pytest.raises(TraceError):
            write_trace(sample_trace, tmp_path / "trace.bin")
        with pytest.raises(TraceError):
            read_trace(tmp_path / "trace.xyz")

    def test_empty_jsonl_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_binary_magic(self, tmp_path):
        path = tmp_path / "x.trc"
        path.write_bytes(b"NOPE1234")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_malformed_jsonl_record(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"header": {"name": "x", "cpu": 0, "count": 1}}\n{"nope": 1}\n')
        with pytest.raises(TraceError):
            read_trace(path)


def _big_trace(count=300):
    records = [
        make_load(0x1000 + 4 * i, dest=8, addr_srcs=(1,), ea=0x9000 + 8 * i)
        for i in range(count)
    ]
    return Trace(records, name="framed", cpu=1)


class TestBinaryFraming:
    """SPT2 integrity framing: truncation and corruption must not pass."""

    def test_truncation_names_file_and_offset(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(_big_trace(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError, match=rf"{path.name}.*byte \d+"):
            read_trace(path)

    def test_single_bitflip_is_caught_by_crc(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(_big_trace(), path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="checksum mismatch"):
            read_trace(path)

    def test_footer_count_flip_is_caught(self, tmp_path):
        # The CRC covers the body, not the footer, so the count field
        # needs its own header/footer cross-check.
        path = tmp_path / "t.trc"
        write_trace(_big_trace(), path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, len(data) - 8, 7)  # footer count := 7
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="count mismatch"):
            read_trace(path)

    def test_skip_corrupt_salvages_prefix(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(_big_trace(300), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        salvaged = read_trace(path, skip_corrupt=True)
        report = last_read_report()
        assert 0 < len(salvaged) < 300
        assert salvaged.records == _big_trace(300).records[: len(salvaged)]
        assert report.dropped == 300 - len(salvaged)
        assert report.defects and not report.clean

    def test_clean_read_reports_clean(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(_big_trace(50), path)
        read_trace(path)
        report = last_read_report()
        assert report.clean and report.records == 50 and report.dropped == 0


class TestLegacyBinary:
    """SPT1 files (previous release: no footer) must still load."""

    @staticmethod
    def _downgrade(path):
        """Rewrite an SPT2 file as its SPT1 equivalent (strip framing)."""
        data = path.read_bytes()
        assert data[:4] == b"SPT2"
        path.write_bytes(b"SPT1" + data[4:-12])  # footer is magic + <II

    def test_legacy_file_round_trips(self, tmp_path, sample_trace):
        path = tmp_path / "t.trc"
        write_trace(sample_trace, path)
        self._downgrade(path)
        loaded = read_trace(path)
        assert loaded.records == sample_trace.records
        assert last_read_report().clean  # no framing, nothing to verify

    def test_legacy_truncation_still_typed(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(_big_trace(), path)
        self._downgrade(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)


class TestJsonlFraming:
    def test_removed_line_is_detected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(_big_trace(20), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last record
        with pytest.raises(TraceError, match="promises 20"):
            read_trace(path)

    def test_edited_line_is_detected_by_crc(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(_big_trace(20), path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[3])
        record["ea"] += 8  # a plausible but wrong effective address
        lines[3] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="checksum mismatch"):
            read_trace(path)

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(_big_trace(5), path)
        lines = path.read_text().splitlines()
        lines[2] = '{"pc": 4096, "op"'  # torn mid-line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="line 3"):
            read_trace(path)

    def test_skip_corrupt_drops_and_counts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(_big_trace(10), path)
        lines = path.read_text().splitlines()
        lines[4] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        salvaged = read_trace(path, skip_corrupt=True)
        report = last_read_report()
        assert len(salvaged) == 9
        assert report.dropped == 1 and not report.clean

    def test_legacy_header_without_crc_loads(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(_big_trace(8), path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["header"]["crc"]
        del header["header"]["count"]
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        assert len(read_trace(path)) == 8


class TestBinaryCompactness:
    def test_binary_smaller_than_jsonl(self, tmp_path):
        records = [make_load(0x1000 + 4 * i, dest=8, addr_srcs=(1,), ea=0x9000 + 8 * i)
                   for i in range(500)]
        trace = Trace(records, name="big")
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.trc"
        write_trace(trace, jsonl)
        write_trace(trace, binary)
        assert binary.stat().st_size < jsonl.stat().st_size / 2
