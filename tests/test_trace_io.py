"""Unit tests for trace file formats."""

import pytest

from repro.common.errors import TraceError
from repro.trace.io import read_trace, write_trace
from repro.trace.record import TraceRecord, make_branch, make_load, make_store
from repro.trace.stream import Trace
from repro.isa.opcodes import OpClass


@pytest.fixture
def sample_trace():
    records = [
        make_load(0x1000, dest=8, addr_srcs=(1,), ea=0x9000),
        TraceRecord(0x1004, OpClass.INT_ALU, dest=9, srcs=(8,)),
        make_store(0x1008, srcs=(1, 9), ea=0x9008),
        make_branch(0x100C, taken=True, target=0x1000),
        TraceRecord(0x1000, OpClass.SPECIAL, privileged=True),
    ]
    return Trace(records, name="sample", cpu=3)


@pytest.mark.parametrize("suffix", [".jsonl", ".trc"])
class TestRoundTrip:
    def test_records_identical(self, tmp_path, sample_trace, suffix):
        path = tmp_path / f"trace{suffix}"
        write_trace(sample_trace, path)
        loaded = read_trace(path)
        assert loaded.records == sample_trace.records

    def test_metadata_preserved(self, tmp_path, sample_trace, suffix):
        path = tmp_path / f"trace{suffix}"
        write_trace(sample_trace, path)
        loaded = read_trace(path)
        assert loaded.name == "sample"
        assert loaded.cpu == 3

    def test_empty_trace(self, tmp_path, sample_trace, suffix):
        path = tmp_path / f"empty{suffix}"
        write_trace(Trace([], name="empty"), path)
        assert len(read_trace(path)) == 0


class TestErrors:
    def test_unknown_suffix(self, tmp_path, sample_trace):
        with pytest.raises(TraceError):
            write_trace(sample_trace, tmp_path / "trace.bin")
        with pytest.raises(TraceError):
            read_trace(tmp_path / "trace.xyz")

    def test_empty_jsonl_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_binary_magic(self, tmp_path):
        path = tmp_path / "x.trc"
        path.write_bytes(b"NOPE1234")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_malformed_jsonl_record(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"header": {"name": "x", "cpu": 0, "count": 1}}\n{"nope": 1}\n')
        with pytest.raises(TraceError):
            read_trace(path)


class TestBinaryCompactness:
    def test_binary_smaller_than_jsonl(self, tmp_path):
        records = [make_load(0x1000 + 4 * i, dest=8, addr_srcs=(1,), ea=0x9000 + 8 * i)
                   for i in range(500)]
        trace = Trace(records, name="big")
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.trc"
        write_trace(trace, jsonl)
        write_trace(trace, binary)
        assert binary.stat().st_size < jsonl.stat().st_size / 2
