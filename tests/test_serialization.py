"""Round-trip tests for result serialization (cache wire format)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import smp_workload, workload_by_name
from repro.model.config import base_config
from repro.model.stats import SimResult
from repro.smp.system import SmpResult


@pytest.fixture(scope="module")
def up_result():
    workload = workload_by_name("SPECint95", warm=2_000, timed=800)
    return ExperimentRunner().run(base_config(), workload)


@pytest.fixture(scope="module")
def smp_result():
    workload = smp_workload(2, warm=2_000, timed=600)
    return ExperimentRunner().run_smp(base_config(), workload, 2)


class TestSimResultRoundTrip:
    def test_json_roundtrip_exact(self, up_result):
        clone = SimResult.from_dict(
            json.loads(json.dumps(up_result.to_dict()))
        )
        assert clone.ipc == up_result.ipc
        assert clone.cycles == up_result.cycles
        assert clone.instructions == up_result.instructions
        for cache in ("l1i", "l1d", "l2"):
            assert clone.miss_ratio(cache) == up_result.miss_ratio(cache)
            assert clone.miss_ratio(cache, demand_only=False) == up_result.miss_ratio(
                cache, demand_only=False
            )
        assert clone.as_dict() == up_result.as_dict()
        assert clone.to_dict() == up_result.to_dict()

    def test_core_counters_preserved(self, up_result):
        clone = SimResult.from_dict(up_result.to_dict())
        assert clone.core.replays == up_result.core.replays
        assert clone.core.bank_conflicts == up_result.core.bank_conflicts
        assert clone.core.decode_stalls == up_result.core.decode_stalls

    def test_unknown_field_rejected(self, up_result):
        payload = up_result.to_dict()
        payload["nonsense"] = 1
        with pytest.raises(ValueError, match="nonsense"):
            SimResult.from_dict(payload)


class TestObservabilityRoundTrip:
    """The observability fields survive the cache wire format exactly."""

    def test_cpi_stack_preserved(self, up_result):
        assert up_result.core.cpi_stack  # populated by the accountant
        clone = SimResult.from_dict(
            json.loads(json.dumps(up_result.to_dict()))
        )
        assert clone.core.cpi_stack == up_result.core.cpi_stack

    def test_cpi_stack_conserves_after_roundtrip(self, up_result):
        from repro.observe.cpistack import total

        clone = SimResult.from_dict(up_result.to_dict())
        assert total(clone.core.cpi_stack) == clone.cycles

    def test_registry_metrics_identical_after_roundtrip(self, up_result):
        clone = SimResult.from_dict(up_result.to_dict())
        assert clone.metrics() == up_result.metrics()

    def test_metrics_cover_observability_namespaces(self, up_result):
        from repro.observe.registry import metric_names

        metrics = up_result.metrics()
        names = metric_names()
        assert any(key.startswith("cpistack.") for key in metrics)
        assert any(key.startswith("decode_stalls.") for key in metrics)
        assert set(metrics) <= set(names)

    def test_cpi_stack_report_stable_after_roundtrip(self, up_result):
        clone = SimResult.from_dict(up_result.to_dict())
        report = clone.cpi_stack_report()
        assert report == up_result.cpi_stack_report()
        assert report  # non-empty for a populated stack


class TestSmpResultRoundTrip:
    def test_json_roundtrip_exact(self, smp_result):
        clone = SmpResult.from_dict(
            json.loads(json.dumps(smp_result.to_dict()))
        )
        assert clone.ipc == smp_result.ipc
        assert clone.per_cpu_ipc == smp_result.per_cpu_ipc
        assert clone.cycles == smp_result.cycles
        assert clone.l2_miss_ratio() == smp_result.l2_miss_ratio()
        assert clone.coherence == smp_result.coherence
        assert clone.as_dict() == smp_result.as_dict()
        assert clone.to_dict() == smp_result.to_dict()

    def test_per_cpu_results_preserved(self, smp_result):
        clone = SmpResult.from_dict(smp_result.to_dict())
        assert len(clone.per_cpu) == smp_result.cpu_count
        for mine, theirs in zip(clone.per_cpu, smp_result.per_cpu):
            assert mine.as_dict() == theirs.as_dict()
            assert mine.core.cpi_stack == theirs.core.cpi_stack

    def test_unknown_field_rejected(self, smp_result):
        payload = smp_result.to_dict()
        payload["bogus"] = {}
        with pytest.raises(ValueError, match="bogus"):
            SmpResult.from_dict(payload)


class TestSummaryViews:
    def test_as_dict_speed_toggle(self, up_result):
        with_speed = up_result.as_dict()
        without = up_result.as_dict(include_speed=False)
        assert "sim_speed_ips" in with_speed
        assert "sim_speed_ips" not in without
        assert {k: v for k, v in with_speed.items() if k != "sim_speed_ips"} == without
