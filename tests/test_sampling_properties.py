"""Property-based tests for the sampled-simulation machinery.

Window scheduling is pure arithmetic, so its invariants are checked over
a derandomized hypothesis corpus (the same idiom as
``test_observe_differential.py``): windows must be disjoint, internally
contiguous, in-bounds, evenly spaced, and agree with the closed-form
``window_count``.  On top of the schedule, sampled simulation itself
must be deterministic — same seed, same plan, bit-identical results —
whether the run happens in-process or in a worker pool.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.runner import ExperimentRunner, ParallelRunner
from repro.analysis.workloads import workload_by_name
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.model.stats import SampledSimResult
from repro.trace.sampling import SamplingPlan


# ---------------------------------------------------------------------------
# Window-schedule invariants.
# ---------------------------------------------------------------------------

@st.composite
def plans(draw):
    """Valid plans only: the period is drawn at or above the span."""
    sample_length = draw(st.integers(min_value=1, max_value=300))
    warmup = draw(st.integers(min_value=0, max_value=300))
    detail_warmup = draw(st.integers(min_value=0, max_value=150))
    drain_pad = draw(st.integers(min_value=0, max_value=100))
    span = warmup + detail_warmup + sample_length + drain_pad
    period = draw(st.integers(min_value=span, max_value=span + 2000))
    return SamplingPlan(
        period=period,
        sample_length=sample_length,
        warmup=warmup,
        detail_warmup=detail_warmup,
        drain_pad=drain_pad,
    )


@settings(
    max_examples=200,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(plan=plans(), trace_length=st.integers(min_value=0, max_value=20_000))
def test_window_schedule_invariants(plan: SamplingPlan, trace_length: int):
    windows = list(plan.windows(trace_length))

    # Count agrees with the closed form.
    assert len(windows) == plan.window_count(trace_length)

    previous_end = -1
    for index, window in enumerate(windows):
        # Indices are sequential and spacing is exactly the period.
        assert window.index == index
        assert window.start == index * plan.period

        # Contiguous internal structure.
        assert window.start <= window.detail_start
        assert window.detail_start <= window.measure_start
        assert window.measure_start < window.measure_end
        assert window.measure_end <= window.end
        assert window.warm_records == plan.warmup
        assert window.detailed_records == plan.detailed_per_window
        assert window.measured_records == plan.sample_length
        assert window.end - window.start == plan.span

        # In bounds and disjoint from the previous window.
        assert 0 <= window.start and window.end <= trace_length
        assert window.start > previous_end
        previous_end = window.end - 1

    # The schedule covers the expected fraction of the trace: every full
    # period contributes exactly one window until the tail can no longer
    # hold a whole span.
    if trace_length >= plan.span:
        expected = (trace_length - plan.span) // plan.period + 1
        assert len(windows) == expected
        measured = sum(w.measured_records for w in windows)
        assert measured == expected * plan.sample_length


@settings(
    max_examples=50,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(plan=plans())
def test_no_windows_in_short_traces(plan: SamplingPlan):
    assert plan.window_count(plan.span - 1) == 0
    assert list(plan.windows(plan.span - 1)) == []
    assert plan.window_count(plan.span) == 1


# ---------------------------------------------------------------------------
# Determinism: serial == serial, serial == parallel, bit for bit.
# ---------------------------------------------------------------------------

_PLAN = SamplingPlan(period=2000, sample_length=150, warmup=200)


def _workload():
    workload = workload_by_name("SPECint95", warm=0, timed=30_000)
    workload.sampling = _PLAN
    return workload


def _deterministic_view(result: SampledSimResult) -> dict:
    """Everything except the one wall-clock-dependent field."""
    payload = result.to_dict()
    payload.pop("sim_speed")
    return payload


def test_sampled_run_is_deterministic():
    workload = _workload()
    model = PerformanceModel(base_config())
    first = model.run_sampled(workload.trace(), _PLAN, regions=workload.regions())
    second = model.run_sampled(workload.trace(), _PLAN, regions=workload.regions())
    assert _deterministic_view(first) == _deterministic_view(second)
    # The sampling record itself contains no wall-clock values at all.
    assert first.sampling == second.sampling
    assert first.estimates == second.estimates


def test_serial_and_parallel_runs_bit_identical():
    config = base_config()

    serial = ExperimentRunner()
    serial_result = serial.run(config, _workload())

    parallel = ParallelRunner(jobs=2, use_cache=False)
    try:
        workload = _workload()
        parallel.prefetch(up=[(config, workload)])
        parallel_result = parallel.run(config, workload)
    finally:
        parallel.close()

    assert isinstance(serial_result, SampledSimResult)
    assert isinstance(parallel_result, SampledSimResult)
    assert _deterministic_view(serial_result) == _deterministic_view(
        parallel_result
    )


def test_sampling_participates_in_cache_key():
    plain = workload_by_name("SPECint95", warm=0, timed=30_000)
    sampled = _workload()
    assert plain.cache_key() != sampled.cache_key()
    other_plan = SamplingPlan(period=2000, sample_length=151, warmup=200)
    other = _workload()
    other.sampling = other_plan
    assert sampled.cache_key() != other.cache_key()
