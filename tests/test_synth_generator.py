"""Unit tests for the synthetic trace generators."""

import pytest

from repro.common.errors import ConfigError
from repro.isa.opcodes import OpClass
from repro.trace.synth import (
    TraceGenerator,
    generate_smp_traces,
    generate_trace,
    standard_profiles,
)
from repro.trace.synth.data import SHARED_DATA_BASE


@pytest.fixture(scope="module")
def int95_trace():
    return generate_trace(standard_profiles()["SPECint95"], 20_000, seed=42)


@pytest.fixture(scope="module")
def tpcc_trace():
    return generate_trace(standard_profiles()["TPC-C"], 30_000, seed=42)


class TestControlFlowConsistency:
    def test_int95_validates(self, int95_trace):
        int95_trace.validate()

    def test_tpcc_validates(self, tpcc_trace):
        tpcc_trace.validate()

    @pytest.mark.parametrize("name", ["SPECfp95", "SPECint2000", "SPECfp2000"])
    def test_other_profiles_validate(self, name):
        generate_trace(standard_profiles()[name], 5_000, seed=9).validate()

    def test_exact_length(self):
        trace = generate_trace(standard_profiles()["SPECint95"], 1234, seed=1)
        assert len(trace) == 1234

    def test_zero_length_rejected(self):
        generator = TraceGenerator(standard_profiles()["SPECint95"], seed=1)
        with pytest.raises(ConfigError):
            generator.generate(0)


class TestDeterminism:
    def test_same_seed_identical(self):
        profile = standard_profiles()["SPECint95"]
        a = generate_trace(profile, 3000, seed=5)
        b = generate_trace(profile, 3000, seed=5)
        assert a.records == b.records

    def test_different_seed_differs(self):
        profile = standard_profiles()["SPECint95"]
        a = generate_trace(profile, 3000, seed=5)
        b = generate_trace(profile, 3000, seed=6)
        assert a.records != b.records

    def test_static_instruction_classes(self, int95_trace):
        """A given pc must always carry the same opcode class.

        Control-transfer pcs may alternate among CALL/RETURN/UNCOND (the
        call-depth cap demotes deep calls to plain jumps, and kernel
        transitions reuse fall-through slots); body pcs must be stable.
        """
        transfer = {OpClass.CALL, OpClass.RETURN, OpClass.BRANCH_UNCOND}
        seen = {}
        for record in int95_trace.records:
            if record.pc in seen:
                previous = seen[record.pc]
                if previous == record.op:
                    continue
                assert previous in transfer and record.op in transfer, (
                    f"pc {record.pc:#x} polymorphic: {previous} vs {record.op}"
                )
            else:
                seen[record.pc] = record.op


class TestMixCalibration:
    def test_int95_mix(self, int95_trace):
        stats = int95_trace.stats()
        assert 0.12 < stats.load_fraction < 0.30
        assert 0.04 < stats.store_fraction < 0.18
        assert 0.04 < stats.branch_fraction < 0.20
        assert stats.fp_fraction == 0.0

    def test_fp_workload_has_fp(self):
        trace = generate_trace(standard_profiles()["SPECfp95"], 10_000, seed=42)
        assert trace.stats().fp_fraction > 0.15

    def test_tpcc_kernel_fraction(self, tpcc_trace):
        priv = tpcc_trace.stats().privileged_fraction
        assert 0.25 < priv < 0.45  # target 0.34

    def test_spec_has_no_kernel(self, int95_trace):
        assert int95_trace.stats().privileged_fraction == 0.0

    def test_tpcc_code_footprint_large(self, tpcc_trace):
        stats = tpcc_trace.stats()
        assert stats.code_footprint_bytes > 64 * 1024

    def test_int95_code_footprint_moderate(self, int95_trace):
        assert int95_trace.stats().code_footprint_bytes < 128 * 1024


class TestDependences:
    def test_branch_reads_condition_codes(self, int95_trace):
        from repro.isa.registers import ICC

        for record in int95_trace.records:
            if record.op == OpClass.BRANCH_COND:
                assert ICC in record.srcs
                break
        else:
            pytest.fail("no conditional branch found")

    def test_compare_precedes_conditional(self, int95_trace):
        from repro.isa.registers import ICC

        records = int95_trace.records
        checked = 0
        for i, record in enumerate(records):
            if record.op == OpClass.BRANCH_COND and i > 0:
                # Some older instruction in the same block wrote ICC.
                producers = [
                    r for r in records[max(0, i - 30) : i] if r.dest == ICC
                ]
                assert producers, f"branch at {record.pc:#x} without compare"
                checked += 1
                if checked > 20:
                    break

    def test_memory_addresses_aligned(self, tpcc_trace):
        for record in tpcc_trace.records:
            if record.is_memory:
                assert record.ea % 8 == 0


class TestRegions:
    def test_memory_regions_exposed(self):
        generator = TraceGenerator(standard_profiles()["TPC-C"], seed=1)
        regions = generator.memory_regions()
        assert "user_code" in regions
        assert "user_data" in regions
        assert "kernel_code" in regions
        assert "user_data_hot" in regions
        base, size = regions["user_data"]
        hot_base, hot_size = regions["user_data_hot"]
        assert hot_base == base and hot_size <= size

    def test_spec_has_no_kernel_region(self):
        generator = TraceGenerator(standard_profiles()["SPECint95"], seed=1)
        assert "kernel_code" not in generator.memory_regions()


class TestSmp:
    def test_per_cpu_traces(self):
        traces = generate_smp_traces(
            standard_profiles()["TPC-C"], 4, 3000, seed=3
        )
        assert len(traces) == 4
        for trace in traces:
            trace.validate()
            assert len(trace) == 3000

    def test_cpu_streams_differ(self):
        traces = generate_smp_traces(
            standard_profiles()["TPC-C"], 2, 3000, seed=3
        )
        assert traces[0].records != traces[1].records

    def test_shared_region_accessed(self):
        traces = generate_smp_traces(
            standard_profiles()["TPC-C"], 2, 20_000, seed=3
        )
        shared = [
            r
            for trace in traces
            for r in trace.records
            if r.is_memory and r.ea >= SHARED_DATA_BASE
        ]
        assert shared, "no shared-region accesses generated"

    def test_smp_requires_sharing_profile(self):
        with pytest.raises(ConfigError):
            generate_smp_traces(standard_profiles()["SPECint95"], 2, 100, seed=1)

    def test_cpu_count_positive(self):
        with pytest.raises(ConfigError):
            generate_smp_traces(standard_profiles()["TPC-C"], 0, 100, seed=1)
