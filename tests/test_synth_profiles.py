"""Unit tests for workload profile definitions."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.trace.synth.profiles import (
    SPEC_FP_95,
    SPEC_INT_95,
    TPCC,
    BranchMix,
    DataMix,
    WorkloadProfile,
    profile_by_name,
    standard_profiles,
)


class TestPresets:
    def test_five_presets(self):
        assert set(standard_profiles()) == {
            "SPECint95",
            "SPECfp95",
            "SPECint2000",
            "SPECfp2000",
            "TPC-C",
        }

    def test_all_validate(self):
        for profile in standard_profiles().values():
            profile.validate()

    def test_lookup_by_name(self):
        assert profile_by_name("TPC-C").name == "TPC-C"

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            profile_by_name("SPECweb99")

    def test_tpcc_is_kernel_heavy(self):
        assert TPCC.kernel_fraction > 0.2
        assert TPCC.kernel_block_count > 0

    def test_fp_profiles_have_fp(self):
        assert SPEC_FP_95.fp_fraction > 0.2
        assert SPEC_INT_95.fp_fraction == 0.0

    def test_tpcc_biggest_code(self):
        profiles = standard_profiles()
        assert profiles["TPC-C"].block_count == max(
            p.block_count for p in profiles.values()
        )

    def test_fp_predictable_branches(self):
        assert (
            SPEC_FP_95.branch_mix.random_fraction
            <= SPEC_INT_95.branch_mix.random_fraction
        )
        # FP loops run far longer than integer loops (loop-dominated code).
        assert SPEC_FP_95.branch_mix.loop_trip_mean > SPEC_INT_95.branch_mix.loop_trip_mean


class TestValidation:
    def test_branch_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            BranchMix(loop_fraction=0.5, biased_fraction=0.5, random_fraction=0.5).validate()

    def test_bias_range(self):
        with pytest.raises(ConfigError):
            BranchMix(bias=0.3).validate()

    def test_data_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            DataMix(hot_fraction=0.9, stride_fraction=0.9,
                    chain_fraction=0.0, random_fraction=0.0).validate()

    def test_body_fractions_bounded(self):
        profile = SPEC_INT_95.derived(load_fraction=0.9, store_fraction=0.2)
        with pytest.raises(ConfigError):
            profile.validate()

    def test_kernel_fraction_needs_blocks(self):
        profile = SPEC_INT_95.derived(kernel_fraction=0.3, kernel_block_count=0)
        with pytest.raises(ConfigError):
            profile.validate()

    def test_derived_changes_field(self):
        profile = SPEC_INT_95.derived(block_count=99)
        assert profile.block_count == 99
        assert SPEC_INT_95.block_count != 99

    def test_profiles_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SPEC_INT_95.block_count = 1
