"""Pipeline event-tracer tests: capture, ring mode, exporters, neutrality."""

from __future__ import annotations

import json

import pytest

from repro.analysis.workloads import workload_by_name
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.observe import PipelineTracer
from repro.observe.events import _PAYLOAD_FIELDS


@pytest.fixture(scope="module")
def traced_run():
    """One small workload run with a full (unbounded) tracer attached."""
    workload = workload_by_name("SPECint95", warm=2_000, timed=800)
    tracer = PipelineTracer()
    result = PerformanceModel(base_config()).run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
        tracer=tracer,
    )
    return result, tracer


class TestCapture:
    def test_every_lifecycle_kind_present(self, traced_run):
        _, tracer = traced_run
        kinds = {event[1] for event in tracer.events()}
        assert {"fetch", "decode", "dispatch", "complete", "commit"} <= kinds

    def test_commit_count_matches_instructions(self, traced_run):
        result, tracer = traced_run
        commits = sum(1 for e in tracer.events() if e[1] == "commit")
        assert commits == result.instructions

    def test_cancel_events_match_replays(self, traced_run):
        result, tracer = traced_run
        cancels = sum(1 for e in tracer.events() if e[1] == "cancel")
        assert cancels == result.core.replays

    def test_events_are_cycle_ordered_per_uop(self, traced_run):
        _, tracer = traced_run
        last_seen = {}
        order = {"decode": 0, "dispatch": 1, "complete": 2, "commit": 3}
        for cycle, kind, uop, _, _ in tracer.events():
            if uop < 0 or kind not in order:
                continue
            prev = last_seen.get(uop)
            if prev is not None:
                # A replayed uop can dispatch again, but cycles never
                # move backwards for the same uop.
                assert cycle >= prev
            last_seen[uop] = cycle

    def test_records_structured_fields(self, traced_run):
        _, tracer = traced_run
        for record in tracer.records():
            assert isinstance(record["cycle"], int)
            kind = record["event"]
            name_a, name_b = _PAYLOAD_FIELDS[kind]
            extras = set(record) - {"cycle", "event", "uop"}
            assert extras <= {name for name in (name_a, name_b) if name}

    def test_timing_identical_with_and_without_tracer(self):
        workload = workload_by_name("SPECfp95", warm=1_500, timed=600)
        model = PerformanceModel(base_config())
        kwargs = dict(
            warmup_fraction=workload.warmup_fraction, regions=workload.regions()
        )
        plain = model.run(workload.trace(), **kwargs)
        traced = model.run(workload.trace(), tracer=PipelineTracer(), **kwargs)
        assert plain.as_dict(include_speed=False) == traced.as_dict(
            include_speed=False
        )
        assert plain.core.cpi_stack == traced.core.cpi_stack


class TestRingMode:
    def test_ring_keeps_last_n(self):
        tracer = PipelineTracer(capacity=10)
        for i in range(25):
            tracer.emit(i, "commit", i)
        assert len(tracer) == 10
        assert tracer.emitted == 25
        assert tracer.dropped == 15
        assert [e[0] for e in tracer.events()] == list(range(15, 25))

    def test_full_mode_never_drops(self):
        tracer = PipelineTracer()
        for i in range(1000):
            tracer.emit(i, "commit", i)
        assert len(tracer) == 1000
        assert tracer.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PipelineTracer(capacity=0)

    def test_ring_on_real_run_bounds_memory(self):
        workload = workload_by_name("SPECint95", warm=1_500, timed=600)
        tracer = PipelineTracer(capacity=64)
        PerformanceModel(base_config()).run(
            workload.trace(),
            warmup_fraction=workload.warmup_fraction,
            regions=workload.regions(),
            tracer=tracer,
        )
        assert len(tracer) == 64
        assert tracer.dropped == tracer.emitted - 64 > 0

    def test_clear(self):
        tracer = PipelineTracer()
        tracer.emit(0, "commit", 0)
        tracer.clear()
        assert len(tracer) == 0


class TestExporters:
    def test_jsonl_roundtrips(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "events.jsonl"
        count = tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer)
        parsed = [json.loads(line) for line in lines[:100]]
        assert all("cycle" in rec and "event" in rec for rec in parsed)

    def test_chrome_trace_is_valid_and_sliced(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(str(path), lanes=8)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert count == len(events) > 0
        slices = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert slices and instants
        for item in slices:
            assert item["dur"] >= 0
            assert 0 <= item["tid"] < 8

    def test_chrome_trace_handles_partial_lifecycles(self, tmp_path):
        # A uop with decode only (still in flight at capture end) and a
        # bare cancel must not crash the exporter.
        tracer = PipelineTracer()
        tracer.emit(1, "decode", 7, 0x1000, "INT_ALU")
        tracer.emit(2, "cancel", 9, 1)
        path = tmp_path / "partial.json"
        count = tracer.write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        assert count == len(payload["traceEvents"]) == 1  # just the instant
