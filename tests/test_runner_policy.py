"""Tests for :class:`RunPolicy` and the runner's failure policies.

Covers the pure policy object (validation, deterministic backoff) and
the end-to-end ``fail`` / ``skip`` behaviours of
:class:`~repro.analysis.runner.ParallelRunner` when a run keeps dying.
Timeout and crash *recovery* paths live in ``test_fault_injection.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.analysis.policy import RunPolicy
from repro.analysis.runner import ParallelRunner
from repro.analysis.workloads import Workload, workload_by_name
from repro.common.errors import ConfigError, ExperimentError
from repro.model.config import base_config

WARM = 2_000
TIMED = 800


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RunPolicy()
        assert policy.retries == 1 and policy.on_failure == "retry"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"timeout": 0.0}, "timeout"),
            ({"timeout": -1.0}, "timeout"),
            ({"retries": -1}, "retries"),
            ({"backoff_base": -0.1}, "backoff"),
            ({"backoff_max": -1.0}, "backoff"),
            ({"backoff_factor": 0.5}, "backoff_factor"),
            ({"jitter": 1.5}, "jitter"),
            ({"jitter": -0.1}, "jitter"),
            ({"on_failure": "explode"}, "on_failure"),
        ],
    )
    def test_rejections(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            RunPolicy(**kwargs)


class TestBackoff:
    def test_no_delay_before_first_retry(self):
        assert RunPolicy().backoff_delay("x", 0) == 0.0

    def test_exponential_growth_without_jitter(self):
        policy = RunPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.0)
        assert policy.backoff_delay("x", 1) == pytest.approx(0.1)
        assert policy.backoff_delay("x", 2) == pytest.approx(0.2)
        assert policy.backoff_delay("x", 3) == pytest.approx(0.4)

    def test_clamped_by_backoff_max(self):
        policy = RunPolicy(backoff_base=1.0, backoff_factor=10.0, backoff_max=2.5)
        assert policy.backoff_delay("x", 5) <= 2.5

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RunPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.25)
        first = policy.backoff_delay("SPECint95@SPARC64-V", 1)
        again = policy.backoff_delay("SPECint95@SPARC64-V", 1)
        assert first == again  # replays sleep identically
        assert 0.75 <= first <= 1.25
        # Different labels and attempts draw different (still bounded) jitter.
        other = policy.backoff_delay("TPC-C@SPARC64-V", 1)
        assert 0.75 <= other <= 1.25

    def test_zero_base_means_no_sleeping(self):
        policy = RunPolicy(backoff_base=0.0)
        assert policy.backoff_delay("x", 3) == 0.0


@dataclass
class _AlwaysFailsInWorker(Workload):
    """Raises from :meth:`trace` after crossing a pickle boundary.

    Unlike an injected fault, this failure never goes away, so it
    exercises the exhausted-retries endgame of each ``on_failure``
    policy.
    """

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._poisoned = True

    def trace(self):
        if getattr(self, "_poisoned", False):
            raise RuntimeError("poisoned in worker")
        return super().trace()


def _poisoned_workload():
    healthy = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
    return _AlwaysFailsInWorker(
        name=healthy.name,
        profile=healthy.profile,
        seed=healthy.seed,
        warm_instructions=healthy.warm_instructions,
        timed_instructions=healthy.timed_instructions,
    )


def _fast_policy(**kwargs) -> RunPolicy:
    return RunPolicy(backoff_base=0.01, backoff_max=0.05, **kwargs)


class TestFailurePolicies:
    def test_fail_policy_aborts_loudly(self, tmp_path):
        runner = ParallelRunner(
            jobs=2,
            cache_dir=str(tmp_path),
            policy=_fast_policy(retries=1, on_failure="fail"),
        )
        with pytest.raises(ExperimentError, match="SPECint95.*after 2 attempts"):
            runner.prefetch(up=[(base_config(), _poisoned_workload())])
        assert runner.stats.retries == 1

    def test_skip_policy_records_and_continues(self, tmp_path):
        config = base_config()
        poisoned = _poisoned_workload()
        healthy = workload_by_name("SPECfp95", warm=WARM, timed=TIMED)
        runner = ParallelRunner(
            jobs=2,
            cache_dir=str(tmp_path),
            policy=_fast_policy(retries=0, on_failure="skip"),
        )
        # The healthy sibling in the same batch must still complete.
        runner.prefetch(up=[(config, poisoned), (config, healthy)])
        assert runner.stats.skipped == [f"{poisoned.name}@{config.name}"]
        assert runner.run(config, healthy) is not None

        # try_run degrades to None; run() refuses with a typed error.
        assert runner.try_run(config, poisoned) is None
        with pytest.raises(ExperimentError, match="abandoned"):
            runner.run(config, poisoned)
        assert "skipped 1" in runner.summary()

    def test_retry_policy_falls_back_in_process(self, tmp_path):
        """Default policy: budget spent => one observable in-process rerun.

        The poisoned workload only fails across the pickle boundary, so
        the parent-process fallback succeeds — same contract the PR-1
        crash test pinned, now with an explicit retry budget.
        """
        runner = ParallelRunner(
            jobs=2,
            cache_dir=str(tmp_path),
            policy=_fast_policy(retries=2, on_failure="retry"),
        )
        runner.prefetch(up=[(base_config(), _poisoned_workload())])
        assert runner.stats.retries == 2
        assert runner.stats.worker_fallbacks == 1
        assert runner.stats.runs_in_process == 1
