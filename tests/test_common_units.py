"""Unit tests for repro.common.units."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import (
    CYCLE_TIME_NS,
    DEFAULT_CLOCK_GHZ,
    is_power_of_two,
    log2_int,
    ns_to_cycles,
    parse_size,
    size_to_str,
)


class TestNsToCycles:
    def test_paper_off_chip_penalty(self):
        # §4.3.4: 10 ns at 1.3 GHz is 13 cycles.
        assert ns_to_cycles(10.0) == 13

    def test_zero(self):
        assert ns_to_cycles(0.0) == 0

    def test_rounds_up(self):
        assert ns_to_cycles(1.0) == 2  # 1.3 cycles -> 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ns_to_cycles(-1.0)

    def test_custom_clock(self):
        assert ns_to_cycles(10.0, clock_ghz=1.0) == 10

    def test_cycle_time_matches_clock(self):
        assert abs(CYCLE_TIME_NS * DEFAULT_CLOCK_GHZ - 1.0) < 1e-12


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("128KB", 128 * 1024),
            ("2MB", 2 * 1024 * 1024),
            ("1GB", 1024 ** 3),
            ("64B", 64),
            ("64", 64),
            (" 8 kb ", 8 * 1024),
            ("0.5MB", 512 * 1024),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_invalid(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_roundtrip(self):
        for size in (64, 1024, 128 * 1024, 2 * 1024 * 1024):
            assert parse_size(size_to_str(size)) == size


class TestSizeToStr:
    def test_exact_suffixes(self):
        assert size_to_str(128 * 1024) == "128KB"
        assert size_to_str(2 * 1024 * 1024) == "2MB"
        assert size_to_str(100) == "100B"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            size_to_str(-1)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_log2(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6

    def test_log2_rejects_non_power(self):
        with pytest.raises(ConfigError):
            log2_int(12)
