"""Unit tests for rename tracking, reservation stations, and core params."""

import pytest

from repro.common.errors import ConfigError
from repro.core.params import CoreParams, RsOrganization
from repro.core.rename import RenameTracker
from repro.core.reservation import ReservationStation, StationGroup
from repro.core.uop import FAR_FUTURE, Uop, UopState
from repro.isa.opcodes import EXECUTION_LATENCY, OpClass
from repro.isa.registers import FCC, ICC, fp_reg
from repro.trace.record import TraceRecord


def make_uop(seq, op=OpClass.INT_ALU, dest=8, srcs=()):
    return Uop(seq, TraceRecord(0x1000 + 4 * seq, op, dest=dest, srcs=srcs), 0)


class TestCoreParams:
    def test_table1_defaults(self):
        params = CoreParams()
        assert params.issue_width == 4
        assert params.window_size == 64
        assert params.int_rename == 32
        assert params.fp_rename == 32
        assert params.rsa_entries == 10
        assert params.rsbr_entries == 10
        assert params.load_queue == 16
        assert params.store_queue == 10
        assert params.rs_organization is RsOrganization.TWO_RS

    def test_latency_of(self):
        params = CoreParams()
        assert params.latency_of(OpClass.INT_ALU) == EXECUTION_LATENCY[OpClass.INT_ALU]
        assert params.latency_of(OpClass.SPECIAL) == params.special_latency

    def test_latency_override(self):
        params = CoreParams(latency_overrides={OpClass.INT_MUL: 9})
        assert params.latency_of(OpClass.INT_MUL) == 9

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoreParams(issue_width=0)
        with pytest.raises(ConfigError):
            CoreParams(window_size=1)
        with pytest.raises(ConfigError):
            CoreParams(load_queue=0)

    def test_derived(self):
        params = CoreParams().derived(issue_width=2)
        assert params.issue_width == 2


class TestRenameTracker:
    def test_tracks_latest_producer(self):
        tracker = RenameTracker(32, 32)
        a = make_uop(0, dest=8)
        b = make_uop(1, dest=8)
        tracker.allocate(a)
        tracker.allocate(b)
        assert tracker.producer_of(8) is b

    def test_committed_producer_invisible(self):
        tracker = RenameTracker(32, 32)
        a = make_uop(0, dest=8)
        tracker.allocate(a)
        a.state = UopState.COMMITTED
        assert tracker.producer_of(8) is None

    def test_capacity_int(self):
        tracker = RenameTracker(2, 2)
        tracker.allocate(make_uop(0, dest=8))
        tracker.allocate(make_uop(1, dest=9))
        assert not tracker.can_allocate("int")
        assert tracker.int_full_stalls == 1

    def test_release_frees_capacity(self):
        tracker = RenameTracker(1, 1)
        uop = make_uop(0, dest=8)
        tracker.allocate(uop)
        tracker.release(uop)
        assert tracker.can_allocate("int")

    def test_cc_not_capacity_limited(self):
        tracker = RenameTracker(1, 1)
        for seq in range(5):
            uop = make_uop(seq, dest=ICC)
            assert tracker.can_allocate(tracker.dest_kind(ICC))
            tracker.allocate(uop)

    def test_dest_kind(self):
        assert RenameTracker.dest_kind(5) == "int"
        assert RenameTracker.dest_kind(fp_reg(4)) == "fp"
        assert RenameTracker.dest_kind(ICC) == "cc"
        assert RenameTracker.dest_kind(FCC) == "cc"
        assert RenameTracker.dest_kind(-1) is None


class TestReservationStation:
    def test_insert_free(self):
        station = ReservationStation("RS", 2, 1)
        uop = make_uop(0)
        station.insert(uop)
        assert station.occupancy() == 1
        station.free(uop)
        assert station.occupancy() == 0
        assert not uop.holds_rs_entry

    def test_capacity(self):
        station = ReservationStation("RS", 1, 1)
        station.insert(make_uop(0))
        assert not station.has_space()
        assert station.full_stalls == 1

    def test_selects_oldest_ready(self):
        station = ReservationStation("RS", 4, 1)
        young = make_uop(5)
        old = make_uop(2)
        station.insert(young)
        station.insert(old)
        selected = station.select(0, exec_offset=2, speculative=True)
        assert selected == [old]

    def test_waiting_producer_blocks(self):
        station = ReservationStation("RS", 4, 1)
        producer = make_uop(0)
        consumer = make_uop(1, srcs=(8,))
        consumer.producers = (producer,)
        station.insert(consumer)
        assert station.select(0, 2, speculative=True) == []

    def test_speculative_horizon(self):
        station = ReservationStation("RS", 4, 1)
        producer = make_uop(0)
        producer.state = UopState.INFLIGHT
        producer.result_ready = 5
        consumer = make_uop(1, srcs=(8,))
        consumer.producers = (producer,)
        station.insert(consumer)
        # At cycle 3, producer ready at 5 <= 3+2 -> dispatchable.
        assert station.select(3, 2, speculative=True) == [consumer]
        # At cycle 2, 5 > 4 -> not yet; next_eligible hints cycle 3.
        consumer.state = UopState.WAITING
        assert station.select(2, 2, speculative=True) == []
        assert station.next_eligible == 3

    def test_non_speculative_requires_done(self):
        station = ReservationStation("RS", 4, 1)
        producer = make_uop(0)
        producer.state = UopState.INFLIGHT
        producer.result_ready = 5
        consumer = make_uop(1, srcs=(8,))
        consumer.producers = (producer,)
        station.insert(consumer)
        assert station.select(10, 2, speculative=False) == []
        producer.state = UopState.DONE
        assert station.select(10, 2, speculative=False) == [consumer]

    def test_dispatch_width(self):
        station = ReservationStation("RS", 4, 2)
        for seq in range(3):
            station.insert(make_uop(seq))
        assert len(station.select(0, 2, speculative=True)) == 2


class TestStationGroup:
    def test_least_occupied_chosen(self):
        a = ReservationStation("A", 4, 1)
        b = ReservationStation("B", 4, 1)
        group = StationGroup("G", [a, b])
        a.insert(make_uop(0))
        assert group.station_for_insert() is b

    def test_full_group(self):
        a = ReservationStation("A", 1, 1)
        group = StationGroup("G", [a])
        a.insert(make_uop(0))
        assert group.station_for_insert() is None

    def test_total_occupancy(self):
        a = ReservationStation("A", 4, 1)
        b = ReservationStation("B", 4, 1)
        group = StationGroup("G", [a, b])
        a.insert(make_uop(0))
        b.insert(make_uop(1))
        assert group.total_occupancy() == 2
