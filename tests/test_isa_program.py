"""Unit tests for Program label resolution and addressing."""

import pytest

from repro.common.errors import SimulationError, TraceError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.program import DEFAULT_TEXT_BASE, Program


class TestProgram:
    def test_pc_addressing(self):
        program = Program()
        program.append(Instruction(Mnemonic.NOP))
        program.append(Instruction(Mnemonic.NOP))
        assert program.pc_of(0) == DEFAULT_TEXT_BASE
        assert program.pc_of(1) == DEFAULT_TEXT_BASE + 4
        assert program.index_of_pc(program.pc_of(1)) == 1

    def test_index_of_bad_pc(self):
        program = Program()
        program.append(Instruction(Mnemonic.NOP))
        with pytest.raises(SimulationError):
            program.index_of_pc(DEFAULT_TEXT_BASE + 2)
        with pytest.raises(SimulationError):
            program.index_of_pc(DEFAULT_TEXT_BASE + 400)

    def test_label_resolution(self):
        program = Program()
        program.append(Instruction(Mnemonic.BA, target="end"))
        program.append(Instruction(Mnemonic.NOP))
        program.append(Instruction(Mnemonic.HALT, label="end"))
        program.finalize()
        assert program.instructions[0].target_index == 2
        assert program.labels == {"end": 2}

    def test_duplicate_label_rejected(self):
        program = Program()
        program.append(Instruction(Mnemonic.NOP, label="x"))
        program.append(Instruction(Mnemonic.NOP, label="x"))
        with pytest.raises(TraceError):
            program.finalize()

    def test_undefined_target_rejected(self):
        program = Program()
        program.append(Instruction(Mnemonic.BA, target="nowhere"))
        with pytest.raises(TraceError):
            program.finalize()

    def test_finalize_idempotent(self):
        program = Program()
        program.append(Instruction(Mnemonic.HALT, label="end"))
        program.finalize()
        program.finalize()

    def test_append_after_finalize_rejected(self):
        program = Program()
        program.append(Instruction(Mnemonic.HALT))
        program.finalize()
        with pytest.raises(SimulationError):
            program.append(Instruction(Mnemonic.NOP))

    def test_memory_alignment(self):
        program = Program()
        program.set_memory(0x1000, 5)
        with pytest.raises(TraceError):
            program.set_memory(0x1001, 5)

    def test_listing(self):
        program = Program()
        program.append(Instruction(Mnemonic.MOV, rd=1, imm=2))
        text = program.listing()
        assert "mov" in text
