"""Unit tests for MSHRs, bus, DRAM controller, and TLB."""

import pytest

from repro.common.errors import SimulationError
from repro.memory.bus import Bus
from repro.memory.dram import MemoryController
from repro.memory.mshr import MshrFile
from repro.memory.params import BusParams, MemoryParams, TlbGeometry
from repro.memory.tlb import Tlb


class TestMshr:
    def test_coalescing(self):
        mshr = MshrFile(4)
        mshr.allocate(0x1000, ready_cycle=100, cycle=0)
        assert mshr.outstanding(0x1000, 50) == 100
        assert mshr.coalesced == 1

    def test_matured_entries_not_outstanding(self):
        mshr = MshrFile(4)
        mshr.allocate(0x1000, ready_cycle=100, cycle=0)
        assert mshr.outstanding(0x1000, 100) is None

    def test_capacity(self):
        mshr = MshrFile(2)
        mshr.allocate(0x1000, 100, 0)
        mshr.allocate(0x2000, 100, 0)
        assert not mshr.can_allocate(0)
        assert mshr.full_stalls == 1

    def test_reclaim_after_maturity(self):
        mshr = MshrFile(1)
        mshr.allocate(0x1000, 100, 0)
        assert mshr.can_allocate(101)

    def test_next_free(self):
        mshr = MshrFile(2)
        mshr.allocate(0x1000, 50, 0)
        mshr.allocate(0x2000, 80, 0)
        assert mshr.next_free_cycle() == 50

    def test_overallocate_raises(self):
        mshr = MshrFile(1)
        mshr.allocate(0x1000, 100, 0)
        with pytest.raises(SimulationError):
            mshr.allocate(0x2000, 100, 0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            MshrFile(0)


class TestBus:
    def test_uncontended_transfer(self):
        bus = Bus(BusParams("b", latency=10, bytes_per_cycle=16))
        timing = bus.transfer(0, 64)
        assert timing.start == 0
        assert timing.done == 10 + 4  # latency + 64/16 occupancy
        assert timing.queue_delay == 0

    def test_queueing(self):
        bus = Bus(BusParams("b", latency=10, bytes_per_cycle=16))
        bus.transfer(0, 64)  # occupies until cycle 4
        timing = bus.transfer(1, 64)
        assert timing.start == 4
        assert timing.queue_delay == 3
        assert bus.conflict_cycles == 3

    def test_minimum_occupancy(self):
        bus = Bus(BusParams("b", latency=0, bytes_per_cycle=64))
        timing = bus.transfer(0, 8)
        assert timing.done == 1

    def test_utilization(self):
        bus = Bus(BusParams("b", latency=0, bytes_per_cycle=16))
        bus.transfer(0, 64)
        assert bus.utilization(8) == pytest.approx(0.5)

    def test_reset(self):
        bus = Bus(BusParams("b"))
        bus.transfer(0, 64)
        bus.reset()
        assert bus.transfers == 0
        assert bus.busy_until == 0


class TestMemoryController:
    def test_fixed_latency(self):
        memory = MemoryController(MemoryParams(latency=100, channels=2,
                                               channel_occupancy=10))
        assert memory.request(0, 0) == 100

    def test_channel_interleaving(self):
        memory = MemoryController(MemoryParams(latency=100, channels=2,
                                               channel_occupancy=10))
        first = memory.request(0, 0)        # channel 0
        second = memory.request(0, 64)      # channel 1 (next line)
        assert first == second == 100  # parallel channels

    def test_same_channel_queues(self):
        memory = MemoryController(MemoryParams(latency=100, channels=2,
                                               channel_occupancy=10))
        memory.request(0, 0)
        queued = memory.request(0, 128)  # same channel (line 2)
        assert queued == 110
        assert memory.queue_cycles == 10

    def test_reset(self):
        memory = MemoryController(MemoryParams())
        memory.request(0, 0)
        memory.reset()
        assert memory.requests == 0


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbGeometry("t", entries=8, ways=2, miss_penalty=30))
        assert tlb.translate(0x10000) == 30
        assert tlb.translate(0x10000) == 0
        assert tlb.stats.misses == 1
        assert tlb.stats.accesses == 2

    def test_same_page_hits(self):
        tlb = Tlb(TlbGeometry("t", entries=8, ways=2, page_bytes=8192))
        tlb.translate(0x10000)
        assert tlb.translate(0x10000 + 4096) == 0

    def test_capacity_eviction(self):
        tlb = Tlb(TlbGeometry("t", entries=2, ways=1, page_bytes=8192,
                              miss_penalty=30))
        tlb.translate(0x0000)
        tlb.translate(0x2000 * 2)  # same set (2 sets, page stride)
        assert tlb.translate(0x0000) == 30  # evicted

    def test_flush(self):
        tlb = Tlb(TlbGeometry("t", entries=8, ways=2, miss_penalty=30))
        tlb.translate(0x10000)
        tlb.flush()
        assert tlb.translate(0x10000) == 30

    def test_miss_ratio(self):
        tlb = Tlb(TlbGeometry("t", entries=8, ways=2))
        tlb.translate(0x10000)
        tlb.translate(0x10000)
        assert tlb.stats.miss_ratio == pytest.approx(0.5)
