"""SMP behavioural tests: scaling and bus contention."""

import pytest

from repro.frontend.bht import BhtParams
from repro.memory.params import (
    BusParams,
    CacheGeometry,
    MemoryParams,
    PrefetchParams,
    TlbGeometry,
)
from repro.model.config import MachineConfig
from repro.smp.system import run_smp
from repro.trace.synth import build_smp_generators, standard_profiles


def small_smp_config(bus_bytes_per_cycle=8):
    return MachineConfig(
        name=f"smp-{bus_bytes_per_cycle}",
        l1i=CacheGeometry("L1I", 8 * 1024, 2, hit_latency=3, mshr_count=4),
        l1d=CacheGeometry("L1D", 8 * 1024, 2, hit_latency=4, mshr_count=4,
                          banks=8, bank_bytes=4),
        l2=CacheGeometry("L2", 64 * 1024, 4, hit_latency=12, mshr_count=8),
        itlb=TlbGeometry("ITLB", entries=16, ways=4, miss_penalty=20),
        dtlb=TlbGeometry("DTLB", entries=16, ways=4, miss_penalty=20),
        l1_l2_bus=BusParams("l1l2", latency=2, bytes_per_cycle=32),
        system_bus=BusParams("sys", latency=10,
                             bytes_per_cycle=bus_bytes_per_cycle),
        memory=MemoryParams(latency=60, channels=2, channel_occupancy=8),
        prefetch=PrefetchParams(streams=8),
        bht=BhtParams("bht", entries=256, ways=4, access_latency=2),
    )


def run_point(cpus, config, timed=2500, warm=4000, seed=11):
    generators = build_smp_generators(
        standard_profiles()["TPC-C"], cpus, seed=seed
    )
    traces = [generator.generate(warm + timed) for generator in generators]
    regions = [generator.memory_regions() for generator in generators]
    return run_smp(
        config, traces, warmup_fraction=warm / (warm + timed),
        regions_per_cpu=regions,
    )


class TestScaling:
    def test_throughput_grows_with_cpus(self):
        config = small_smp_config()
        one = run_point(1, config)
        four = run_point(4, config)
        assert four.ipc > one.ipc
        assert four.total_instructions == 4 * one.total_instructions

    def test_scaling_is_sublinear(self):
        """Shared bus and memory make 4P less than 4x 1P."""
        config = small_smp_config()
        one = run_point(1, config)
        four = run_point(4, config)
        assert four.ipc < 4.2 * one.ipc

    def test_bus_utilization_grows(self):
        config = small_smp_config()
        one = run_point(1, config)
        four = run_point(4, config)
        assert four.system_bus_utilization >= one.system_bus_utilization

    def test_narrow_bus_hurts_smp(self):
        wide = run_point(4, small_smp_config(bus_bytes_per_cycle=32))
        narrow = run_point(4, small_smp_config(bus_bytes_per_cycle=2))
        assert narrow.ipc <= wide.ipc

    def test_coherence_traffic_scales(self):
        config = small_smp_config()
        two = run_point(2, config)
        four = run_point(4, config)
        def traffic(result):
            c = result.coherence
            return c["cache_to_cache"] + c["invalidations_sent"] + c["upgrades"]
        # More CPUs sharing the same region -> at least as much coherence
        # activity in aggregate.
        assert traffic(four) >= traffic(two)
