"""Tests for the persistent on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.runner import ExperimentRunner, ParallelRunner
from repro.analysis.workloads import workload_by_name
from repro.common.hashing import code_version, content_hash
from repro.model.config import base_config


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path))


class TestStoreLoad:
    def test_roundtrip(self, cache):
        key = cache.key("up", "cfg", "wl")
        cache.store(key, {"ipc": 1.25, "cycles": 800})
        assert cache.load(key) == {"ipc": 1.25, "cycles": 800}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_entry_is_miss(self, cache):
        assert cache.load(cache.key("up", "cfg", "never-ran")) is None
        assert cache.stats.misses == 1

    def test_keys_separate_kinds_and_cpu_counts(self, cache):
        keys = {
            cache.key("up", "cfg", "wl"),
            cache.key("smp", "cfg", "wl"),
            cache.key("smp", "cfg", "wl", 4),
            cache.key("smp", "cfg", "wl", 16),
        }
        assert len(keys) == 4

    def test_entries_and_clear(self, cache):
        for index in range(3):
            cache.store(cache.key("up", "cfg", f"wl{index}"), {"n": index})
        assert cache.entries() == 3
        assert cache.size_bytes() > 0
        assert cache.clear() == 3
        assert cache.entries() == 0


class TestCorruption:
    def test_garbage_is_miss_and_removed(self, cache):
        key = cache.key("up", "cfg", "wl")
        cache.store(key, {"ipc": 1.0})
        cache.path(key).write_text("not json {{{", encoding="utf-8")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1
        assert not cache.path(key).exists()

    def test_truncated_entry_is_miss(self, cache):
        key = cache.key("up", "cfg", "wl")
        cache.store(key, {"ipc": 1.0, "cycles": 12345})
        raw = cache.path(key).read_text(encoding="utf-8")
        cache.path(key).write_text(raw[: len(raw) // 2], encoding="utf-8")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_wrong_envelope_shape_is_miss(self, cache):
        key = cache.key("up", "cfg", "wl")
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.path(key).write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_stale_code_version_is_miss(self, cache, tmp_path):
        key = cache.key("up", "cfg", "wl")
        cache.store(key, {"ipc": 1.0})
        older = ResultCache(str(tmp_path), code_hash="0" * 16)
        assert older.load(key) is None
        assert older.stats.corrupt == 1

    def test_runner_survives_corrupt_entry(self, tmp_path):
        """A corrupt cache file degrades to a fresh run, same stats."""
        config = base_config()
        workload = workload_by_name("SPECint95", warm=2_000, timed=800)
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        fresh = runner.run(config, workload)

        disk_key = runner.cache.key(
            "up", config.content_hash(), workload.cache_key()
        )
        runner.cache.path(disk_key).write_text("\x00garbage", encoding="utf-8")

        recovered_runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        recovered = recovered_runner.run(config, workload)
        assert recovered_runner.cache.stats.corrupt == 1
        assert recovered_runner.stats.misses == 1
        assert recovered.as_dict(include_speed=False) == fresh.as_dict(
            include_speed=False
        )
        # The rerun repaired the entry on disk.
        third = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        third.run(config, workload)
        assert third.stats.disk_hits == 1


class TestHashing:
    def test_content_hash_stable_and_sensitive(self):
        base = base_config()
        assert content_hash(base) == content_hash(base_config())
        tweaked = base.derived(base.name, memory=base.memory)
        assert content_hash(tweaked) == content_hash(base)
        slower = base.derived(base.name, core=base.core.derived(issue_width=2))
        assert content_hash(slower) != content_hash(base)

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_cache_key_includes_code_version(self, tmp_path):
        now = ResultCache(str(tmp_path))
        other = ResultCache(str(tmp_path), code_hash="f" * 16)
        assert now.key("up", "cfg", "wl") != other.key("up", "cfg", "wl")


class TestAtomicDurableWrites:
    """The store protocol: temp write + fsync + rename + dir fsync."""

    def test_store_fsyncs_data_and_directory(self, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "os.fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        cache = ResultCache(str(tmp_path))
        cache.store(cache.key("up", "cfg", "wl"), {"ipc": 1.0})
        # One fsync for the temp file's bytes, one for the directory
        # entry created by the rename: both are needed for durability.
        assert len(synced) == 2

    def test_store_leaves_no_temp_debris(self, cache):
        for index in range(3):
            cache.store(cache.key("up", "cfg", f"wl{index}"), {"n": index})
        debris = list(cache.directory.glob("*.tmp"))
        assert debris == []

    def test_failed_rename_cleans_temp_and_raises(self, cache, monkeypatch):
        def broken_replace(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr("os.replace", broken_replace)
        key = cache.key("up", "cfg", "wl")
        with pytest.raises(OSError, match="disk detached"):
            cache.store(key, {"ipc": 1.0})
        monkeypatch.undo()
        assert list(cache.directory.glob("*.tmp")) == []
        assert cache.load(key) is None  # no entry, not a torn one

    def test_interrupted_write_is_invisible_to_readers(self, cache):
        """A concurrent reader sees the old entry until the atomic
        rename lands, never a partial new one."""
        key = cache.key("up", "cfg", "wl")
        cache.store(key, {"version": 1})
        # Simulate the window between temp write and rename: a stray
        # temp file exists alongside the still-intact old entry.
        (cache.directory / f".{key}.pending.tmp").write_text(
            '{"torn', encoding="utf-8"
        )
        assert cache.load(key) == {"version": 1}
