"""Determinism and robustness tests for :class:`ParallelRunner`.

The parallel runner is only trustworthy if (1) fanning runs out over
worker processes produces *bit-identical* statistics to serial
execution, (2) cache keys cannot alias distinct configurations, and
(3) worker crashes and corrupt cache entries degrade to fresh in-process
runs instead of aborting a sweep.  Each property gets a test here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.analysis.runner import ExperimentRunner, ParallelRunner
from repro.analysis.workloads import Workload, standard_workloads, workload_by_name
from repro.model.config import base_config

#: Tiny windows so each simulation finishes in well under a second.
WARM = 2_000
TIMED = 800


def _mini_workloads():
    return standard_workloads(warm=WARM, timed=TIMED)


def _stats(result):
    """Deterministic architectural statistics (no wall-clock fields)."""
    return result.as_dict(include_speed=False)


class TestDeterminism:
    def test_serial_vs_jobs1_vs_jobs4(self, tmp_path):
        """Same seed => same stats, regardless of worker scheduling."""
        config = base_config()
        serial = ExperimentRunner()
        expected = {
            w.name: _stats(serial.run(config, w)) for w in _mini_workloads()
        }

        for jobs in (1, 4):
            runner = ParallelRunner(
                jobs=jobs, cache_dir=str(tmp_path / f"cache-{jobs}")
            )
            workloads = _mini_workloads()
            runner.prefetch(up=[(config, w) for w in workloads])
            got = {w.name: _stats(runner.run(config, w)) for w in workloads}
            assert got == expected, f"jobs={jobs} diverged from serial"

    def test_disk_cache_roundtrip_preserves_stats(self, tmp_path):
        """A result served from disk equals the freshly computed one."""
        config = base_config()
        workload = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
        first = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        fresh = first.run(config, workload)

        second = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        cached = second.run(config, workload)
        assert second.stats.disk_hits == 1
        assert second.stats.misses == 0
        assert _stats(cached) == _stats(fresh)


class TestCacheKeys:
    def test_same_name_different_content_no_alias(self):
        """Regression: two configs sharing a *name* must not alias.

        The old runner keyed its memo on ``config.name`` alone, so a
        derived config reusing a name silently returned the other
        config's result.  Content-hash keys make them distinct.
        """
        workload = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
        base = base_config()
        impostor = base.derived(base.name, core=base.core.derived(window_size=8))
        assert impostor.name == base.name
        assert impostor.content_hash() != base.content_hash()

        runner = ExperimentRunner()
        real = runner.run(base, workload)
        shrunk = runner.run(impostor, workload)
        assert len(runner.cached_results()) == 2
        # An 8-entry window cannot keep up with the 64-entry machine.
        assert shrunk.cycles > real.cycles

    def test_same_content_hash_for_equal_configs(self):
        assert base_config().content_hash() == base_config().content_hash()

    def test_transient_configs_never_alias(self):
        """Regression: keys must come from content, not object identity.

        CPython reuses object addresses, so a memo keyed on
        ``id(config)`` can hand a freshly allocated config the hash of
        a dead one.  Churning through transient configs between runs
        reproduces the aliasing when identity leaks into the key.
        """
        import gc

        workload = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
        runner = ExperimentRunner()
        expected = ExperimentRunner().run(base_config(), workload).cycles

        for index in range(30):
            # Allocate, run, and drop a distinct transient config.
            transient = base_config().derived(
                f"transient-{index}",
                core=base_config().core.derived(window_size=8 + index),
            )
            runner.run(transient, workload)
            del transient
            gc.collect()
            fresh = runner.run(base_config(), workload)
            assert fresh.cycles == expected, f"aliased after {index} configs"

    def test_workload_cache_key_tracks_parameters(self):
        short = workload_by_name("SPECint95", warm=1_000, timed=500)
        long = workload_by_name("SPECint95", warm=2_000, timed=500)
        assert short.cache_key() != long.cache_key()
        again = workload_by_name("SPECint95", warm=1_000, timed=500)
        assert short.cache_key() == again.cache_key()


@dataclass
class _WorkerPoisonedWorkload(Workload):
    """Raises from :meth:`trace` only after crossing a pickle boundary.

    The runner pickles workloads into its worker processes; this class
    notices the unpickling (``__setstate__``) and fails there, so a
    prefetch sees a crashing worker while the parent's in-process
    fallback still succeeds.
    """

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._poisoned = True

    def trace(self):
        if getattr(self, "_poisoned", False):
            raise RuntimeError("poisoned in worker")
        return super().trace()


class TestGracefulDegradation:
    def test_worker_crash_falls_back_in_process(self, tmp_path):
        healthy = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
        poisoned = _WorkerPoisonedWorkload(
            name=healthy.name,
            profile=healthy.profile,
            seed=healthy.seed,
            warm_instructions=healthy.warm_instructions,
            timed_instructions=healthy.timed_instructions,
        )
        config = base_config()
        runner = ParallelRunner(jobs=2, cache_dir=str(tmp_path))
        runner.prefetch(up=[(config, poisoned)])
        assert runner.stats.worker_fallbacks == 1
        assert runner.stats.runs_in_process == 1

        result = runner.run(config, poisoned)
        expected = ExperimentRunner().run(config, healthy)
        assert _stats(result) == _stats(expected)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)


class TestObservability:
    def test_hit_miss_counters_and_timings(self, tmp_path):
        config = base_config()
        workload = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))

        runner.run(config, workload)
        assert runner.stats.misses == 1
        assert runner.stats.runs_in_process == 1
        assert len(runner.stats.timings) == 1
        label, seconds, pid = runner.stats.timings[0]
        assert "SPECint95" in label and seconds > 0 and pid is None

        runner.run(config, workload)
        assert runner.stats.memory_hits == 1
        assert "misses 1" in runner.summary()

    def test_prefetch_skips_satisfied_requests(self, tmp_path):
        config = base_config()
        workload = workload_by_name("SPECint95", warm=WARM, timed=TIMED)
        runner = ParallelRunner(jobs=2, cache_dir=str(tmp_path))
        runner.prefetch(up=[(config, workload), (config, workload)])
        assert runner.stats.misses == 1
        runner.prefetch(up=[(config, workload)])
        assert runner.stats.misses == 1


class TestWorkloadPickling:
    def test_pickle_drops_generated_traces(self):
        import pickle

        workload = workload_by_name("SPECfp95", warm=WARM, timed=TIMED)
        original = workload.trace()
        clone = pickle.loads(pickle.dumps(workload))
        assert clone._trace is None and clone._generator is None
        regenerated = clone.trace()
        assert len(regenerated) == len(original)
        assert [r.pc for r in regenerated.records[:200]] == [
            r.pc for r in original.records[:200]
        ]
