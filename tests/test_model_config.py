"""Unit tests for machine configurations (Table 1 and study variants)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import ns_to_cycles
from repro.memory.params import CacheGeometry, MemoryParams
from repro.model.config import (
    OFF_CHIP_EXTRA_CYCLES,
    base_config,
    bht_4k_2w_1t,
    issue_2way,
    l1_32k_1w_3c,
    l2_off_8m_1w,
    l2_off_8m_2w,
    one_rs,
    prefetch_off,
)
from repro.core.params import RsOrganization


class TestTable1:
    """The base configuration must itemise exactly Table 1."""

    def test_issue_width(self):
        assert base_config().core.issue_width == 4

    def test_window(self):
        assert base_config().core.window_size == 64

    def test_l1_caches(self):
        config = base_config()
        assert config.l1i.size_bytes == 128 * 1024 and config.l1i.ways == 2
        assert config.l1d.size_bytes == 128 * 1024 and config.l1d.ways == 2

    def test_l1d_banking(self):
        config = base_config()
        assert config.l1d.banks == 8
        assert config.l1d.bank_bytes == 4

    def test_l2(self):
        config = base_config()
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.ways == 4

    def test_bht(self):
        config = base_config()
        assert config.bht.entries == 16 * 1024
        assert config.bht.ways == 4
        assert config.bht.access_latency == 2

    def test_units(self):
        core = base_config().core
        assert core.int_units == 2
        assert core.fp_units == 2
        assert core.eag_units == 2

    def test_reservation_stations(self):
        core = base_config().core
        assert core.rse_entries == 8 and core.rsf_entries == 8
        assert core.rsa_entries == 10 and core.rsbr_entries == 10
        assert core.rs_organization is RsOrganization.TWO_RS

    def test_rename_registers(self):
        core = base_config().core
        assert core.int_rename == 32 and core.fp_rename == 32

    def test_lsq(self):
        core = base_config().core
        assert core.load_queue == 16 and core.store_queue == 10

    def test_fetch_width(self):
        frontend = base_config().frontend
        assert frontend.fetch_group_bytes == 32
        assert frontend.fetch_width == 8

    def test_table1_renders(self):
        text = base_config().table1()
        assert "SPARC-V9" in text
        assert "4-way" in text
        assert "64 instructions" in text
        assert "16/10" in text


class TestVariants:
    def test_issue_2way(self):
        config = issue_2way()
        assert config.core.issue_width == 2

    def test_bht_variant(self):
        config = bht_4k_2w_1t()
        assert config.bht.entries == 4 * 1024
        assert config.bht.access_latency == 1

    def test_l1_variant(self):
        config = l1_32k_1w_3c()
        assert config.l1i.size_bytes == 32 * 1024 and config.l1i.ways == 1
        assert config.l1d.hit_latency == 3

    def test_off_chip_penalty_is_10ns(self):
        assert OFF_CHIP_EXTRA_CYCLES == ns_to_cycles(10.0) == 13
        base = base_config()
        off = l2_off_8m_2w()
        assert off.l1_l2_bus.latency == base.l1_l2_bus.latency + 13

    def test_off_chip_sizes(self):
        assert l2_off_8m_2w().l2.size_bytes == 8 * 1024 * 1024
        assert l2_off_8m_2w().l2.ways == 2
        assert l2_off_8m_1w().l2.ways == 1

    def test_off_chip_narrower_interface(self):
        base = base_config()
        off = l2_off_8m_2w()
        assert off.l1_l2_bus.bytes_per_cycle < base.l1_l2_bus.bytes_per_cycle

    def test_prefetch_off(self):
        assert not prefetch_off().prefetch.enabled
        assert base_config().prefetch.enabled

    def test_one_rs(self):
        assert one_rs().core.rs_organization is RsOrganization.ONE_RS

    def test_variants_leave_base_untouched(self):
        base = base_config()
        issue_2way(base)
        l1_32k_1w_3c(base)
        assert base.core.issue_width == 4
        assert base.l1i.size_bytes == 128 * 1024


class TestValidation:
    """Cross-component checks reject machines that cannot exist.

    Each test drives exactly one rejection through ``derived()`` so
    the error message — which must name the config — is also checked.
    """

    def test_all_factories_validate(self):
        for factory in (
            base_config,
            issue_2way,
            bht_4k_2w_1t,
            l1_32k_1w_3c,
            l2_off_8m_2w,
            l2_off_8m_1w,
            prefetch_off,
            one_rs,
        ):
            factory()  # __post_init__ runs validate(); must not raise

    def test_l2_line_must_cover_l1_line(self):
        base = base_config()
        with pytest.raises(ConfigError, match="broken-lines.*multiple"):
            base.derived(
                "broken-lines",
                l1d=base.l1d.scaled(name="L1D-wide", line_bytes=128),
            )

    def test_l2_must_be_at_least_l1_sized(self):
        base = base_config()
        with pytest.raises(ConfigError, match="tiny-l2.*inclusion"):
            base.derived(
                "tiny-l2",
                l2=base.l2.scaled(name="L2-64k", size_bytes=64 * 1024),
            )

    def test_l2_cannot_be_faster_than_l1(self):
        base = base_config()
        with pytest.raises(ConfigError, match="fast-l2.*inverted"):
            base.derived(
                "fast-l2",
                l2=base.l2.scaled(name="L2-fast", hit_latency=2),
            )

    def test_memory_slower_than_l2(self):
        base = base_config()
        with pytest.raises(ConfigError, match="fast-mem.*memory latency"):
            base.derived("fast-mem", memory=MemoryParams(latency=5))

    def test_fetch_must_feed_issue(self):
        base = base_config()
        with pytest.raises(ConfigError, match="starved.*fetch width"):
            base.derived("starved", core=base.core.derived(issue_width=16))

    def test_commit_within_window(self):
        base = base_config()
        with pytest.raises(ConfigError, match="wide-commit.*window"):
            base.derived(
                "wide-commit",
                core=base.core.derived(window_size=8, commit_width=16),
            )

    def test_component_errors_still_surface(self):
        # Per-component __post_init__ checks fire before the
        # cross-component pass and keep their own messages.
        with pytest.raises(ConfigError, match="line_bytes"):
            CacheGeometry("bad", 64 * 1024, 2, line_bytes=48)
        with pytest.raises(ConfigError, match="positive"):
            CacheGeometry("bad", 0, 2)
