"""Calibration dashboard: per-profile model metrics vs paper targets.

Run:  python tools/calibrate.py [names...]
"""
import sys
import time

from repro.model import base_config, PerformanceModel
from repro.trace.synth import TraceGenerator, standard_profiles

TIMED = 25_000
WARM = 100_000

# Bands derived from the paper's Figure 7 stall shares and era-typical
# absolute rates: SPECint95 ~30% branch stalls at CPI ~0.8-1 implies
# bp ~0.10-0.14; SPECfp95 74% core time implies IPC ~0.6-0.8 with tiny
# branch and moderate L1D (strided) misses; TPC-C 35% sx stalls at
# CPI ~3-5 implies a memory-going rate ~0.2% of instructions.
TARGETS = {
    "SPECint95":   dict(ipc=(0.9, 1.8), l1i=(0.0, 0.01), l1d=(0.01, 0.06), l2=(0.0, 0.15), bp=(0.06, 0.14)),
    "SPECfp95":    dict(ipc=(0.55, 1.8), l1i=(0.0, 0.01), l1d=(0.04, 0.20), l2=(0.02, 0.5), bp=(0.01, 0.05)),
    "SPECint2000": dict(ipc=(0.9, 1.8), l1i=(0.0, 0.02), l1d=(0.01, 0.08), l2=(0.0, 0.2), bp=(0.06, 0.13)),
    "SPECfp2000":  dict(ipc=(0.45, 1.8), l1i=(0.0, 0.01), l1d=(0.04, 0.20), l2=(0.02, 0.5), bp=(0.01, 0.05)),
    "TPC-C":       dict(ipc=(0.2, 0.7), l1i=(0.01, 0.08), l1d=(0.02, 0.12), l2=(0.1, 0.55), bp=(0.05, 0.16)),
}


def flag(value, lo, hi):
    return " " if lo <= value <= hi else "*"


def main(names):
    profiles = standard_profiles()
    if not names:
        names = list(profiles)
    for name in names:
        prof = profiles[name]
        t0 = time.time()
        gen = TraceGenerator(prof, seed=42)
        trace = gen.generate(WARM + TIMED)
        res = PerformanceModel(base_config()).run(
            trace, warmup_fraction=WARM / (WARM + TIMED), regions=gen.memory_regions()
        )
        t = TARGETS[name]
        vals = dict(
            ipc=res.ipc,
            l1i=res.miss_ratio("l1i"),
            l1d=res.miss_ratio("l1d"),
            l2=res.miss_ratio("l2"),
            bp=res.bht_misprediction_ratio,
        )
        marks = "".join(
            f"{key}={vals[key]:.4f}{flag(vals[key], *t[key])} " for key in vals
        )
        print(f"{name:12s} {marks} [{time.time() - t0:.0f}s]")


if __name__ == "__main__":
    main(sys.argv[1:])
