"""Regenerate the golden regression fixtures under tests/golden/.

Run:  python tools/regen_golden.py [--check] [--only base|cpistack]

Regenerates, deterministically, from the current model:

- ``tests/golden/base_config.json``  — pinned summary statistics
  (tests/test_golden_results.py);
- ``tests/golden/cpi_stacks.json``   — pinned CPI-stack attribution
  (tests/test_golden_cpistacks.py).

``--check`` writes nothing: it exits non-zero if a regenerated file
would differ from what is on disk, printing a unified diff — the same
comparison the tests make, usable as a quick pre-commit gate.

This is equivalent to ``REPRO_UPDATE_GOLDEN=1 pytest
tests/test_golden_results.py tests/test_golden_cpistacks.py`` but
importable, diffable, and independent of pytest collection order.
"""

import argparse
import difflib
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))


def _render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def regenerate(name: str) -> "tuple[Path, str]":
    """(path, rendered JSON) for one golden file, from the current model."""
    if name == "base":
        import test_golden_results as module
    else:
        import test_golden_cpistacks as module
    return module.GOLDEN_PATH, _render(module.compute_current())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="diff against the files on disk instead of rewriting them",
    )
    parser.add_argument(
        "--only", choices=("base", "cpistack"), default=None,
        help="regenerate just one fixture",
    )
    args = parser.parse_args(argv)

    names = [args.only] if args.only else ["base", "cpistack"]
    dirty = 0
    for name in names:
        path, fresh = regenerate(name)
        on_disk = path.read_text(encoding="utf-8") if path.exists() else ""
        if fresh == on_disk:
            print(f"{path.relative_to(REPO)}: up to date")
            continue
        if args.check:
            dirty += 1
            print(f"{path.relative_to(REPO)}: STALE")
            sys.stdout.writelines(
                difflib.unified_diff(
                    on_disk.splitlines(keepends=True),
                    fresh.splitlines(keepends=True),
                    fromfile=f"golden/{path.name}",
                    tofile="regenerated",
                )
            )
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(fresh, encoding="utf-8")
            print(f"{path.relative_to(REPO)}: rewritten")
    return 1 if dirty else 0


if __name__ == "__main__":
    raise SystemExit(main())
