"""Offline BHT evaluation on a trace's branch-outcome stream."""
import sys
from repro.frontend.bht import BranchHistoryTable, BHT_16K_4W_2T, BHT_4K_2W_1T
from repro.isa.opcodes import OpClass
from repro.analysis.workloads import workload_by_name


def evaluate(trace, warm_count):
    big = BranchHistoryTable(BHT_16K_4W_2T)
    small = BranchHistoryTable(BHT_4K_2W_1T)
    for i, r in enumerate(trace.records):
        if r.op != OpClass.BRANCH_COND:
            continue
        for t in (big, small):
            pred = t.predict(r.pc)
            t.update(r.pc, r.taken, pred)
        if i == warm_count:
            big.stats.__init__()
            small.stats.__init__()
    return big.stats.misprediction_ratio, small.stats.misprediction_ratio


if __name__ == "__main__":
    w = workload_by_name(sys.argv[1] if len(sys.argv) > 1 else "TPC-C")
    b, s = evaluate(w.trace(), w.warm_instructions)
    print(f"{w.name}: 16k={b:.4f} 4k={s:.4f} increase={(s-b)/b*100:.0f}%")
