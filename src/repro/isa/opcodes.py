"""Timing-level instruction classification.

Every dynamic instruction the simulator sees — whether read from a trace
or produced by the functional executor — carries an :class:`OpClass`.  The
class determines which reservation station accepts it (paper §3, Table 1),
which execution unit runs it, and its execution latency.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict


class OpClass(IntEnum):
    """Timing class of a dynamic instruction.

    The grouping matches the SPARC64 V's dispatch structure:

    - ``INT_*`` go to RSE (two 8-entry buffers, one per integer unit);
    - ``FP_*`` go to RSF (two 8-entry buffers, one per FP unit);
    - ``LOAD``/``STORE`` go to RSA (10 entries) for address generation and
      occupy the load/store queues;
    - ``BRANCH_*``/``CALL``/``RETURN`` go to RSBR (10 entries).
    """

    NOP = 0
    INT_ALU = 1
    INT_MUL = 2
    INT_DIV = 3
    FP_ADD = 4
    FP_MUL = 5
    FP_FMA = 6
    FP_DIV = 7
    LOAD = 8
    STORE = 9
    BRANCH_COND = 10
    BRANCH_UNCOND = 11
    CALL = 12
    RETURN = 13
    SPECIAL = 14


#: Execution latency in cycles once an instruction enters its unit's
#: execution stage.  Loads are excluded: their latency comes from the cache
#: hierarchy.  SPECIAL covers serialising instructions (e.g. window traps,
#: MEMBAR) whose cost is a model parameter — earlier model versions used a
#: flat experimental penalty (paper §5, version v5 discussion).
EXECUTION_LATENCY: Dict[OpClass, int] = {
    OpClass.NOP: 1,
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 37,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 3,
    OpClass.FP_FMA: 4,
    OpClass.FP_DIV: 20,
    OpClass.BRANCH_COND: 1,
    OpClass.BRANCH_UNCOND: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.SPECIAL: 1,
}

_BRANCH_CLASSES = frozenset(
    {OpClass.BRANCH_COND, OpClass.BRANCH_UNCOND, OpClass.CALL, OpClass.RETURN}
)
_MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})
_FP_CLASSES = frozenset(
    {OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_FMA, OpClass.FP_DIV}
)
_INT_EXEC_CLASSES = frozenset(
    {OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV, OpClass.NOP, OpClass.SPECIAL}
)


def is_branch(op: OpClass) -> bool:
    """True for any control-transfer class (dispatched to RSBR)."""
    return op in _BRANCH_CLASSES


def is_memory(op: OpClass) -> bool:
    """True for loads and stores (dispatched to RSA, occupy LSQ)."""
    return op in _MEMORY_CLASSES


def is_fp(op: OpClass) -> bool:
    """True for floating-point execution classes (dispatched to RSF)."""
    return op in _FP_CLASSES


def uses_rse(op: OpClass) -> bool:
    """True if the instruction is dispatched from RSE (integer units)."""
    return op in _INT_EXEC_CLASSES


def uses_rsf(op: OpClass) -> bool:
    """True if the instruction is dispatched from RSF (FP units)."""
    return op in _FP_CLASSES


def uses_rsa(op: OpClass) -> bool:
    """True if the instruction is dispatched from RSA (address generation)."""
    return op in _MEMORY_CLASSES


def uses_rsbr(op: OpClass) -> bool:
    """True if the instruction is dispatched from RSBR (branch unit)."""
    return op in _BRANCH_CLASSES
