"""Container for functional test programs.

A :class:`Program` is what the Reverse Tracer emits and what the logic
simulator (:mod:`repro.verify.logicsim`) executes: a sequence of
instructions at consecutive addresses, label-resolved control transfers,
and an initial data-memory image.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import SimulationError, TraceError
from repro.isa.instructions import Instruction

#: Default base address for program text (arbitrary, page-aligned).
DEFAULT_TEXT_BASE = 0x0001_0000

#: SPARC instructions are 4 bytes.
INSTRUCTION_BYTES = 4


class Program:
    """An ordered list of instructions plus an initial memory image."""

    def __init__(
        self,
        instructions: Optional[Iterable[Instruction]] = None,
        text_base: int = DEFAULT_TEXT_BASE,
        name: str = "program",
    ) -> None:
        self.name = name
        self.text_base = text_base
        self.instructions: List[Instruction] = list(instructions or [])
        #: Initial data memory: 8-byte-aligned address -> 64-bit value.
        self.initial_memory: Dict[int, int] = {}
        self._labels: Dict[str, int] = {}
        self._finalized = False

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, instruction: Instruction) -> int:
        """Append an instruction; returns its index."""
        if self._finalized:
            raise SimulationError("cannot append to a finalized program")
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions."""
        for instruction in instructions:
            self.append(instruction)

    def set_memory(self, address: int, value: int) -> None:
        """Set an initial 64-bit memory word (address must be 8-aligned)."""
        if address % 8 != 0:
            raise TraceError(f"initial memory address not 8-aligned: {address:#x}")
        self.initial_memory[address] = value & ((1 << 64) - 1)

    def pc_of(self, index: int) -> int:
        """Address of the instruction at ``index``."""
        return self.text_base + index * INSTRUCTION_BYTES

    def index_of_pc(self, pc: int) -> int:
        """Instruction index for an address inside the text segment."""
        offset = pc - self.text_base
        if offset % INSTRUCTION_BYTES != 0 or not (
            0 <= offset // INSTRUCTION_BYTES < len(self.instructions)
        ):
            raise SimulationError(f"pc outside program text: {pc:#x}")
        return offset // INSTRUCTION_BYTES

    def finalize(self) -> "Program":
        """Resolve labels to instruction indices.  Idempotent."""
        if self._finalized:
            return self
        self._labels = {}
        for index, instruction in enumerate(self.instructions):
            if instruction.label is not None:
                if instruction.label in self._labels:
                    raise TraceError(f"duplicate label: {instruction.label}")
                self._labels[instruction.label] = index
        for instruction in self.instructions:
            if instruction.target is not None:
                if instruction.target not in self._labels:
                    raise TraceError(f"undefined label: {instruction.target}")
                instruction.target_index = self._labels[instruction.target]
        self._finalized = True
        return self

    @property
    def labels(self) -> Dict[str, int]:
        """Label-name to instruction-index map (after finalize)."""
        if not self._finalized:
            raise SimulationError("program not finalized")
        return dict(self._labels)

    def listing(self) -> str:
        """Human-readable assembly listing, for debugging test programs."""
        lines = []
        for index, instruction in enumerate(self.instructions):
            lines.append(f"{self.pc_of(index):#010x}  {instruction}")
        return "\n".join(lines)
