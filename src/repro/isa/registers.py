"""Architected register model.

The timing model identifies registers by a flat integer id so that trace
records stay compact:

- integer registers ``%r0``–``%r31`` map to ids ``0``–``31``
  (``%g0`` = id 0 is hardwired zero, never renamed);
- floating-point registers ``%f0``–``%f31`` map to ids ``32``–``63``;
- the integer condition codes (``icc``/``xcc``) are id ``64``;
- the FP condition codes (``fcc``) are id ``65``.

SPARC-V9 register windows are flattened: a SAVE/RESTORE shows up in traces
as a SPECIAL-class instruction and the trace generator allocates registers
from the flat space.  Window rotation affects timing only through the
SPECIAL penalty, which is how the paper's model handled special
instructions until version v5 refined them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import SimulationError

INT_REG_COUNT = 32
FP_REG_COUNT = 32
FP_REG_BASE = INT_REG_COUNT

#: Hardwired-zero integer register (%g0).
G0 = 0

#: Flat id of the integer condition-code register.
ICC = FP_REG_BASE + FP_REG_COUNT  # 64

#: Flat id of the floating-point condition-code register.
FCC = ICC + 1  # 65

#: Total number of architected register ids (including condition codes).
TOTAL_REG_IDS = FCC + 1


def int_reg(index: int) -> int:
    """Flat id for integer register ``%r<index>``."""
    if not 0 <= index < INT_REG_COUNT:
        raise SimulationError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Flat id for floating-point register ``%f<index>``."""
    if not 0 <= index < FP_REG_COUNT:
        raise SimulationError(f"fp register index out of range: {index}")
    return FP_REG_BASE + index


def is_int_reg(reg_id: int) -> bool:
    """True if the flat id names an integer register."""
    return 0 <= reg_id < INT_REG_COUNT


def is_fp_reg(reg_id: int) -> bool:
    """True if the flat id names a floating-point register."""
    return FP_REG_BASE <= reg_id < FP_REG_BASE + FP_REG_COUNT


def reg_name(reg_id: int) -> str:
    """Human-readable name for a flat register id."""
    if is_int_reg(reg_id):
        return f"%r{reg_id}"
    if is_fp_reg(reg_id):
        return f"%f{reg_id - FP_REG_BASE}"
    if reg_id == ICC:
        return "%icc"
    if reg_id == FCC:
        return "%fcc"
    raise SimulationError(f"unknown register id: {reg_id}")


_MASK64 = (1 << 64) - 1


class RegisterFile:
    """Architected state for the functional executor.

    Integer registers hold 64-bit two's-complement values; FP registers
    hold Python floats (the executor only needs enough FP fidelity to
    replay control flow, which never depends on FP rounding in the test
    programs the Reverse Tracer emits).
    """

    def __init__(self) -> None:
        self._int: List[int] = [0] * INT_REG_COUNT
        self._fp: List[float] = [0.0] * FP_REG_COUNT
        #: icc condition flags, updated by compare/...cc instructions.
        self.icc_zero = True
        self.icc_negative = False
        self.fcc_less = False
        self.fcc_equal = True

    def read_int(self, index: int) -> int:
        """Read integer register ``%r<index>`` (``%g0`` reads as zero)."""
        if index == G0:
            return 0
        return self._int[index]

    def write_int(self, index: int, value: int) -> None:
        """Write integer register; writes to ``%g0`` are discarded."""
        if index == G0:
            return
        self._int[index] = value & _MASK64

    def read_int_signed(self, index: int) -> int:
        """Read an integer register as a signed 64-bit value."""
        value = self.read_int(index)
        if value >= 1 << 63:
            value -= 1 << 64
        return value

    def read_fp(self, index: int) -> float:
        """Read floating-point register ``%f<index>``."""
        return self._fp[index]

    def write_fp(self, index: int, value: float) -> None:
        """Write floating-point register ``%f<index>``."""
        self._fp[index] = float(value)

    def set_icc(self, result_signed: int) -> None:
        """Update integer condition codes from a signed 64-bit result."""
        self.icc_zero = result_signed == 0
        self.icc_negative = result_signed < 0

    def set_fcc(self, lhs: float, rhs: float) -> None:
        """Update FP condition codes from a comparison of two operands."""
        self.fcc_less = lhs < rhs
        self.fcc_equal = lhs == rhs

    def snapshot(self) -> Dict[str, object]:
        """A copy of all architected state, for test assertions."""
        return {
            "int": list(self._int),
            "fp": list(self._fp),
            "icc_zero": self.icc_zero,
            "icc_negative": self.icc_negative,
            "fcc_less": self.fcc_less,
            "fcc_equal": self.fcc_equal,
        }
