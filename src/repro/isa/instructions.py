"""Functional instruction subset used by test programs.

These instructions carry real semantics and are executed by
:class:`repro.isa.executor.FunctionalExecutor`.  The subset is chosen to be
exactly what the Reverse Tracer needs to replay a dynamic instruction
stream: integer/FP arithmetic, compares, memory operations, and the full
family of conditional branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Union

from repro.isa.opcodes import OpClass


class Mnemonic(Enum):
    """Assembler-level operation of a functional instruction."""

    # Integer arithmetic / logic.
    ADD = auto()
    SUB = auto()
    SUBCC = auto()  # compare: sets icc, result discarded when rd is %g0
    AND = auto()
    OR = auto()
    XOR = auto()
    SLL = auto()
    SRL = auto()
    SRA = auto()  # arithmetic shift right
    ANDN = auto()  # rd <- rs1 & ~rs2
    ORN = auto()  # rd <- rs1 | ~rs2
    XNOR = auto()  # rd <- ~(rs1 ^ rs2)
    MULX = auto()
    SDIVX = auto()
    MOV = auto()  # rd <- immediate (models sethi/or synthesis)
    SETHI = auto()  # rd <- imm << 10 (upper 22 bits)

    # Floating point.
    FADD = auto()
    FMUL = auto()
    FMADD = auto()  # rd <- rs1 * rs2 + rd (fused multiply-add)
    FDIV = auto()
    FCMP = auto()  # sets fcc

    # Memory.
    LDX = auto()  # rd <- mem[rs1 + imm]
    STX = auto()  # mem[rs1 + imm] <- rd (rd read as source)
    LDF = auto()  # frd <- mem[rs1 + imm]
    STF = auto()  # mem[rs1 + imm] <- frd

    # Control transfer.
    BA = auto()
    BE = auto()
    BNE = auto()
    BG = auto()
    BL = auto()
    BGE = auto()
    BLE = auto()
    FBL = auto()  # branch if fcc "less"
    FBE = auto()  # branch if fcc "equal"
    CALL = auto()  # %r15 <- pc of call; jump to target
    RET = auto()  # jump to %r15 + 8 (flattened return)

    # Other.
    NOP = auto()
    SAVE = auto()  # SPECIAL: register-window push (no flat-model effect)
    RESTORE = auto()  # SPECIAL: register-window pop
    MEMBAR = auto()  # SPECIAL: memory barrier
    HALT = auto()  # executor sentinel: stop the program


#: Mapping from functional mnemonic to timing class.
MNEMONIC_OPCLASS = {
    Mnemonic.ADD: OpClass.INT_ALU,
    Mnemonic.SUB: OpClass.INT_ALU,
    Mnemonic.SUBCC: OpClass.INT_ALU,
    Mnemonic.AND: OpClass.INT_ALU,
    Mnemonic.OR: OpClass.INT_ALU,
    Mnemonic.XOR: OpClass.INT_ALU,
    Mnemonic.SLL: OpClass.INT_ALU,
    Mnemonic.SRL: OpClass.INT_ALU,
    Mnemonic.SRA: OpClass.INT_ALU,
    Mnemonic.ANDN: OpClass.INT_ALU,
    Mnemonic.ORN: OpClass.INT_ALU,
    Mnemonic.XNOR: OpClass.INT_ALU,
    Mnemonic.SETHI: OpClass.INT_ALU,
    Mnemonic.MULX: OpClass.INT_MUL,
    Mnemonic.SDIVX: OpClass.INT_DIV,
    Mnemonic.MOV: OpClass.INT_ALU,
    Mnemonic.FADD: OpClass.FP_ADD,
    Mnemonic.FMUL: OpClass.FP_MUL,
    Mnemonic.FMADD: OpClass.FP_FMA,
    Mnemonic.FDIV: OpClass.FP_DIV,
    Mnemonic.FCMP: OpClass.FP_ADD,
    Mnemonic.LDX: OpClass.LOAD,
    Mnemonic.LDF: OpClass.LOAD,
    Mnemonic.STX: OpClass.STORE,
    Mnemonic.STF: OpClass.STORE,
    Mnemonic.BA: OpClass.BRANCH_UNCOND,
    Mnemonic.BE: OpClass.BRANCH_COND,
    Mnemonic.BNE: OpClass.BRANCH_COND,
    Mnemonic.BG: OpClass.BRANCH_COND,
    Mnemonic.BL: OpClass.BRANCH_COND,
    Mnemonic.BGE: OpClass.BRANCH_COND,
    Mnemonic.BLE: OpClass.BRANCH_COND,
    Mnemonic.FBL: OpClass.BRANCH_COND,
    Mnemonic.FBE: OpClass.BRANCH_COND,
    Mnemonic.CALL: OpClass.CALL,
    Mnemonic.RET: OpClass.RETURN,
    Mnemonic.NOP: OpClass.NOP,
    Mnemonic.SAVE: OpClass.SPECIAL,
    Mnemonic.RESTORE: OpClass.SPECIAL,
    Mnemonic.MEMBAR: OpClass.SPECIAL,
    Mnemonic.HALT: OpClass.SPECIAL,
}

_CONDITIONAL_BRANCHES = frozenset(
    {
        Mnemonic.BE,
        Mnemonic.BNE,
        Mnemonic.BG,
        Mnemonic.BL,
        Mnemonic.BGE,
        Mnemonic.BLE,
        Mnemonic.FBL,
        Mnemonic.FBE,
    }
)

_CONTROL_TRANSFERS = _CONDITIONAL_BRANCHES | {Mnemonic.BA, Mnemonic.CALL, Mnemonic.RET}


@dataclass
class Instruction:
    """One functional instruction.

    ``rd``/``rs1``/``rs2`` are register *indices within their bank* (the
    mnemonic implies integer vs FP).  ``imm`` serves both as the arithmetic
    immediate and the memory displacement.  ``target`` is a label name that
    :meth:`repro.isa.program.Program.finalize` resolves to an instruction
    index.
    """

    mnemonic: Mnemonic
    rd: int = 0
    rs1: int = 0
    rs2: Optional[int] = None
    imm: Union[int, float, None] = None
    target: Optional[str] = None
    label: Optional[str] = None
    #: Resolved instruction index for control transfers (set by finalize()).
    target_index: Optional[int] = field(default=None, repr=False)
    #: True when this instruction executes in privileged (kernel) mode.
    privileged: bool = False

    @property
    def op_class(self) -> OpClass:
        """Timing class of this instruction."""
        return MNEMONIC_OPCLASS[self.mnemonic]

    @property
    def is_conditional_branch(self) -> bool:
        """True for branches whose direction depends on condition codes."""
        return self.mnemonic in _CONDITIONAL_BRANCHES

    @property
    def is_control_transfer(self) -> bool:
        """True for any instruction that may redirect the PC."""
        return self.mnemonic in _CONTROL_TRANSFERS

    def __str__(self) -> str:
        parts = [self.mnemonic.name.lower()]
        if self.target is not None:
            parts.append(self.target)
        else:
            operands = [f"r{self.rd}"]
            if self.rs1 is not None:
                operands.append(f"r{self.rs1}")
            if self.rs2 is not None:
                operands.append(f"r{self.rs2}")
            if self.imm is not None:
                operands.append(str(self.imm))
            parts.append(", ".join(operands))
        prefix = f"{self.label}: " if self.label else ""
        return prefix + " ".join(parts)
