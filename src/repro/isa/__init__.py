"""SPARC-V9 instruction-set subset.

The performance model is trace-driven, so most of the simulator only needs
the *timing-relevant* view of an instruction (its :class:`OpClass`, register
operands, and memory/branch behaviour).  This package additionally provides
a small functional subset of SPARC-V9 — enough semantics to execute the
test programs produced by the Reverse Tracer (:mod:`repro.verify`) on the
logic-simulator analog, mirroring verification loop (2) of the paper's
Figure 3.
"""

from repro.isa.opcodes import (
    EXECUTION_LATENCY,
    OpClass,
    is_branch,
    is_fp,
    is_memory,
    uses_rsa,
    uses_rsbr,
    uses_rse,
    uses_rsf,
)
from repro.isa.registers import (
    FCC,
    FP_REG_BASE,
    FP_REG_COUNT,
    G0,
    ICC,
    INT_REG_COUNT,
    RegisterFile,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    reg_name,
)
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.program import Program


def __getattr__(name):
    # FunctionalExecutor/ExecutionResult are loaded lazily: the executor
    # module imports repro.trace.record (to emit trace records), which in
    # turn imports repro.isa.opcodes — a cycle if resolved eagerly here.
    if name in ("FunctionalExecutor", "ExecutionResult"):
        from repro.isa import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "OpClass",
    "EXECUTION_LATENCY",
    "is_branch",
    "is_fp",
    "is_memory",
    "uses_rsa",
    "uses_rsbr",
    "uses_rse",
    "uses_rsf",
    "RegisterFile",
    "INT_REG_COUNT",
    "FP_REG_COUNT",
    "FP_REG_BASE",
    "G0",
    "ICC",
    "FCC",
    "int_reg",
    "fp_reg",
    "is_int_reg",
    "is_fp_reg",
    "reg_name",
    "Instruction",
    "Mnemonic",
    "Program",
    "FunctionalExecutor",
    "ExecutionResult",
]
