"""Functional executor for the SPARC-V9 subset.

Executes a finalized :class:`repro.isa.Program` instruction by
instruction, maintaining architected register and memory state, and emits
the dynamic instruction stream as :class:`repro.trace.TraceRecord` objects
— the same representation the trace-driven timing model consumes.  This is
the execution path of the "logic simulator" analog: the Reverse Tracer
turns a trace into a program, this executor replays it, and
:mod:`repro.verify` checks that both paths produce identical timing.

Modeling notes:

- SPARC delay slots are not modeled; traces are post-delay-slot dynamic
  streams and RET returns to the instruction after its CALL (pc + 4).
- Compare instructions (SUBCC with ``rd = %g0``) record their destination
  as the condition-code register so the timing model sees the
  branch-on-compare dependence.  SUBCC with a real destination records
  that register instead (the cc dependence is dropped — the trace
  generators never emit that form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.program import Program
from repro.isa.registers import FCC, G0, ICC, RegisterFile, fp_reg, int_reg
from repro.trace.record import NO_ADDR, NO_REG, TraceRecord

_MASK64 = (1 << 64) - 1

#: Offset added to the saved call address by RET (no delay slots).
RETURN_OFFSET = 4


@dataclass
class ExecutionResult:
    """Outcome of running a program to completion (or to the step limit)."""

    records: List[TraceRecord]
    registers: RegisterFile
    memory: Dict[int, int]
    fp_memory: Dict[int, float]
    steps: int
    halted: bool
    #: Instruction index at which execution stopped.
    stop_index: int = 0
    trace_name: str = field(default="")


class FunctionalExecutor:
    """Interprets programs in the functional SPARC-V9 subset."""

    def __init__(self, max_steps: int = 1_000_000, halt_on_limit: bool = False) -> None:
        if max_steps <= 0:
            raise SimulationError("max_steps must be positive")
        self.max_steps = max_steps
        #: When True, hitting the step budget ends the run gracefully
        #: (``halted=False``) instead of raising — used for replay programs
        #: whose control flow may not terminate by itself.
        self.halt_on_limit = halt_on_limit

    def run(self, program: Program) -> ExecutionResult:
        """Execute ``program`` from its first instruction.

        Returns the dynamic stream plus final architected state.  Raises
        :class:`SimulationError` on division by zero, fall-through off the
        end of text without HALT, or an unresolved branch target.
        """
        program.finalize()
        regs = RegisterFile()
        memory: Dict[int, int] = dict(program.initial_memory)
        fp_memory: Dict[int, float] = {}
        records: List[TraceRecord] = []
        index = 0
        steps = 0
        halted = False

        instructions = program.instructions
        count = len(instructions)
        while steps < self.max_steps:
            if not 0 <= index < count:
                raise SimulationError(
                    f"execution fell off program text at index {index} "
                    f"(program {program.name!r} has {count} instructions)"
                )
            inst = instructions[index]
            if inst.mnemonic is Mnemonic.HALT:
                halted = True
                break
            record, next_index = self._step(program, inst, index, regs, memory, fp_memory)
            records.append(record)
            index = next_index
            steps += 1

        if not halted and steps >= self.max_steps and not self.halt_on_limit:
            raise SimulationError(
                f"program {program.name!r} exceeded {self.max_steps} steps without HALT"
            )
        result = ExecutionResult(
            records=records,
            registers=regs,
            memory=memory,
            fp_memory=fp_memory,
            steps=steps,
            halted=halted,
            stop_index=index,
            trace_name=program.name,
        )
        return result

    # ------------------------------------------------------------------
    # Single-instruction semantics.
    # ------------------------------------------------------------------

    def _step(
        self,
        program: Program,
        inst: Instruction,
        index: int,
        regs: RegisterFile,
        memory: Dict[int, int],
        fp_memory: Dict[int, float],
    ) -> Tuple[TraceRecord, int]:
        pc = program.pc_of(index)
        mnemonic = inst.mnemonic
        handler = _HANDLERS.get(mnemonic)
        if handler is None:
            raise SimulationError(f"no semantics for mnemonic {mnemonic}")
        return handler(self, program, inst, index, pc, regs, memory, fp_memory)

    # -- integer arithmetic -------------------------------------------

    def _int_binop(self, program, inst, index, pc, regs, memory, fp_memory):
        a = regs.read_int_signed(inst.rs1)
        if inst.rs2 is not None:
            b = regs.read_int_signed(inst.rs2)
            srcs: Tuple[int, ...] = (int_reg(inst.rs1), int_reg(inst.rs2))
        else:
            b = int(inst.imm or 0)
            srcs = (int_reg(inst.rs1),)
        mnemonic = inst.mnemonic
        if mnemonic is Mnemonic.ADD:
            result = a + b
        elif mnemonic in (Mnemonic.SUB, Mnemonic.SUBCC):
            result = a - b
        elif mnemonic is Mnemonic.AND:
            result = a & b
        elif mnemonic is Mnemonic.OR:
            result = a | b
        elif mnemonic is Mnemonic.XOR:
            result = a ^ b
        elif mnemonic is Mnemonic.SLL:
            result = a << (b & 63)
        elif mnemonic is Mnemonic.SRL:
            result = (a & _MASK64) >> (b & 63)
        elif mnemonic is Mnemonic.SRA:
            result = a >> (b & 63)  # Python >> is arithmetic on signed ints
        elif mnemonic is Mnemonic.ANDN:
            result = a & ~b
        elif mnemonic is Mnemonic.ORN:
            result = a | ~b
        elif mnemonic is Mnemonic.XNOR:
            result = ~(a ^ b)
        elif mnemonic is Mnemonic.MULX:
            result = a * b
        elif mnemonic is Mnemonic.SDIVX:
            if b == 0:
                raise SimulationError(f"division by zero at pc {pc:#x}")
            result = int(a / b)  # truncate toward zero, as SDIVX does
        else:  # pragma: no cover - guarded by dispatch table
            raise SimulationError(f"unhandled integer op {mnemonic}")

        signed = result if -(1 << 63) <= result < (1 << 63) else _wrap_signed(result)
        regs.write_int(inst.rd, result)
        dest = int_reg(inst.rd) if inst.rd != G0 else NO_REG
        if mnemonic is Mnemonic.SUBCC:
            regs.set_icc(signed)
            if inst.rd == G0:
                dest = ICC
        record = TraceRecord(
            pc, inst.op_class, dest=dest, srcs=srcs, privileged=inst.privileged
        )
        return record, index + 1

    def _mov(self, program, inst, index, pc, regs, memory, fp_memory):
        value = int(inst.imm or 0)
        if inst.mnemonic is Mnemonic.SETHI:
            value = (value << 10) & _MASK64
        regs.write_int(inst.rd, value & _MASK64)
        dest = int_reg(inst.rd) if inst.rd != G0 else NO_REG
        record = TraceRecord(pc, inst.op_class, dest=dest, srcs=(), privileged=inst.privileged)
        return record, index + 1

    # -- floating point ------------------------------------------------

    def _fp_binop(self, program, inst, index, pc, regs, memory, fp_memory):
        a = regs.read_fp(inst.rs1)
        b = regs.read_fp(inst.rs2 if inst.rs2 is not None else inst.rs1)
        mnemonic = inst.mnemonic
        srcs: Tuple[int, ...] = (fp_reg(inst.rs1),)
        if inst.rs2 is not None:
            srcs = (fp_reg(inst.rs1), fp_reg(inst.rs2))
        if mnemonic is Mnemonic.FADD:
            result = a + b
        elif mnemonic is Mnemonic.FMUL:
            result = a * b
        elif mnemonic is Mnemonic.FDIV:
            if b == 0.0:
                result = float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
            else:
                result = a / b
        elif mnemonic is Mnemonic.FMADD:
            result = a * b + regs.read_fp(inst.rd)
            srcs = srcs + (fp_reg(inst.rd),)
        elif mnemonic is Mnemonic.FCMP:
            regs.set_fcc(a, b)
            record = TraceRecord(
                pc, inst.op_class, dest=FCC, srcs=srcs, privileged=inst.privileged
            )
            return record, index + 1
        else:  # pragma: no cover
            raise SimulationError(f"unhandled fp op {mnemonic}")
        regs.write_fp(inst.rd, result)
        record = TraceRecord(
            pc, inst.op_class, dest=fp_reg(inst.rd), srcs=srcs, privileged=inst.privileged
        )
        return record, index + 1

    # -- memory ----------------------------------------------------------

    def _effective_address(self, inst: Instruction, regs: RegisterFile) -> int:
        base = regs.read_int(inst.rs1)
        displacement = int(inst.imm or 0)
        if inst.rs2 is not None:
            displacement += regs.read_int_signed(inst.rs2)
        return (base + displacement) & _MASK64

    def _load(self, program, inst, index, pc, regs, memory, fp_memory):
        ea = self._effective_address(inst, regs)
        aligned = ea & ~7
        srcs: Tuple[int, ...] = (int_reg(inst.rs1),)
        if inst.rs2 is not None:
            srcs = (int_reg(inst.rs1), int_reg(inst.rs2))
        if inst.mnemonic is Mnemonic.LDX:
            regs.write_int(inst.rd, memory.get(aligned, 0))
            dest = int_reg(inst.rd) if inst.rd != G0 else NO_REG
        else:  # LDF
            regs.write_fp(inst.rd, fp_memory.get(aligned, 0.0))
            dest = fp_reg(inst.rd)
        record = TraceRecord(
            pc,
            inst.op_class,
            dest=dest,
            srcs=srcs,
            ea=ea,
            size=8,
            privileged=inst.privileged,
        )
        return record, index + 1

    def _store(self, program, inst, index, pc, regs, memory, fp_memory):
        ea = self._effective_address(inst, regs)
        aligned = ea & ~7
        addr_srcs: Tuple[int, ...] = (int_reg(inst.rs1),)
        if inst.rs2 is not None:
            addr_srcs = (int_reg(inst.rs1), int_reg(inst.rs2))
        if inst.mnemonic is Mnemonic.STX:
            memory[aligned] = regs.read_int(inst.rd)
            srcs = addr_srcs + (int_reg(inst.rd),)
        else:  # STF
            fp_memory[aligned] = regs.read_fp(inst.rd)
            srcs = addr_srcs + (fp_reg(inst.rd),)
        record = TraceRecord(
            pc,
            inst.op_class,
            dest=NO_REG,
            srcs=srcs,
            ea=ea,
            size=8,
            privileged=inst.privileged,
        )
        return record, index + 1

    # -- control transfer ------------------------------------------------

    def _branch_taken(self, inst: Instruction, regs: RegisterFile) -> bool:
        mnemonic = inst.mnemonic
        if mnemonic is Mnemonic.BA:
            return True
        if mnemonic is Mnemonic.BE:
            return regs.icc_zero
        if mnemonic is Mnemonic.BNE:
            return not regs.icc_zero
        if mnemonic is Mnemonic.BG:
            return not regs.icc_zero and not regs.icc_negative
        if mnemonic is Mnemonic.BL:
            return regs.icc_negative
        if mnemonic is Mnemonic.BGE:
            return not regs.icc_negative
        if mnemonic is Mnemonic.BLE:
            return regs.icc_zero or regs.icc_negative
        if mnemonic is Mnemonic.FBL:
            return regs.fcc_less
        if mnemonic is Mnemonic.FBE:
            return regs.fcc_equal
        raise SimulationError(f"not a branch: {mnemonic}")  # pragma: no cover

    def _branch(self, program, inst, index, pc, regs, memory, fp_memory):
        if inst.target_index is None:
            raise SimulationError(f"unresolved branch target at pc {pc:#x}")
        taken = self._branch_taken(inst, regs)
        target_pc = program.pc_of(inst.target_index)
        if inst.mnemonic in (Mnemonic.FBL, Mnemonic.FBE):
            srcs: Tuple[int, ...] = (FCC,)
        elif inst.mnemonic is Mnemonic.BA:
            srcs = ()
        else:
            srcs = (ICC,)
        record = TraceRecord(
            pc,
            inst.op_class,
            srcs=srcs,
            taken=taken,
            target=target_pc,
            privileged=inst.privileged,
        )
        next_index = inst.target_index if taken else index + 1
        return record, next_index

    def _call(self, program, inst, index, pc, regs, memory, fp_memory):
        if inst.target_index is None:
            raise SimulationError(f"unresolved call target at pc {pc:#x}")
        regs.write_int(15, pc)
        target_pc = program.pc_of(inst.target_index)
        record = TraceRecord(
            pc,
            inst.op_class,
            dest=int_reg(15),
            taken=True,
            target=target_pc,
            privileged=inst.privileged,
        )
        return record, inst.target_index

    def _ret(self, program, inst, index, pc, regs, memory, fp_memory):
        return_pc = (regs.read_int(15) + RETURN_OFFSET) & _MASK64
        next_index = program.index_of_pc(return_pc)
        record = TraceRecord(
            pc,
            inst.op_class,
            srcs=(int_reg(15),),
            taken=True,
            target=return_pc,
            privileged=inst.privileged,
        )
        return record, next_index

    # -- other -----------------------------------------------------------

    def _nop(self, program, inst, index, pc, regs, memory, fp_memory):
        record = TraceRecord(pc, inst.op_class, privileged=inst.privileged)
        return record, index + 1


def _wrap_signed(value: int) -> int:
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


_HANDLERS = {
    Mnemonic.ADD: FunctionalExecutor._int_binop,
    Mnemonic.SUB: FunctionalExecutor._int_binop,
    Mnemonic.SUBCC: FunctionalExecutor._int_binop,
    Mnemonic.AND: FunctionalExecutor._int_binop,
    Mnemonic.OR: FunctionalExecutor._int_binop,
    Mnemonic.XOR: FunctionalExecutor._int_binop,
    Mnemonic.SLL: FunctionalExecutor._int_binop,
    Mnemonic.SRL: FunctionalExecutor._int_binop,
    Mnemonic.SRA: FunctionalExecutor._int_binop,
    Mnemonic.ANDN: FunctionalExecutor._int_binop,
    Mnemonic.ORN: FunctionalExecutor._int_binop,
    Mnemonic.XNOR: FunctionalExecutor._int_binop,
    Mnemonic.MULX: FunctionalExecutor._int_binop,
    Mnemonic.SDIVX: FunctionalExecutor._int_binop,
    Mnemonic.MOV: FunctionalExecutor._mov,
    Mnemonic.SETHI: FunctionalExecutor._mov,
    Mnemonic.FADD: FunctionalExecutor._fp_binop,
    Mnemonic.FMUL: FunctionalExecutor._fp_binop,
    Mnemonic.FMADD: FunctionalExecutor._fp_binop,
    Mnemonic.FDIV: FunctionalExecutor._fp_binop,
    Mnemonic.FCMP: FunctionalExecutor._fp_binop,
    Mnemonic.LDX: FunctionalExecutor._load,
    Mnemonic.LDF: FunctionalExecutor._load,
    Mnemonic.STX: FunctionalExecutor._store,
    Mnemonic.STF: FunctionalExecutor._store,
    Mnemonic.BA: FunctionalExecutor._branch,
    Mnemonic.BE: FunctionalExecutor._branch,
    Mnemonic.BNE: FunctionalExecutor._branch,
    Mnemonic.BG: FunctionalExecutor._branch,
    Mnemonic.BL: FunctionalExecutor._branch,
    Mnemonic.BGE: FunctionalExecutor._branch,
    Mnemonic.BLE: FunctionalExecutor._branch,
    Mnemonic.FBL: FunctionalExecutor._branch,
    Mnemonic.FBE: FunctionalExecutor._branch,
    Mnemonic.CALL: FunctionalExecutor._call,
    Mnemonic.RET: FunctionalExecutor._ret,
    Mnemonic.NOP: FunctionalExecutor._nop,
    Mnemonic.SAVE: FunctionalExecutor._nop,
    Mnemonic.RESTORE: FunctionalExecutor._nop,
    Mnemonic.MEMBAR: FunctionalExecutor._nop,
}
