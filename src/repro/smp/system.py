"""The N-processor system model.

Builds one :class:`~repro.core.ProcessorCore` + private L1/L2 hierarchy
per processor, joins the L2s through a :class:`CoherenceDomain` over a
single shared system bus and memory controller, and steps all cores in
global cycle order so bus contention and cache-to-cache transfers are
timed against each other — the paper's TPC-C (16P) configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.core.pipeline import ProcessorCore
from repro.memory.bus import Bus
from repro.memory.dram import MemoryController
from repro.model.config import MachineConfig
from repro.model.simulator import (
    build_hierarchy,
    core_class,
    prewarm_regions,
    warm_structures,
)
from repro.model.stats import SimResult
from repro.smp.coherence import CoherenceDomain
from repro.trace.stream import Trace

_DEADLOCK_LIMIT = 100_000


@dataclass
class SmpResult:
    """Results of one multiprocessor run."""

    config_name: str
    workload_name: str
    cpu_count: int
    cycles: int
    total_instructions: int
    per_cpu: List[SimResult]
    coherence: Dict[str, int] = field(default_factory=dict)
    system_bus_utilization: float = 0.0
    sim_speed: float = 0.0

    @property
    def ipc(self) -> float:
        """System IPC: total committed instructions over global cycles."""
        if self.cycles == 0:
            return 0.0
        return self.total_instructions / self.cycles

    @property
    def per_cpu_ipc(self) -> float:
        """Average per-processor IPC."""
        return self.ipc / max(self.cpu_count, 1)

    def l2_miss_ratio(self) -> float:
        """Aggregate demand L2 miss ratio across all chips."""
        misses = sum(result.l2.get("demand_misses", 0) for result in self.per_cpu)
        accesses = sum(result.l2.get("demand_accesses", 0) for result in self.per_cpu)
        if accesses == 0:
            return 0.0
        return misses / accesses

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "workload": self.workload_name,
            "cpus": self.cpu_count,
            "cycles": self.cycles,
            "instructions": self.total_instructions,
            "system_ipc": round(self.ipc, 4),
            "per_cpu_ipc": round(self.per_cpu_ipc, 4),
            "l2_miss_ratio": round(self.l2_miss_ratio(), 5),
            "system_bus_utilization": round(self.system_bus_utilization, 4),
            "coherence": self.coherence,
        }

    def to_dict(self) -> Dict[str, object]:
        """Full lossless serialisation (inverse of :meth:`from_dict`)."""
        payload = {
            f.name: getattr(self, f.name)
            for f in dataclass_fields(self)
            if f.name != "per_cpu"
        }
        payload["per_cpu"] = [result.to_dict() for result in self.per_cpu]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SmpResult":
        """Rebuild a result serialised by :meth:`to_dict`."""
        data = dict(payload)
        per_cpu = [SimResult.from_dict(item) for item in data.pop("per_cpu")]
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SmpResult fields: {sorted(unknown)}")
        return cls(per_cpu=per_cpu, **data)


class SmpSystem:
    """An N-way SMP built from one MachineConfig and N per-CPU traces."""

    def __init__(
        self,
        config: MachineConfig,
        traces: List[Trace],
        engine: Optional[str] = None,
    ) -> None:
        if not traces:
            raise ConfigError("need at least one trace")
        self.config = config
        self.traces = traces
        self.cpu_count = len(traces)
        core_cls = core_class(config, engine)

        self.system_bus = Bus(config.system_bus)
        self.memory = MemoryController(config.memory, line_bytes=config.l2.line_bytes)
        self.domain = CoherenceDomain(
            self.system_bus, self.memory, line_bytes=config.l2.line_bytes
        )

        self.hierarchies = []
        self.cores: List[ProcessorCore] = []
        for cpu, trace in enumerate(traces):
            hierarchy = build_hierarchy(
                config,
                cpu=cpu,
                shared_system_bus=self.system_bus,
                shared_memory=self.memory,
            )
            self.domain.attach(hierarchy)
            core = core_cls(
                trace, hierarchy, config.core, config.frontend, config.bht
            )
            self.hierarchies.append(hierarchy)
            self.cores.append(core)

    def warm_up(
        self,
        warm_traces: List[Trace],
        regions_per_cpu: Optional[List[dict]] = None,
    ) -> None:
        """Functionally warm each processor's private state."""
        if len(warm_traces) != self.cpu_count:
            raise ConfigError("one warm trace per cpu required")
        for index, (core, hierarchy, trace) in enumerate(
            zip(self.cores, self.hierarchies, warm_traces)
        ):
            if regions_per_cpu is not None:
                prewarm_regions(hierarchy, regions_per_cpu[index])
            warm_structures(hierarchy, core.fetch.bht, trace)

    def run(self, max_cycles: Optional[int] = None) -> SmpResult:
        """Step all processors in global cycle order until all finish."""
        cycle = 0
        idle_streak = 0
        started = time.perf_counter()
        while True:
            unfinished = [core for core in self.cores if not core.finished]
            if not unfinished:
                break
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationError(f"SMP exceeded max_cycles={max_cycles}")
            activity = False
            for core in unfinished:
                activity |= core.step_cycle(cycle)
            if activity:
                idle_streak = 0
                cycle += 1
            else:
                idle_streak += 1
                if idle_streak > _DEADLOCK_LIMIT:
                    raise SimulationError(f"SMP deadlock at cycle {cycle}")
                cycle = max(
                    cycle + 1,
                    min(core._next_cycle(cycle) for core in unfinished),
                )
        elapsed = max(time.perf_counter() - started, 1e-9)

        per_cpu = []
        total_instructions = 0
        for core, hierarchy, trace in zip(self.cores, self.hierarchies, self.traces):
            stats = core.finalize_stats(cycle)
            total_instructions += stats.instructions
            per_cpu.append(
                SimResult(
                    config_name=self.config.name,
                    trace_name=trace.name,
                    core=stats,
                    l1i=hierarchy.l1i.stats.as_dict(),
                    l1d=hierarchy.l1d.stats.as_dict(),
                    l2=hierarchy.l2.stats.as_dict(),
                    itlb_miss_ratio=hierarchy.itlb.stats.miss_ratio,
                    dtlb_miss_ratio=hierarchy.dtlb.stats.miss_ratio,
                    bht_misprediction_ratio=core.fetch.bht.stats.misprediction_ratio,
                )
            )

        workload = self.traces[0].name.rsplit("-cpu", 1)[0]
        return SmpResult(
            config_name=self.config.name,
            workload_name=workload,
            cpu_count=self.cpu_count,
            cycles=cycle,
            total_instructions=total_instructions,
            per_cpu=per_cpu,
            coherence=self.domain.stats.as_dict(),
            system_bus_utilization=self.system_bus.utilization(cycle),
            sim_speed=total_instructions / elapsed,
        )


def run_smp(
    config: MachineConfig,
    traces: List[Trace],
    warmup_fraction: float = 0.1,
    regions_per_cpu: Optional[List[dict]] = None,
    engine: Optional[str] = None,
) -> SmpResult:
    """Convenience: split warmup windows off each trace and run."""
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    split = int(len(traces[0]) * warmup_fraction)
    warm_parts = [trace.head(split) for trace in traces]
    timed_parts = [trace[split:] for trace in traces]
    system = SmpSystem(config, timed_parts, engine=engine)
    if split or regions_per_cpu:
        system.warm_up(warm_parts, regions_per_cpu)
    return system.run()
