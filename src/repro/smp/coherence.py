"""Bus-snooping coherence between per-chip L2 caches.

Implements the MOESI-style protocol the SPARC64 V system uses between
chips.  All processors' L2s snoop a shared system bus:

- a read miss that another chip holds MODIFIED/OWNED is served
  cache-to-cache (a "move-out" of the dirty line, §3.3); the owner
  downgrades to OWNED (data stays dirty, memory is not written);
- a read miss with only clean remote copies is served from memory and
  installs SHARED;
- a write miss invalidates all remote copies and installs MODIFIED;
- a write to a locally SHARED line issues an upgrade (invalidate-only
  bus transaction, no data).

Timing: every transaction arbitrates for the shared system bus; a
cache-to-cache transfer costs the bus transfer plus the remote chip's L2
access, which is why it is still far cheaper than DRAM — the quantity
the two-level-hierarchy argument of §3.3 turns on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import SimulationError
from repro.memory.bus import Bus
from repro.memory.cache import LineState
from repro.memory.dram import MemoryController
from repro.memory.hierarchy import MemoryHierarchy, RemoteResult


@dataclass
class CoherenceStats:
    """Domain-wide coherence traffic counters."""

    read_misses: int = 0
    write_misses: int = 0
    upgrades: int = 0
    #: Lines served by another chip's L2 ("move-out" transfers).
    cache_to_cache: int = 0
    memory_fetches: int = 0
    invalidations_sent: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "upgrades": self.upgrades,
            "cache_to_cache": self.cache_to_cache,
            "memory_fetches": self.memory_fetches,
            "invalidations_sent": self.invalidations_sent,
        }


class CoherenceDomain:
    """The snooping interconnect joining every processor's L2."""

    #: L2 tag-pipe cycles for a remote chip to source a line.
    REMOTE_L2_ACCESS = 12

    def __init__(
        self,
        system_bus: Bus,
        memory: MemoryController,
        line_bytes: int = 64,
    ) -> None:
        self.system_bus = system_bus
        self.memory = memory
        self.line_bytes = line_bytes
        self._hierarchies: List[MemoryHierarchy] = []
        self.stats = CoherenceStats()

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Register one processor's hierarchy with the domain."""
        if hierarchy.cpu in {h.cpu for h in self._hierarchies}:
            raise SimulationError(f"duplicate cpu id {hierarchy.cpu}")
        self._hierarchies.append(hierarchy)
        hierarchy.coherence = self

    # ------------------------------------------------------------------
    # CoherenceProtocolHook interface (called from MemoryHierarchy).
    # ------------------------------------------------------------------

    def fetch_line(
        self, cycle: int, cpu: int, line_addr: int, is_write: bool
    ) -> RemoteResult:
        """Resolve an L2 miss: snoop every other chip, then memory."""
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1

        # Command broadcast: every chip snoops the address.
        request = self.system_bus.transfer(cycle, 8)

        owner: MemoryHierarchy = None  # type: ignore[assignment]
        sharers: List[MemoryHierarchy] = []
        for hierarchy in self._hierarchies:
            if hierarchy.cpu == cpu:
                continue
            state = hierarchy.snoop_probe(line_addr)
            if state is None:
                continue
            if state.is_dirty:
                owner = hierarchy
            sharers.append(hierarchy)

        if is_write:
            # Invalidate every remote copy.
            for hierarchy in sharers:
                hierarchy.snoop_downgrade(line_addr, LineState.INVALID)
                self.stats.invalidations_sent += 1
            if owner is not None:
                # Dirty data moves out of the owner to the writer.
                self.stats.cache_to_cache += 1
                data = self.system_bus.transfer(
                    request.done + self.REMOTE_L2_ACCESS, self.line_bytes
                )
                return RemoteResult(
                    ready_cycle=data.done, from_cache=True, state=LineState.MODIFIED
                )
            self.stats.memory_fetches += 1
            data_ready = self.memory.request(request.done, line_addr)
            data = self.system_bus.transfer(data_ready, self.line_bytes)
            return RemoteResult(
                ready_cycle=data.done, from_cache=False, state=LineState.MODIFIED
            )

        # Read miss.
        if owner is not None:
            # Move-out: the owner sources the line and keeps it OWNED.
            self.stats.cache_to_cache += 1
            owner.snoop_downgrade(line_addr, LineState.OWNED)
            data = self.system_bus.transfer(
                request.done + self.REMOTE_L2_ACCESS, self.line_bytes
            )
            return RemoteResult(
                ready_cycle=data.done, from_cache=True, state=LineState.SHARED
            )
        install = LineState.SHARED if sharers else LineState.EXCLUSIVE
        self.stats.memory_fetches += 1
        data_ready = self.memory.request(request.done, line_addr)
        data = self.system_bus.transfer(data_ready, self.line_bytes)
        return RemoteResult(ready_cycle=data.done, from_cache=False, state=install)

    def upgrade_line(self, cycle: int, cpu: int, line_addr: int) -> int:
        """Write to a locally SHARED line: invalidate remote copies."""
        self.stats.upgrades += 1
        request = self.system_bus.transfer(cycle, 8)
        for hierarchy in self._hierarchies:
            if hierarchy.cpu == cpu:
                continue
            if hierarchy.snoop_probe(line_addr) is not None:
                hierarchy.snoop_downgrade(line_addr, LineState.INVALID)
                self.stats.invalidations_sent += 1
        return request.done
