"""Symmetric-multiprocessor system model.

The paper's performance model "can be modeled for MP system performance
models" including "requests between L2 caches" (§2.1); the 16-processor
TPC-C runs of §4.3.4 are its headline system-level use.  This package
provides the coherence domain (bus-snooping MOESI between per-chip L2s,
with cache-to-cache "move-out" transfers of dirty lines) and the
:class:`SmpSystem` driver that steps N cores against a shared system bus
and memory.
"""

from repro.smp.coherence import CoherenceDomain
from repro.smp.system import SmpResult, SmpSystem

__all__ = ["CoherenceDomain", "SmpSystem", "SmpResult"]
