"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``table1`` — print the production machine configuration.
- ``run`` — simulate one workload on one configuration.
- ``figures`` — regenerate one or all of the paper's figures
  (``--jobs N`` fans independent runs over worker processes; results
  persist in ``.repro_cache/``).
- ``sweeps`` — run the supplemental parameter sweeps (same knobs).
- ``analyze`` — render analyses (e.g. CPI stacks) from cached results
  without re-simulating.
- ``cache`` — inspect or clear the persistent result cache.
- ``trace`` — generate a synthetic trace to a file.
- ``verify`` — run the Reverse-Tracer/logic-simulator cross-check.
- ``smp`` — run the TPC-C SMP study.
- ``submit`` — append (config, workload) jobs to a durable campaign
  queue (duplicates single-flight onto the same job).
- ``serve`` — drain a campaign queue through a lease-based worker pool
  into the result cache, surviving worker crashes and restarts.
- ``status`` — read-only view of a campaign queue's journal.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.model.config import ENGINE_CHOICES, MachineConfig, named_configs

#: Name -> factory registry, shared with the campaign service so a job
#: submitted by name resolves to the same configuration everywhere.
_CONFIGS = named_configs()


def _config_by_name(name: str) -> MachineConfig:
    try:
        return _CONFIGS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown config {name!r}; choose from: {', '.join(_CONFIGS)}"
        )


def _add_engine_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="core engine: reference (the readable cycle loop) or fast "
             "(bit-identical results, ~2x throughput); default: "
             "$REPRO_ENGINE, then the config's engine field",
    )


def _cmd_table1(args: argparse.Namespace) -> None:
    print(_config_by_name(args.config).table1())


def _sampling_plan(args: argparse.Namespace):
    """Build a :class:`SamplingPlan` from CLI flags, or ``None``."""
    period = getattr(args, "sample_period", None)
    length = getattr(args, "sample_length", None)
    if period is None and length is None:
        return None
    if period is None or length is None:
        raise SystemExit(
            "sampled simulation needs both --sample-period and --sample-length"
        )
    from repro.common.errors import TraceError
    from repro.trace.sampling import SamplingPlan

    try:
        return SamplingPlan(
            period=period,
            sample_length=length,
            warmup=getattr(args, "sample_warmup", 0) or 0,
        )
    except TraceError as exc:
        raise SystemExit(f"bad sampling plan: {exc}")


def _add_sampling_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "sampling",
        "SMARTS-style sampled simulation: one detailed measurement window "
        "every --sample-period instructions, fast-forwarding in between. "
        "Results carry 95%% confidence intervals. (SMP runs ignore these.)",
    )
    group.add_argument(
        "--sample-period", type=_positive_int, default=None, metavar="N",
        help="instructions between the starts of consecutive windows",
    )
    group.add_argument(
        "--sample-length", type=_positive_int, default=None, metavar="N",
        help="measured instructions per window",
    )
    group.add_argument(
        "--sample-warmup", "--warmup", type=int, default=0, metavar="N",
        dest="sample_warmup",
        help="functional-warming instructions before each window's "
             "detailed region (default 0; caches/BHT/TLBs also persist "
             "across windows)",
    )


def _cmd_run(args: argparse.Namespace) -> None:
    from repro.analysis.workloads import workload_by_name
    from repro.model.simulator import PerformanceModel

    workload = workload_by_name(args.workload, warm=args.warm, timed=args.timed)
    config = _config_by_name(args.config)
    plan = _sampling_plan(args)

    tracer = None
    if args.trace_events:
        if plan is not None:
            raise SystemExit(
                "--trace-events captures a contiguous detailed run and is "
                "not supported with sampled simulation"
            )
        from repro.observe import PipelineTracer

        tracer = PipelineTracer(capacity=args.trace_ring)

    if plan is not None:
        print(
            f"sampling {workload.name} ({len(workload.trace()):,} instructions, "
            f"plan {plan.key()}) on {config.name} ..."
        )
        result = PerformanceModel(config, engine=args.engine).run_sampled(
            workload.trace(), plan, regions=workload.regions()
        )
        print(result.summary())
        print()
        print("estimates (95% confidence intervals):")
        print(result.estimates_report())
        stack = result.cpi_stack_report()
        if stack:
            print()
            print("CPI stack (cycle attribution, measured windows):")
            print(stack)
        return

    print(f"simulating {workload.name} ({args.timed:,} timed instructions) "
          f"on {config.name} ...")
    result = PerformanceModel(config, engine=args.engine).run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
        tracer=tracer,
    )
    print(result.summary())
    stack = result.cpi_stack_report()
    if stack:
        print()
        print("CPI stack (cycle attribution):")
        print(stack)

    if tracer is not None:
        if args.trace_format == "chrome":
            written = tracer.write_chrome_trace(args.trace_events)
        else:
            written = tracer.write_jsonl(args.trace_events)
        suffix = (
            f" (ring kept last {len(tracer)} of {tracer.emitted:,} emitted)"
            if tracer.dropped
            else ""
        )
        print()
        print(
            f"wrote {written:,} {args.trace_format} events to "
            f"{args.trace_events}{suffix}"
        )


def _cmd_profile(args: argparse.Namespace) -> None:
    """Hot-spot hunt: cProfile the timed core loop, print the top functions.

    Warm-up (region pre-warm + trace-prefix warming) runs outside the
    profiler, exactly as it runs outside the simulation-speed timer, so
    the report shows the loop that ``sim_speed`` measures.
    """
    import cProfile
    import io
    import pstats
    import time

    from repro.analysis.workloads import workload_by_name
    from repro.model.simulator import (
        build_hierarchy,
        core_class,
        prewarm_regions,
        resolve_engine,
        warm_structures,
    )

    workload = workload_by_name(args.workload, warm=args.warm, timed=args.timed)
    config = _config_by_name(args.config)
    engine = resolve_engine(config, args.engine)
    trace = workload.trace()
    regions = workload.regions()
    split = int(len(trace) * workload.warmup_fraction)
    warm_part = trace.head(split) if split else None
    timed_part = trace[split:] if split else trace

    hierarchy = build_hierarchy(config)
    core = core_class(config, args.engine)(
        timed_part, hierarchy, config.core, config.frontend, config.bht
    )
    if regions:
        prewarm_regions(hierarchy, regions)
    if warm_part is not None:
        warm_structures(hierarchy, core.fetch.bht, warm_part)

    print(
        f"profiling {workload.name} ({len(timed_part):,} timed instructions) "
        f"on {config.name}, engine {engine} ..."
    )
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    stats = core.run()
    profiler.disable()
    elapsed = max(time.perf_counter() - started, 1e-9)

    stream = io.StringIO()
    report = pstats.Stats(profiler, stream=stream)
    report.sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue().rstrip())
    print(
        f"\n{stats.instructions / elapsed:,.0f} trace-instructions/s "
        f"under the profiler (expect ~3x faster without it)"
    )
    if args.out:
        report.dump_stats(args.out)
        print(f"wrote {args.out} (inspect with `python -m pstats {args.out}`)")


def _make_runner(args: argparse.Namespace, campaign: Optional[str] = None):
    """Build the runner the figures/sweeps commands share."""
    from repro.analysis import ParallelRunner
    from repro.analysis.campaign import CampaignManifest
    from repro.analysis.policy import RunPolicy
    from repro.common import faults

    if getattr(args, "inject_faults", None):
        faults.install_spec(args.inject_faults)

    policy = RunPolicy(
        timeout=args.timeout,
        retries=args.retries,
        on_failure=args.on_failure,
    )

    manifest = None
    if getattr(args, "resume", False):
        if args.no_cache:
            raise SystemExit(
                "--resume needs the persistent result cache; "
                "drop --no-cache or drop --resume"
            )
        from repro.analysis import ResultCache

        directory = ResultCache(args.cache_dir).directory
        manifest = CampaignManifest(directory / f"campaign-{campaign or 'run'}.jsonl")
        if not args.quiet:
            print(manifest.summary())

    return ParallelRunner(
        jobs=args.jobs,
        verbose=not args.quiet,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        policy=policy,
        manifest=manifest,
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for independent runs (default 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro_cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-run progress lines",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock limit for worker runs; a hung worker "
             "pool is killed and respawned (default: no limit)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="worker-side retries per failed or timed-out run, with "
             "exponential jittered backoff (default 1)",
    )
    parser.add_argument(
        "--on-failure", choices=("retry", "fail", "skip"), default="retry",
        help="after retries are spent: 'retry' reruns once in-process, "
             "'fail' aborts the campaign, 'skip' records the run as "
             "missing and marks reports partial (default retry)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="checkpoint completed runs in a campaign manifest under the "
             "cache dir and resume an interrupted campaign from it",
    )
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection for testing, e.g. "
             "'worker-hang,times=1,hang=30;cache-corrupt,times=1' "
             "(see repro.common.faults)",
    )


def _cmd_figures(args: argparse.Namespace) -> None:
    from repro.analysis import (
        fig_cpistack,
        fig07_characteristics,
        fig08_issue_width,
        fig09_10_bht,
        fig11_12_13_l1,
        fig14_15_l2,
        fig16_17_prefetch,
        fig18_reservation,
        standard_workloads,
    )

    workloads = standard_workloads(warm=args.warm, timed=args.timed)
    plan = _sampling_plan(args)
    if plan is not None:
        for workload in workloads:
            workload.sampling = plan
    runner = _make_runner(args, campaign=f"figures-{args.figure}")
    figure_map = {
        "7": lambda: fig07_characteristics(workloads, runner=runner),
        "8": lambda: fig08_issue_width(workloads, runner),
        "9": lambda: fig09_10_bht(workloads, runner),
        "11": lambda: fig11_12_13_l1(workloads, runner),
        "14": lambda: fig14_15_l2(
            workloads,
            runner,
            smp_cpus=args.smp_cpus,
            # SMP runs use shorter per-CPU traces to stay tractable.
            smp_workload_override=__import__(
                "repro.analysis.workloads", fromlist=["smp_workload"]
            ).smp_workload(
                args.smp_cpus,
                warm=min(args.warm, 20_000),
                timed=min(args.timed, 6_000),
            ),
        ),
        "16": lambda: fig16_17_prefetch(workloads, runner),
        "18": lambda: fig18_reservation(workloads, runner),
        "cpistack": lambda: fig_cpistack(workloads, runner=runner),
    }
    wanted = figure_map.keys() if args.figure == "all" else [args.figure]
    for key in wanted:
        if key not in figure_map:
            raise SystemExit(
                f"unknown figure {key!r}; choose from: "
                f"{', '.join(figure_map)} or 'all'"
            )
        result = figure_map[key]()
        print()
        print(result.format_table())
    if not args.quiet:
        print()
        print(f"runner: {runner.summary()}")


def _cmd_sweeps(args: argparse.Namespace) -> None:
    from repro.analysis import (
        bht_size_sweep,
        l2_size_sweep,
        smp_scaling_sweep,
        window_size_sweep,
        workload_by_name,
    )

    runner = _make_runner(args, campaign=f"sweeps-{args.sweep}")
    plan = _sampling_plan(args)

    def sized(name):
        workload = workload_by_name(name, warm=args.warm, timed=args.timed)
        workload.sampling = plan
        return workload

    sweep_map = {
        "l2": lambda: l2_size_sweep(runner=runner, workload=sized("TPC-C")),
        "window": lambda: window_size_sweep(
            runner=runner, workload=sized("SPECint95")
        ),
        "bht": lambda: bht_size_sweep(runner=runner, workload=sized("TPC-C")),
        "smp": lambda: smp_scaling_sweep(
            runner=runner,
            cpu_counts=tuple(args.cpus),
            warm=min(args.warm, 20_000),
            timed=min(args.timed, 6_000),
        ),
    }
    wanted = sweep_map.keys() if args.sweep == "all" else [args.sweep]
    for key in wanted:
        if key not in sweep_map:
            raise SystemExit(
                f"unknown sweep {key!r}; choose from: "
                f"{', '.join(sweep_map)} or 'all'"
            )
        print()
        print(sweep_map[key]().format_table())
    if not args.quiet:
        print()
        print(f"runner: {runner.summary()}")


def _cmd_cache(args: argparse.Namespace) -> None:
    from repro.analysis import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return
    print(f"directory    {cache.directory}")
    print(f"entries      {cache.entries()}")
    print(f"size         {cache.size_bytes():,} bytes")
    print(f"code version {cache.code_hash}")


def _cmd_analyze(args: argparse.Namespace) -> None:
    """Render analyses from cached results without re-simulating."""
    from repro.analysis import ResultCache
    from repro.model.stats import SimResult
    from repro.observe import render_stack_table

    if args.what != "cpistack":  # future-proofing; argparse already limits
        raise SystemExit(f"unknown analysis {args.what!r}")

    cache = ResultCache(args.cache_dir)
    stacks = {}
    for meta, payload in cache.scan():
        try:
            result = SimResult.from_dict(payload)
        except (ValueError, TypeError, KeyError):
            continue  # an SMP or foreign payload; only UP runs render here
        if not result.core.cpi_stack:
            continue
        workload = meta.get("workload", result.trace_name)
        config = meta.get("config", result.config_name)
        if args.workload and workload != args.workload:
            continue
        if args.config and config != args.config:
            continue
        stacks[f"{workload}@{config}"] = result.core.cpi_stack
    if not stacks:
        raise SystemExit(
            f"no cached CPI stacks under {cache.directory} "
            "(populate with 'repro figures' or 'repro run' via the runner, "
            "or relax --workload/--config filters)"
        )
    print(f"{len(stacks)} cached run(s) from {cache.directory}:")
    print()
    print(render_stack_table(stacks, fig7=args.fig7))


def _cmd_trace(args: argparse.Namespace) -> None:
    from repro.trace.io import write_trace
    from repro.trace.synth import TraceGenerator, standard_profiles

    profiles = standard_profiles()
    if args.workload not in profiles:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from: "
            f"{', '.join(profiles)}"
        )
    generator = TraceGenerator(profiles[args.workload], seed=args.seed)
    trace = generator.generate(args.length, name=args.workload)
    write_trace(trace, args.output)
    stats = trace.stats()
    print(f"wrote {len(trace):,} records to {args.output}")
    print(
        f"mix: loads {stats.load_fraction:.1%}, stores {stats.store_fraction:.1%},"
        f" branches {stats.branch_fraction:.1%}, kernel {stats.privileged_fraction:.1%}"
    )


def _cmd_verify(args: argparse.Namespace) -> None:
    from repro.trace.synth import generate_trace, standard_profiles
    from repro.verify import ReverseTracer, cross_check

    trace = generate_trace(
        standard_profiles()[args.workload], args.length, seed=args.seed
    )
    program, fidelity = ReverseTracer().generate(trace)
    print(f"test program: {len(program):,} static instructions")
    print(f"fidelity: {fidelity.as_dict()}")
    result = cross_check(program, max_steps=4 * args.length)
    print(
        f"cross-check OK: both paths report {result.cycles:,} cycles for "
        f"{result.instructions:,} instructions"
    )


def _cmd_smp(args: argparse.Namespace) -> None:
    from repro.smp.system import run_smp
    from repro.trace.synth import build_smp_generators, standard_profiles

    generators = build_smp_generators(
        standard_profiles()["TPC-C"], args.cpus, seed=args.seed
    )
    total = args.warm + args.timed
    traces = [generator.generate(total) for generator in generators]
    regions = [generator.memory_regions() for generator in generators]
    print(f"simulating TPC-C ({args.cpus}P) ...")
    result = run_smp(
        _config_by_name(args.config),
        traces,
        warmup_fraction=args.warm / total,
        regions_per_cpu=regions,
        engine=args.engine,
    )
    for key, value in result.as_dict().items():
        print(f"{key:24s} {value}")


def _cmd_submit(args: argparse.Namespace) -> None:
    """Append jobs to a durable campaign queue (no simulation here)."""
    from repro.analysis.cache import ResultCache
    from repro.common.errors import ConfigError, QueueFull
    from repro.service import JobQueue, make_spec, spec_key, spec_label

    cache = ResultCache(args.cache_dir)  # key derivation only; no I/O
    with JobQueue(args.queue, capacity=args.capacity) as queue:
        for workload in args.workloads:
            for config in args.config:
                try:
                    spec = make_spec(
                        workload,
                        config=config,
                        warm=args.warm,
                        timed=args.timed,
                        seed=args.seed,
                        cpus=args.cpus,
                    )
                except ConfigError as exc:
                    raise SystemExit(str(exc))
                key = spec_key(spec, cache)
                for _ in range(args.repeat):
                    try:
                        job = queue.submit(spec["kind"], spec, spec_label(spec), key)
                    except QueueFull as exc:
                        raise SystemExit(f"submission shed: {exc}")
                note = (
                    f" ({job.submissions} submissions, single-flighted)"
                    if job.submissions > 1
                    else ""
                )
                print(f"queued {spec_label(spec)} -> {key}{note}")
        print(queue.summary())


def _cmd_serve(args: argparse.Namespace) -> None:
    """Drain a campaign queue through the lease-based worker pool."""
    from repro.analysis.policy import RunPolicy
    from repro.common import faults
    from repro.common.errors import ExperimentError
    from repro.service import CampaignService

    if args.inject_faults:
        faults.install_spec(args.inject_faults)
    policy = RunPolicy(
        timeout=args.timeout,
        retries=args.retries,
        on_failure=args.on_failure,
    )
    service = CampaignService(
        args.queue,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        lease_seconds=args.lease,
        capacity=args.capacity,
        policy=policy,
        verbose=not args.quiet,
    )
    try:
        try:
            service.run(follow_idle=args.max_idle)
        except ExperimentError as exc:
            print(f"campaign aborted: {exc}", file=sys.stderr)
            raise SystemExit(1)
        print(service.summary())
        dead = service.queue.counts()["dead"]
        if dead:
            print(f"{dead} job(s) exhausted their retry budget", file=sys.stderr)
            raise SystemExit(1)
    finally:
        service.close()


def _cmd_status(args: argparse.Namespace) -> None:
    """Read-only replay of a campaign queue's journal."""
    from pathlib import Path

    from repro.analysis.cache import ResultCache
    from repro.service import JobQueue

    if not Path(args.queue).exists():
        raise SystemExit(f"no queue journal at {args.queue}")
    queue = JobQueue(args.queue)
    print(queue.summary())
    cache = ResultCache(args.cache_dir)
    for job in queue.jobs.values():
        stored = "stored" if cache.load(job.key) is not None else "no result"
        extra = f", attempts {job.attempts}" if job.attempts else ""
        extra += f", submissions {job.submissions}" if job.submissions > 1 else ""
        extra += f" [{job.error}]" if job.error else ""
        print(f"  {job.state:8s} {job.label}  ({stored}{extra})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SPARC64 V performance model (HPCA 2003)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="print the machine configuration")
    p_table.add_argument("--config", default="base", choices=_CONFIGS)
    p_table.set_defaults(func=_cmd_table1)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload", help="e.g. SPECint95, TPC-C")
    p_run.add_argument("--config", default="base", choices=_CONFIGS)
    p_run.add_argument("--warm", type=int, default=100_000)
    p_run.add_argument("--timed", type=int, default=25_000)
    p_run.add_argument(
        "--trace-events", default=None, metavar="PATH",
        help="capture per-cycle pipeline events and write them to PATH",
    )
    p_run.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
        help="event-trace format: jsonl (grep-friendly) or chrome "
             "(load in about:tracing / Perfetto)",
    )
    p_run.add_argument(
        "--trace-ring", type=_positive_int, default=None, metavar="N",
        help="ring-buffer mode: keep only the last N events "
             "(default: keep everything)",
    )
    _add_sampling_options(p_run)
    _add_engine_option(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_profile = sub.add_parser(
        "profile", help="cProfile a short run and print the hot spots"
    )
    p_profile.add_argument("workload", nargs="?", default="TPC-C",
                           help="e.g. SPECint95, TPC-C (default TPC-C)")
    p_profile.add_argument("--config", default="base", choices=_CONFIGS)
    p_profile.add_argument("--warm", type=int, default=30_000)
    p_profile.add_argument("--timed", type=int, default=20_000)
    p_profile.add_argument("--top", type=_positive_int, default=25,
                           help="how many functions to print (default 25)")
    p_profile.add_argument("--sort", choices=("cumulative", "tottime", "calls"),
                           default="cumulative",
                           help="pstats sort key (default cumulative)")
    p_profile.add_argument("--out", default=None, metavar="PATH",
                           help="also dump raw pstats data to PATH")
    _add_engine_option(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("figure", nargs="?", default="all",
                       help="7, 8, 9, 11, 14, 16, 18, cpistack, or 'all'")
    p_fig.add_argument("--warm", type=int, default=100_000)
    p_fig.add_argument("--timed", type=int, default=25_000)
    p_fig.add_argument("--smp-cpus", type=int, default=16)
    _add_runner_options(p_fig)
    _add_sampling_options(p_fig)
    _add_engine_option(p_fig)
    p_fig.set_defaults(func=_cmd_figures)

    p_sweeps = sub.add_parser("sweeps", help="run supplemental parameter sweeps")
    p_sweeps.add_argument("sweep", nargs="?", default="all",
                          help="l2, window, bht, smp, or 'all'")
    p_sweeps.add_argument("--cpus", type=int, nargs="+", default=[1, 2, 4],
                          help="CPU counts for the smp sweep")
    p_sweeps.add_argument("--warm", type=int, default=100_000)
    p_sweeps.add_argument("--timed", type=int, default=25_000)
    _add_runner_options(p_sweeps)
    _add_sampling_options(p_sweeps)
    _add_engine_option(p_sweeps)
    p_sweeps.set_defaults(func=_cmd_sweeps)

    p_analyze = sub.add_parser(
        "analyze", help="render analyses from cached results (no simulation)"
    )
    p_analyze.add_argument("what", choices=("cpistack",),
                           help="analysis to render")
    p_analyze.add_argument("--cache-dir", default=None, metavar="DIR")
    p_analyze.add_argument("--workload", default=None,
                           help="only this workload (e.g. TPC-C)")
    p_analyze.add_argument("--config", default=None,
                           help="only this configuration (e.g. SPARC64-V)")
    p_analyze.add_argument("--fig7", action="store_true",
                           help="collapse onto the paper's Figure 7 buckets")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_cache = sub.add_parser("cache", help="inspect or clear the result cache")
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete all cached results")
    p_cache.set_defaults(func=_cmd_cache)

    p_trace = sub.add_parser("trace", help="generate a synthetic trace file")
    p_trace.add_argument("workload")
    p_trace.add_argument("output", help=".jsonl or .trc path")
    p_trace.add_argument("--length", type=int, default=100_000)
    p_trace.add_argument("--seed", type=int, default=2003)
    p_trace.set_defaults(func=_cmd_trace)

    p_verify = sub.add_parser("verify", help="model vs logic-sim cross-check")
    p_verify.add_argument("--workload", default="SPECint95")
    p_verify.add_argument("--length", type=int, default=3000)
    p_verify.add_argument("--seed", type=int, default=2003)
    p_verify.set_defaults(func=_cmd_verify)

    p_smp = sub.add_parser("smp", help="TPC-C SMP run")
    p_smp.add_argument("--cpus", type=int, default=4)
    p_smp.add_argument("--config", default="base", choices=_CONFIGS)
    p_smp.add_argument("--warm", type=int, default=20_000)
    p_smp.add_argument("--timed", type=int, default=6_000)
    p_smp.add_argument("--seed", type=int, default=2003)
    _add_engine_option(p_smp)
    p_smp.set_defaults(func=_cmd_smp)

    p_submit = sub.add_parser(
        "submit", help="append jobs to a durable campaign queue"
    )
    p_submit.add_argument("workloads", nargs="+",
                          help="workload names, e.g. SPECint95 TPC-C")
    p_submit.add_argument("--queue", default="campaign-queue.jsonl",
                          metavar="PATH", help="journal path (shared with serve)")
    p_submit.add_argument("--config", nargs="+", default=["base"],
                          choices=_CONFIGS, help="configurations to pair with")
    p_submit.add_argument("--warm", type=int, default=100_000)
    p_submit.add_argument("--timed", type=int, default=25_000)
    p_submit.add_argument("--seed", type=int, default=2003)
    p_submit.add_argument("--cpus", type=_positive_int, default=None,
                          help="submit SMP runs with this many CPUs")
    p_submit.add_argument("--cache-dir", default=None, metavar="DIR")
    p_submit.add_argument("--capacity", type=_positive_int, default=None,
                          help="refuse submissions beyond this backlog")
    p_submit.add_argument("--repeat", type=_positive_int, default=1,
                          help="submit each point N times (dedup demo; "
                               "still exactly one simulation)")
    p_submit.set_defaults(func=_cmd_submit)

    p_serve = sub.add_parser(
        "serve", help="drain a campaign queue with crash-safe workers"
    )
    p_serve.add_argument("--queue", default="campaign-queue.jsonl",
                         metavar="PATH", help="journal path (shared with submit)")
    p_serve.add_argument("--jobs", type=_positive_int, default=2, metavar="N",
                         help="worker processes (default 2)")
    p_serve.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                         help="claim-lease length; an expired lease requeues "
                              "the job (default 30)")
    p_serve.add_argument("--capacity", type=_positive_int, default=None,
                         help="shed pending jobs beyond this backlog")
    p_serve.add_argument("--max-idle", type=float, default=0.0, metavar="SECONDS",
                         help="keep polling this long after the queue drains "
                              "(0: exit when drained)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR")
    p_serve.add_argument("--quiet", action="store_true")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="per-run wall-clock limit; hung workers are "
                              "killed and the job requeued")
    p_serve.add_argument("--retries", type=int, default=1, metavar="N",
                         help="attempts beyond the first per job (default 1)")
    p_serve.add_argument("--on-failure", choices=("retry", "fail", "skip"),
                         default="retry",
                         help="after retries: rerun in-process / abort / "
                              "mark dead and continue")
    p_serve.add_argument("--inject-faults", default=None, metavar="SPEC",
                         help="deterministic fault injection for testing "
                              "(see repro.common.faults)")
    p_serve.set_defaults(func=_cmd_serve)

    p_status = sub.add_parser(
        "status", help="read-only view of a campaign queue"
    )
    p_status.add_argument("--queue", default="campaign-queue.jsonl",
                          metavar="PATH")
    p_status.add_argument("--cache-dir", default=None, metavar="DIR")
    p_status.set_defaults(func=_cmd_status)

    return parser


def main(argv: Optional[List[str]] = None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "engine", None):
        # Commands that fan out through runners/workers (figures, sweeps)
        # resolve the engine via the environment; worker processes
        # inherit it.  Explicit PerformanceModel(engine=...) args win.
        os.environ["REPRO_ENGINE"] = args.engine
    args.func(args)


if __name__ == "__main__":  # pragma: no cover
    main()
