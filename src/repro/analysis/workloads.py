"""The standard workload set used throughout the evaluation.

A :class:`Workload` couples a synthetic profile with generation
parameters (seed, warm-up length, timed length) and caches its generated
traces, so every experiment that touches, say, SPECint95 runs the *same*
dynamic stream — the paper's consistency argument for using a single
performance model applies equally to inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.trace.sampling import SamplingPlan
from repro.trace.stream import Trace
from repro.trace.synth import TraceGenerator, WorkloadProfile, standard_profiles

#: Default warm-up prefix (functional, untimed) per workload.
DEFAULT_WARM = 100_000
#: Default timed window per workload.
DEFAULT_TIMED = 25_000
#: Default seed for the standard suite.
DEFAULT_SEED = 2003  # the paper's publication year


@dataclass
class Workload:
    """One named workload: profile + trace generation parameters."""

    name: str
    profile: WorkloadProfile
    seed: int = DEFAULT_SEED
    warm_instructions: int = DEFAULT_WARM
    timed_instructions: int = DEFAULT_TIMED
    #: Dynamic-sample seed; None = same as ``seed``.  A different sample
    #: seed yields a different capture of the *same* static program.
    sample_seed: Optional[int] = None
    #: When set, uniprocessor runs use SMARTS-style sampled simulation
    #: with this schedule instead of a full detailed run.
    sampling: Optional[SamplingPlan] = None
    _generator: Optional[TraceGenerator] = field(default=None, repr=False)
    _trace: Optional[Trace] = field(default=None, repr=False)

    def __getstate__(self) -> dict:
        """Pickle only the generation parameters, never the traces.

        Worker processes of :class:`~repro.analysis.runner.ParallelRunner`
        receive workloads by pickle and regenerate traces locally from
        the seed — bit-identical by construction (deterministic RNG) and
        far cheaper than shipping hundreds of thousands of records.
        """
        state = self.__dict__.copy()
        state["_generator"] = None
        state["_trace"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def cache_key(self) -> str:
        """Stable identity for result caches: name, parameters, profile.

        Includes a content hash of the profile so two workloads sharing
        a name but differing in any statistical parameter never alias.
        """
        from repro.common.hashing import content_hash

        return "|".join(
            (
                self.name,
                f"seed={self.seed}",
                f"sample={self.sample_seed}",
                f"warm={self.warm_instructions}",
                f"timed={self.timed_instructions}",
                f"sampling={self.sampling.key() if self.sampling else 'none'}",
                f"profile={content_hash(self.profile)}",
            )
        )

    @property
    def total_instructions(self) -> int:
        return self.warm_instructions + self.timed_instructions

    @property
    def warmup_fraction(self) -> float:
        return self.warm_instructions / self.total_instructions

    def generator(self) -> TraceGenerator:
        if self._generator is None:
            self._generator = TraceGenerator(
                self.profile, seed=self.seed, sample_seed=self.sample_seed
            )
        return self._generator

    def trace(self) -> Trace:
        """The full (warm + timed) trace, generated once and cached."""
        if self._trace is None:
            generator = self.generator()
            self._trace = generator.generate(self.total_instructions, name=self.name)
        return self._trace

    def regions(self) -> dict:
        """Memory regions for steady-state pre-warming."""
        generator = self.generator()
        if self._trace is None:
            self.trace()
        return generator.memory_regions()

    def smp_traces(self, cpu_count: int):
        """Per-CPU (traces, regions) for SMP runs (not cached)."""
        from repro.trace.synth.smp import build_smp_generators

        generators = build_smp_generators(self.profile, cpu_count, seed=self.seed)
        traces = [
            generator.generate(
                self.total_instructions,
                name=f"{self.profile.name}-{cpu_count}P-cpu{generator.cpu}",
            )
            for generator in generators
        ]
        regions = [generator.memory_regions() for generator in generators]
        return traces, regions


def spec_workloads(
    seed: int = DEFAULT_SEED,
    warm: int = DEFAULT_WARM,
    timed: int = DEFAULT_TIMED,
) -> List[Workload]:
    """SPECint95, SPECfp95, SPECint2000, SPECfp2000."""
    profiles = standard_profiles()
    return [
        Workload(name, profiles[name], seed, warm, timed)
        for name in ("SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000")
    ]


def tpcc_workload(
    seed: int = DEFAULT_SEED,
    warm: int = DEFAULT_WARM,
    timed: int = DEFAULT_TIMED,
) -> Workload:
    """The TPC-C OLTP workload (uniprocessor trace)."""
    return Workload("TPC-C", standard_profiles()["TPC-C"], seed, warm, timed)


def smp_workload(
    cpu_count: int,
    seed: int = DEFAULT_SEED,
    warm: int = DEFAULT_WARM,
    timed: int = DEFAULT_TIMED,
) -> Workload:
    """TPC-C scaled for an SMP run, named like the paper ("TPC-C (16P)")."""
    return Workload(
        f"TPC-C ({cpu_count}P)", standard_profiles()["TPC-C"], seed, warm, timed
    )


def standard_workloads(
    seed: int = DEFAULT_SEED,
    warm: int = DEFAULT_WARM,
    timed: int = DEFAULT_TIMED,
) -> List[Workload]:
    """The five uniprocessor workloads of the evaluation."""
    return spec_workloads(seed, warm, timed) + [tpcc_workload(seed, warm, timed)]


def workload_by_name(name: str, sample_seed: Optional[int] = None, **kwargs) -> Workload:
    """Construct one standard workload by its paper name."""
    for workload in standard_workloads(**kwargs):
        if workload.name == name:
            workload.sample_seed = sample_seed
            return workload
    raise ConfigError(f"unknown workload {name!r}")
