"""Experiment runners: serial (in-process) and parallel (multi-process).

Several figures share runs (e.g. the Table 1 base configuration on all
five workloads appears in Figures 8, 9, 11, 14, 16 and 18 as the
baseline), so both runners memoise results — keyed by a *content hash*
of the configuration plus the workload's cache key, never by display
name alone, so two configs that share a name but differ in any
parameter cannot alias.

:class:`ParallelRunner` extends the serial runner with

- **fan-out**: :meth:`~ParallelRunner.prefetch` runs a batch of
  independent (config, workload[, cpu_count]) simulations across worker
  processes (``jobs=N``) via :class:`concurrent.futures.ProcessPoolExecutor`;
- **persistence**: results are memoised to disk through
  :class:`~repro.analysis.cache.ResultCache`, so regenerating a figure a
  second time is near-instant;
- **observability**: per-run wall-clock, worker id, and hit/miss
  counters, with a ``verbose`` progress line per event;
- **graceful degradation**: a crashed worker or corrupt cache entry
  falls back to a fresh in-process run instead of aborting the sweep;
- **fault tolerance**: a :class:`~repro.analysis.policy.RunPolicy`
  adds per-run wall-clock timeouts with a watchdog that kills and
  respawns a hung worker pool, bounded retries with deterministic
  jittered backoff, and a configurable last-resort policy
  (``retry`` in-process / ``fail`` loudly / ``skip`` and record);
- **resume**: an optional
  :class:`~repro.analysis.campaign.CampaignManifest` records every
  completed (config, workload) key, so an interrupted campaign
  restarted with the same manifest reports exactly what remains.

Determinism: the simulation depends only on (config, trace) and every
trace is regenerated in the worker from an explicit seed
(:mod:`repro.common.rng`), so serial and parallel execution produce
bit-identical statistics regardless of worker scheduling — and
regardless of retries, because a retried run is the same pure function
re-evaluated.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cache import ResultCache
from repro.analysis.campaign import CampaignManifest
from repro.analysis.policy import RunPolicy
from repro.analysis.workloads import Workload
from repro.common import faults
from repro.common.errors import ExperimentError
from repro.model.config import MachineConfig
from repro.model.simulator import PerformanceModel
from repro.model.stats import SimResult, sim_result_from_dict
from repro.smp.system import SmpResult, run_smp

#: (config, workload) pair for a uniprocessor prefetch.
UpRequest = Tuple[MachineConfig, Workload]
#: (config, workload, cpu_count) triple for an SMP prefetch.
SmpRequest = Tuple[MachineConfig, Workload, int]


def _run_up(config: MachineConfig, workload: Workload) -> SimResult:
    """One uniprocessor simulation, in whichever process this runs.

    A workload carrying a :class:`~repro.trace.sampling.SamplingPlan`
    runs sampled (the plan's per-window warm-up replaces the trace-prefix
    warm-up fraction); otherwise it runs in full detail.
    """
    model = PerformanceModel(config)
    if workload.sampling is not None:
        return model.run_sampled(
            workload.trace(), workload.sampling, regions=workload.regions()
        )
    return model.run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
    )


def _run_smp(config: MachineConfig, workload: Workload, cpu_count: int) -> SmpResult:
    """One SMP simulation, in whichever process this runs."""
    traces, regions = workload.smp_traces(cpu_count)
    return run_smp(
        config,
        traces,
        warmup_fraction=workload.warmup_fraction,
        regions_per_cpu=regions,
    )


#: Per-worker workload memo: workers live across tasks (the runner keeps
#: its pool), so reusing the Workload object lets its generated trace be
#: shared by every config simulated on the same worker.
_worker_workloads: Dict[str, Workload] = {}
_WORKER_WORKLOAD_LIMIT = 8


def _memoised_workload(workload: Workload) -> Workload:
    key = workload.cache_key()
    cached = _worker_workloads.get(key)
    if cached is not None and type(cached) is type(workload):
        return cached
    if len(_worker_workloads) >= _WORKER_WORKLOAD_LIMIT:
        _worker_workloads.pop(next(iter(_worker_workloads)))
    _worker_workloads[key] = workload
    return workload


def _up_worker(
    config: MachineConfig, workload: Workload, attempt: int = 0
) -> Tuple[dict, int, float]:
    """Worker entry point: returns (result dict, worker pid, seconds)."""
    faults.worker_fault(f"{workload.name}@{config.name}", attempt)
    started = time.perf_counter()
    result = _run_up(config, _memoised_workload(workload))
    return result.to_dict(), os.getpid(), time.perf_counter() - started


def _smp_worker(
    config: MachineConfig, workload: Workload, cpu_count: int, attempt: int = 0
) -> Tuple[dict, int, float]:
    """Worker entry point for SMP runs."""
    faults.worker_fault(f"{workload.name}x{cpu_count}P@{config.name}", attempt)
    started = time.perf_counter()
    result = _run_smp(config, _memoised_workload(workload), cpu_count)
    return result.to_dict(), os.getpid(), time.perf_counter() - started


@dataclass
class RunnerStats:
    """Observability counters for one runner instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    runs_in_process: int = 0
    runs_in_workers: int = 0
    worker_fallbacks: int = 0
    #: Worker-side re-submissions after a failure or timeout.
    retries: int = 0
    #: Runs whose wall-clock watchdog expired.
    timeouts: int = 0
    #: Times the hung/broken worker pool was killed and respawned.
    pool_restarts: int = 0
    #: Labels abandoned under the ``skip`` failure policy.
    skipped: List[str] = field(default_factory=list)
    total_run_seconds: float = 0.0
    #: (label, seconds, worker pid or None) per executed simulation.
    timings: List[Tuple[str, float, Optional[int]]] = field(default_factory=list)

    def record_run(self, label: str, seconds: float, pid: Optional[int]) -> None:
        self.total_run_seconds += seconds
        self.timings.append((label, seconds, pid))
        if pid is None:
            self.runs_in_process += 1
        else:
            self.runs_in_workers += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "runs_in_process": self.runs_in_process,
            "runs_in_workers": self.runs_in_workers,
            "worker_fallbacks": self.worker_fallbacks,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "skipped": list(self.skipped),
            "total_run_seconds": round(self.total_run_seconds, 3),
        }


class ExperimentRunner:
    """Runs (config, workload) pairs serially, caching results in memory."""

    def __init__(self, verbose: bool = False) -> None:
        self.verbose = verbose
        self.stats = RunnerStats()
        self._up_cache: Dict[Tuple[str, str], SimResult] = {}
        self._smp_cache: Dict[Tuple[str, str, int], SmpResult] = {}

    # -- keys ------------------------------------------------------------
    #
    # Keys are always recomputed from content: memoising the hash by
    # ``id(config)`` is tempting but wrong — CPython reuses addresses
    # after garbage collection, so a transient config can inherit a
    # freed object's hash and silently alias a different machine.

    def _up_key(self, config: MachineConfig, workload: Workload) -> Tuple[str, str]:
        return (config.content_hash(), workload.cache_key())

    def _smp_key(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> Tuple[str, str, int]:
        return (config.content_hash(), workload.cache_key(), cpu_count)

    # -- logging ---------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.verbose:
            print(message)

    # -- execution -------------------------------------------------------

    def run(self, config: MachineConfig, workload: Workload) -> SimResult:
        """Uniprocessor run of ``workload`` on ``config`` (cached)."""
        key = self._up_key(config, workload)
        result = self._up_cache.get(key)
        if result is None:
            result = self._fetch_up(key, config, workload)
            self._up_cache[key] = result
        else:
            self.stats.memory_hits += 1
        return result

    def run_smp(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> SmpResult:
        """SMP run with per-CPU traces of ``workload`` (cached)."""
        key = self._smp_key(config, workload, cpu_count)
        result = self._smp_cache.get(key)
        if result is None:
            result = self._fetch_smp(key, config, workload, cpu_count)
            self._smp_cache[key] = result
        else:
            self.stats.memory_hits += 1
        return result

    def _fetch_up(
        self, key: Tuple[str, str], config: MachineConfig, workload: Workload
    ) -> SimResult:
        """Produce an uncached uniprocessor result (serial: just run)."""
        self.stats.misses += 1
        self._log(f"  running {workload.name} on {config.name} ...")
        started = time.perf_counter()
        result = _run_up(config, workload)
        self.stats.record_run(
            f"{workload.name}@{config.name}", time.perf_counter() - started, None
        )
        return result

    def _fetch_smp(
        self,
        key: Tuple[str, str, int],
        config: MachineConfig,
        workload: Workload,
        cpu_count: int,
    ) -> SmpResult:
        """Produce an uncached SMP result (serial: just run)."""
        self.stats.misses += 1
        self._log(f"  running {workload.name} x{cpu_count}P on {config.name} ...")
        started = time.perf_counter()
        result = _run_smp(config, workload, cpu_count)
        self.stats.record_run(
            f"{workload.name}x{cpu_count}P@{config.name}",
            time.perf_counter() - started,
            None,
        )
        return result

    def prefetch(
        self,
        up: Sequence[UpRequest] = (),
        smp: Sequence[SmpRequest] = (),
    ) -> None:
        """Hint that these runs are coming.  Serial runner: no-op (lazy)."""

    def try_run(
        self, config: MachineConfig, workload: Workload
    ) -> Optional[SimResult]:
        """Like :meth:`run`, but ``None`` for a run abandoned by policy.

        The serial runner never abandons a run, so this is plain
        :meth:`run`; sweeps call it so the same code renders partial
        tables when a parallel runner skipped points.
        """
        return self.run(config, workload)

    def try_run_smp(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> Optional[SmpResult]:
        """SMP counterpart of :meth:`try_run`."""
        return self.run_smp(config, workload, cpu_count)

    def cached_results(self) -> Dict[Tuple[str, str], SimResult]:
        """All uniprocessor results produced so far."""
        return dict(self._up_cache)

    def metrics(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Flat registry metrics for every uniprocessor result so far.

        Keyed like :meth:`cached_results`; each value is the result's
        :func:`repro.observe.registry.collect` dictionary (scalars plus
        ``decode_stalls.*`` and ``cpistack.*``), ready for tabulation or
        export without touching per-result attribute paths.
        """
        from repro.observe.registry import collect

        return {key: collect(result) for key, result in self._up_cache.items()}


class ParallelRunner(ExperimentRunner):
    """Multi-process experiment runner with a persistent disk cache.

    ``jobs`` bounds the worker-process pool used by :meth:`prefetch`;
    individual :meth:`run`/:meth:`run_smp` calls always execute
    in-process (one simulation cannot be split), so figure and sweep
    code prefetches its whole (config × workload) matrix first and then
    reads results back through the ordinary serial interface.

    ``policy`` governs failure handling for worker runs (timeouts,
    retries, backoff; see :class:`~repro.analysis.policy.RunPolicy`);
    ``manifest`` records completed keys for resumable campaigns.
    """

    def __init__(
        self,
        jobs: int = 1,
        verbose: bool = False,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        policy: Optional[RunPolicy] = None,
        manifest: Optional[CampaignManifest] = None,
    ) -> None:
        super().__init__(verbose=verbose)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.policy = policy or RunPolicy()
        self.manifest = manifest
        #: Keys abandoned under the ``skip`` failure policy.
        self._skipped: Set[Tuple[str, Tuple]] = set()
        #: Lazily created, reused across prefetch batches; workers stay
        #: warm (their workload/trace memos survive between figures).
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _discard_pool(self) -> bool:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            return True
        return False

    def _kill_pool(self) -> None:
        """Watchdog action: hard-kill every worker, then drop the pool.

        ``shutdown`` alone cannot reclaim a *hung* worker — it only
        stops feeding new work — so the watchdog kills the processes
        first and lets the next batch build a fresh pool.
        """
        executor = self._executor
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 - already-dead workers
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None
        self.stats.pool_restarts += 1

    def close(self) -> None:
        """Shut the worker pool down (also safe to never call)."""
        self._discard_pool()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self._discard_pool()
        except Exception:
            pass

    # -- disk cache ------------------------------------------------------

    def _disk_load_up(self, key: Tuple[str, str]) -> Optional[SimResult]:
        if self.cache is None:
            return None
        payload = self.cache.load(self.cache.key("up", *key))
        if payload is None:
            return None
        try:
            return sim_result_from_dict(payload)
        except (ValueError, TypeError, KeyError):
            # Payload from an incompatible writer: treat as a miss.
            return None

    def _disk_load_smp(self, key: Tuple[str, str, int]) -> Optional[SmpResult]:
        if self.cache is None:
            return None
        payload = self.cache.load(self.cache.key("smp", key[0], key[1], key[2]))
        if payload is None:
            return None
        try:
            return SmpResult.from_dict(payload)
        except (ValueError, TypeError, KeyError):
            return None

    def _disk_store_up(
        self, key: Tuple[str, str], result: SimResult, workload: Workload
    ) -> None:
        if self.cache is not None:
            self.cache.store(
                self.cache.key("up", *key),
                result.to_dict(),
                meta={"config": result.config_name, "workload": workload.name},
            )

    def _disk_store_smp(
        self, key: Tuple[str, str, int], result: SmpResult, workload: Workload
    ) -> None:
        if self.cache is not None:
            self.cache.store(
                self.cache.key("smp", key[0], key[1], key[2]),
                result.to_dict(),
                meta={
                    "config": result.config_name,
                    "workload": workload.name,
                    "cpus": key[2],
                },
            )

    # -- campaign bookkeeping --------------------------------------------

    def _mark_complete(self, kind: str, key: Tuple, label: str) -> None:
        if self.manifest is not None:
            self.manifest.mark(self.manifest.key(kind, *key), label)

    # -- skip policy -----------------------------------------------------

    def _is_skipped(self, kind: str, key: Tuple) -> bool:
        return (kind, key) in self._skipped

    def run(self, config: MachineConfig, workload: Workload) -> SimResult:
        key = self._up_key(config, workload)
        if self._is_skipped("up", key):
            raise ExperimentError(
                f"{workload.name}@{config.name} was abandoned after repeated "
                f"failures (policy on_failure=skip); use try_run() to render "
                f"partial results"
            )
        return super().run(config, workload)

    def run_smp(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> SmpResult:
        key = self._smp_key(config, workload, cpu_count)
        if self._is_skipped("smp", key):
            raise ExperimentError(
                f"{workload.name}x{cpu_count}P@{config.name} was abandoned "
                f"after repeated failures (policy on_failure=skip); use "
                f"try_run_smp() to render partial results"
            )
        return super().run_smp(config, workload, cpu_count)

    def try_run(
        self, config: MachineConfig, workload: Workload
    ) -> Optional[SimResult]:
        if self._is_skipped("up", self._up_key(config, workload)):
            return None
        return super().run(config, workload)

    def try_run_smp(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> Optional[SmpResult]:
        if self._is_skipped("smp", self._smp_key(config, workload, cpu_count)):
            return None
        return super().run_smp(config, workload, cpu_count)

    # -- serial-path overrides (memo miss) -------------------------------

    def _fetch_up(
        self, key: Tuple[str, str], config: MachineConfig, workload: Workload
    ) -> SimResult:
        cached = self._disk_load_up(key)
        if cached is not None:
            self.stats.disk_hits += 1
            self._log(f"  [cache] {workload.name} on {config.name}")
            self._mark_complete("up", key, f"{workload.name}@{config.name}")
            return cached
        result = super()._fetch_up(key, config, workload)
        self._disk_store_up(key, result, workload)
        self._mark_complete("up", key, f"{workload.name}@{config.name}")
        return result

    def _fetch_smp(
        self,
        key: Tuple[str, str, int],
        config: MachineConfig,
        workload: Workload,
        cpu_count: int,
    ) -> SmpResult:
        cached = self._disk_load_smp(key)
        if cached is not None:
            self.stats.disk_hits += 1
            self._log(f"  [cache] {workload.name} x{cpu_count}P on {config.name}")
            self._mark_complete(
                "smp", key, f"{workload.name}x{cpu_count}P@{config.name}"
            )
            return cached
        result = super()._fetch_smp(key, config, workload, cpu_count)
        self._disk_store_smp(key, result, workload)
        self._mark_complete("smp", key, f"{workload.name}x{cpu_count}P@{config.name}")
        return result

    # -- parallel fan-out ------------------------------------------------

    def prefetch(
        self,
        up: Sequence[UpRequest] = (),
        smp: Sequence[SmpRequest] = (),
    ) -> None:
        """Execute a batch of runs across workers, filling the caches.

        Requests already satisfied by the in-memory memo or the disk
        cache are skipped; the rest fan out over ``jobs`` processes.
        Worker failures and timeouts are retried with backoff up to the
        policy's budget, then handled per ``policy.on_failure``; a
        single crash or hang never loses the whole batch.
        """
        pending_up: List[Tuple[Tuple[str, str], MachineConfig, Workload]] = []
        seen_keys = set()
        for config, workload in up:
            key = self._up_key(config, workload)
            if key in seen_keys or key in self._up_cache:
                continue
            if self._is_skipped("up", key):
                continue
            cached = self._disk_load_up(key)
            if cached is not None:
                self.stats.disk_hits += 1
                self._up_cache[key] = cached
                self._mark_complete("up", key, f"{workload.name}@{config.name}")
                continue
            seen_keys.add(key)
            pending_up.append((key, config, workload))

        pending_smp: List[
            Tuple[Tuple[str, str, int], MachineConfig, Workload, int]
        ] = []
        for config, workload, cpu_count in smp:
            key = self._smp_key(config, workload, cpu_count)
            if key in seen_keys or key in self._smp_cache:
                continue
            if self._is_skipped("smp", key):
                continue
            cached = self._disk_load_smp(key)
            if cached is not None:
                self.stats.disk_hits += 1
                self._smp_cache[key] = cached
                self._mark_complete(
                    "smp", key, f"{workload.name}x{cpu_count}P@{config.name}"
                )
                continue
            seen_keys.add(key)
            pending_smp.append((key, config, workload, cpu_count))

        total = len(pending_up) + len(pending_smp)
        if total == 0:
            return
        self.stats.misses += total

        if self.jobs == 1 and total == 1:
            # Nothing to overlap; skip the pool entirely.
            self._run_pending_inline(pending_up, pending_smp)
            return
        self._run_pending_pool(pending_up, pending_smp)

    def _run_pending_inline(self, pending_up, pending_smp) -> None:
        for key, config, workload in pending_up:
            self._log(f"  running {workload.name} on {config.name} ...")
            started = time.perf_counter()
            result = _run_up(config, workload)
            self.stats.record_run(
                f"{workload.name}@{config.name}",
                time.perf_counter() - started,
                None,
            )
            self._up_cache[key] = result
            self._disk_store_up(key, result, workload)
            self._mark_complete("up", key, f"{workload.name}@{config.name}")
        for key, config, workload, cpu_count in pending_smp:
            self._log(f"  running {workload.name} x{cpu_count}P on {config.name} ...")
            started = time.perf_counter()
            result = _run_smp(config, workload, cpu_count)
            self.stats.record_run(
                f"{workload.name}x{cpu_count}P@{config.name}",
                time.perf_counter() - started,
                None,
            )
            self._smp_cache[key] = result
            self._disk_store_smp(key, result, workload)
            self._mark_complete(
                "smp", key, f"{workload.name}x{cpu_count}P@{config.name}"
            )

    @staticmethod
    def _label(kind: str, item) -> str:
        if kind == "up":
            _, config, workload = item
            return f"{workload.name}@{config.name}"
        _, config, workload, cpu_count = item
        return f"{workload.name}x{cpu_count}P@{config.name}"

    def _submit(self, pool: ProcessPoolExecutor, kind: str, item, attempt: int):
        if kind == "up":
            _, config, workload = item
            return pool.submit(_up_worker, config, workload, attempt)
        _, config, workload, cpu_count = item
        return pool.submit(_smp_worker, config, workload, cpu_count, attempt)

    def _run_pending_pool(self, pending_up, pending_smp) -> None:
        """Fan pending runs out over a worker pool, with fault tolerance.

        At most ``jobs`` requests are in flight at a time, so the
        per-run wall-clock watchdog measures execution, not queueing.
        A worker failure charges that run one attempt and re-submits it
        (after deterministic jittered backoff) until the policy's retry
        budget is spent; a watchdog expiry additionally kills and
        respawns the pool, because a hung worker cannot be cancelled.
        Requests that were merely in flight on a pool that had to be
        killed are re-queued without being charged an attempt.
        """
        total = len(pending_up) + len(pending_smp)
        self._log(f"  fanning {total} runs out over {self.jobs} workers ...")
        queue: Deque[Tuple[str, Tuple, int]] = deque(
            [("up", item, 0) for item in pending_up]
            + [("smp", item, 0) for item in pending_smp]
        )
        #: future -> (kind, item, attempt, deadline or None)
        inflight: Dict[object, Tuple[str, Tuple, int, Optional[float]]] = {}
        done_count = 0
        try:
            while queue or inflight:
                while queue and len(inflight) < self.jobs:
                    kind, item, attempt = queue.popleft()
                    future = self._submit(self._pool(), kind, item, attempt)
                    deadline = (
                        time.monotonic() + self.policy.timeout
                        if self.policy.timeout
                        else None
                    )
                    inflight[future] = (kind, item, attempt, deadline)

                deadlines = [
                    meta[3] for meta in inflight.values() if meta[3] is not None
                ]
                wait_timeout = (
                    max(0.0, min(deadlines) - time.monotonic()) if deadlines else None
                )
                finished, _ = wait(
                    set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                for future in finished:
                    kind, item, attempt, _deadline = inflight.pop(future)
                    try:
                        payload, pid, seconds = future.result()
                    except Exception as error:  # noqa: BLE001
                        self._handle_failure(kind, item, attempt, error, queue)
                        continue
                    done_count += 1
                    self._install(kind, item, payload, pid, seconds, done_count, total)

                if finished:
                    continue

                # Nothing completed before the nearest deadline: check
                # for expired runs and, if any, assume their workers are
                # hung — kill the pool and re-drive everything.
                now = time.monotonic()
                expired = [
                    (future, meta)
                    for future, meta in inflight.items()
                    if meta[3] is not None and meta[3] <= now
                ]
                if not expired:
                    continue
                self._kill_pool()
                for future, (kind, item, attempt, deadline) in list(inflight.items()):
                    is_expired = deadline is not None and deadline <= now
                    if is_expired:
                        self.stats.timeouts += 1
                        self._log(
                            f"  watchdog: {self._label(kind, item)} exceeded "
                            f"{self.policy.timeout:.1f}s; killing worker pool"
                        )
                        self._handle_failure(
                            kind,
                            item,
                            attempt,
                            TimeoutError(
                                f"run exceeded {self.policy.timeout}s wall-clock"
                            ),
                            queue,
                        )
                    else:
                        # Collateral of the pool kill: not this run's
                        # fault, so its attempt budget is untouched.
                        queue.append((kind, item, attempt))
                inflight.clear()
        except ExperimentError:
            raise
        except Exception as error:  # noqa: BLE001
            # Pool-level failure (e.g. the executor itself cannot start,
            # or it broke mid-batch): discard it and rerun whatever was
            # never installed, in-process.
            self._discard_pool()
            self._log(f"  worker pool failed ({error!r}); completing in-process")
            leftovers_up = [
                item for item in pending_up
                if item[0] not in self._up_cache
                and not self._is_skipped("up", item[0])
            ]
            leftovers_smp = [
                item for item in pending_smp
                if item[0] not in self._smp_cache
                and not self._is_skipped("smp", item[0])
            ]
            self.stats.worker_fallbacks += len(leftovers_up) + len(leftovers_smp)
            self._run_pending_inline(leftovers_up, leftovers_smp)

    def _handle_failure(self, kind, item, attempt, error, queue) -> None:
        """One run failed (crash, raise, or timeout): retry or give up."""
        label = self._label(kind, item)
        if isinstance(error, BrokenExecutor):
            # A dead pool stays dead; drop it so the next submission
            # builds a fresh one.
            if self._discard_pool():
                self.stats.pool_restarts += 1
        next_attempt = attempt + 1
        if next_attempt <= self.policy.retries:
            self.stats.retries += 1
            delay = self.policy.backoff_delay(label, next_attempt)
            self._log(
                f"  worker failed on {label} ({error!r}); retry "
                f"{next_attempt}/{self.policy.retries} after {delay:.2f}s"
            )
            if delay > 0:
                time.sleep(delay)
            queue.append((kind, item, next_attempt))
            return
        # Retry budget exhausted: apply the policy.
        if self.policy.on_failure == "fail":
            raise ExperimentError(
                f"{label} failed after {next_attempt} attempts: {error!r}"
            ) from (error if isinstance(error, BaseException) else None)
        if self.policy.on_failure == "skip":
            self.stats.skipped.append(label)
            self._skipped.add((kind, item[0]))
            self._log(f"  giving up on {label} ({error!r}); recorded as skipped")
            return
        # Default policy: last-resort rerun in the parent process, which
        # is observable and interruptible (no timeout applies there).
        self.stats.worker_fallbacks += 1
        self._log(f"  worker failed on {label} ({error!r}); rerunning in-process")
        if kind == "up":
            self._run_pending_inline([item], [])
        else:
            self._run_pending_inline([], [item])

    def _install(
        self, kind, item, payload, pid, seconds, done_count, total
    ) -> None:
        if kind == "up":
            key, config, workload = item
            result = sim_result_from_dict(payload)
            label = f"{workload.name}@{config.name}"
            self._up_cache[key] = result
            self._disk_store_up(key, result, workload)
            self._mark_complete("up", key, label)
        else:
            key, config, workload, cpu_count = item
            result = SmpResult.from_dict(payload)
            label = f"{workload.name}x{cpu_count}P@{config.name}"
            self._smp_cache[key] = result
            self._disk_store_smp(key, result, workload)
            self._mark_complete("smp", key, label)
        self.stats.record_run(label, seconds, pid)
        self._log(
            f"  [{done_count}/{total}] worker {pid} finished {label} "
            f"in {seconds:.2f}s"
        )

    def summary(self) -> str:
        """One-line observability summary (cache + execution counters)."""
        stats = self.stats
        parts = [
            f"memory hits {stats.memory_hits}",
            f"disk hits {stats.disk_hits}",
            f"misses {stats.misses}",
            f"in-process runs {stats.runs_in_process}",
            f"worker runs {stats.runs_in_workers}",
            f"fallbacks {stats.worker_fallbacks}",
            f"sim time {stats.total_run_seconds:.1f}s",
        ]
        if stats.retries:
            parts.append(f"retries {stats.retries}")
        if stats.timeouts:
            parts.append(f"timeouts {stats.timeouts}")
        if stats.pool_restarts:
            parts.append(f"pool restarts {stats.pool_restarts}")
        if stats.skipped:
            parts.append(f"skipped {len(stats.skipped)}")
        if self.cache is not None:
            parts.append(f"cache corrupt {self.cache.stats.corrupt}")
        return ", ".join(parts)
