"""Experiment runner with per-process result caching.

Several figures share runs (e.g. the Table 1 base configuration on all
five workloads appears in Figures 8, 9, 11, 14, 16 and 18 as the
baseline), so the runner memoises results by (config name, workload
name, cpu count).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.model.config import MachineConfig
from repro.model.simulator import PerformanceModel
from repro.model.stats import SimResult
from repro.smp.system import SmpResult, run_smp
from repro.analysis.workloads import Workload


class ExperimentRunner:
    """Runs (config, workload) pairs, caching results."""

    def __init__(self, verbose: bool = False) -> None:
        self.verbose = verbose
        self._up_cache: Dict[Tuple[str, str], SimResult] = {}
        self._smp_cache: Dict[Tuple[str, str, int], SmpResult] = {}

    def run(self, config: MachineConfig, workload: Workload) -> SimResult:
        """Uniprocessor run of ``workload`` on ``config`` (cached)."""
        key = (config.name, workload.name)
        if key not in self._up_cache:
            if self.verbose:
                print(f"  running {workload.name} on {config.name} ...")
            result = PerformanceModel(config).run(
                workload.trace(),
                warmup_fraction=workload.warmup_fraction,
                regions=workload.regions(),
            )
            self._up_cache[key] = result
        return self._up_cache[key]

    def run_smp(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> SmpResult:
        """SMP run with per-CPU traces of ``workload`` (cached)."""
        key = (config.name, workload.name, cpu_count)
        if key not in self._smp_cache:
            if self.verbose:
                print(
                    f"  running {workload.name} x{cpu_count}P on {config.name} ..."
                )
            traces, regions = workload.smp_traces(cpu_count)
            result = run_smp(
                config,
                traces,
                warmup_fraction=workload.warmup_fraction,
                regions_per_cpu=regions,
            )
            self._smp_cache[key] = result
        return self._smp_cache[key]

    def cached_results(self) -> Dict[Tuple[str, str], SimResult]:
        """All uniprocessor results produced so far."""
        return dict(self._up_cache)
