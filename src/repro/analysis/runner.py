"""Experiment runners: serial (in-process) and parallel (multi-process).

Several figures share runs (e.g. the Table 1 base configuration on all
five workloads appears in Figures 8, 9, 11, 14, 16 and 18 as the
baseline), so both runners memoise results — keyed by a *content hash*
of the configuration plus the workload's cache key, never by display
name alone, so two configs that share a name but differ in any
parameter cannot alias.

:class:`ParallelRunner` extends the serial runner with

- **fan-out**: :meth:`~ParallelRunner.prefetch` runs a batch of
  independent (config, workload[, cpu_count]) simulations across worker
  processes (``jobs=N``) via :class:`concurrent.futures.ProcessPoolExecutor`;
- **persistence**: results are memoised to disk through
  :class:`~repro.analysis.cache.ResultCache`, so regenerating a figure a
  second time is near-instant;
- **observability**: per-run wall-clock, worker id, and hit/miss
  counters, with a ``verbose`` progress line per event;
- **graceful degradation**: a crashed worker or corrupt cache entry
  falls back to a fresh in-process run instead of aborting the sweep.

Determinism: the simulation depends only on (config, trace) and every
trace is regenerated in the worker from an explicit seed
(:mod:`repro.common.rng`), so serial and parallel execution produce
bit-identical statistics regardless of worker scheduling.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cache import ResultCache
from repro.analysis.workloads import Workload
from repro.model.config import MachineConfig
from repro.model.simulator import PerformanceModel
from repro.model.stats import SimResult
from repro.smp.system import SmpResult, run_smp

#: (config, workload) pair for a uniprocessor prefetch.
UpRequest = Tuple[MachineConfig, Workload]
#: (config, workload, cpu_count) triple for an SMP prefetch.
SmpRequest = Tuple[MachineConfig, Workload, int]


def _run_up(config: MachineConfig, workload: Workload) -> SimResult:
    """One uniprocessor simulation, in whichever process this runs."""
    return PerformanceModel(config).run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
    )


def _run_smp(config: MachineConfig, workload: Workload, cpu_count: int) -> SmpResult:
    """One SMP simulation, in whichever process this runs."""
    traces, regions = workload.smp_traces(cpu_count)
    return run_smp(
        config,
        traces,
        warmup_fraction=workload.warmup_fraction,
        regions_per_cpu=regions,
    )


#: Per-worker workload memo: workers live across tasks (the runner keeps
#: its pool), so reusing the Workload object lets its generated trace be
#: shared by every config simulated on the same worker.
_worker_workloads: Dict[str, Workload] = {}
_WORKER_WORKLOAD_LIMIT = 8


def _memoised_workload(workload: Workload) -> Workload:
    key = workload.cache_key()
    cached = _worker_workloads.get(key)
    if cached is not None and type(cached) is type(workload):
        return cached
    if len(_worker_workloads) >= _WORKER_WORKLOAD_LIMIT:
        _worker_workloads.pop(next(iter(_worker_workloads)))
    _worker_workloads[key] = workload
    return workload


def _up_worker(config: MachineConfig, workload: Workload) -> Tuple[dict, int, float]:
    """Worker entry point: returns (result dict, worker pid, seconds)."""
    started = time.perf_counter()
    result = _run_up(config, _memoised_workload(workload))
    return result.to_dict(), os.getpid(), time.perf_counter() - started


def _smp_worker(
    config: MachineConfig, workload: Workload, cpu_count: int
) -> Tuple[dict, int, float]:
    """Worker entry point for SMP runs."""
    started = time.perf_counter()
    result = _run_smp(config, _memoised_workload(workload), cpu_count)
    return result.to_dict(), os.getpid(), time.perf_counter() - started


@dataclass
class RunnerStats:
    """Observability counters for one runner instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    runs_in_process: int = 0
    runs_in_workers: int = 0
    worker_fallbacks: int = 0
    total_run_seconds: float = 0.0
    #: (label, seconds, worker pid or None) per executed simulation.
    timings: List[Tuple[str, float, Optional[int]]] = field(default_factory=list)

    def record_run(self, label: str, seconds: float, pid: Optional[int]) -> None:
        self.total_run_seconds += seconds
        self.timings.append((label, seconds, pid))
        if pid is None:
            self.runs_in_process += 1
        else:
            self.runs_in_workers += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "runs_in_process": self.runs_in_process,
            "runs_in_workers": self.runs_in_workers,
            "worker_fallbacks": self.worker_fallbacks,
            "total_run_seconds": round(self.total_run_seconds, 3),
        }


class ExperimentRunner:
    """Runs (config, workload) pairs serially, caching results in memory."""

    def __init__(self, verbose: bool = False) -> None:
        self.verbose = verbose
        self.stats = RunnerStats()
        self._up_cache: Dict[Tuple[str, str], SimResult] = {}
        self._smp_cache: Dict[Tuple[str, str, int], SmpResult] = {}

    # -- keys ------------------------------------------------------------
    #
    # Keys are always recomputed from content: memoising the hash by
    # ``id(config)`` is tempting but wrong — CPython reuses addresses
    # after garbage collection, so a transient config can inherit a
    # freed object's hash and silently alias a different machine.

    def _up_key(self, config: MachineConfig, workload: Workload) -> Tuple[str, str]:
        return (config.content_hash(), workload.cache_key())

    def _smp_key(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> Tuple[str, str, int]:
        return (config.content_hash(), workload.cache_key(), cpu_count)

    # -- logging ---------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.verbose:
            print(message)

    # -- execution -------------------------------------------------------

    def run(self, config: MachineConfig, workload: Workload) -> SimResult:
        """Uniprocessor run of ``workload`` on ``config`` (cached)."""
        key = self._up_key(config, workload)
        result = self._up_cache.get(key)
        if result is None:
            result = self._fetch_up(key, config, workload)
            self._up_cache[key] = result
        else:
            self.stats.memory_hits += 1
        return result

    def run_smp(
        self, config: MachineConfig, workload: Workload, cpu_count: int
    ) -> SmpResult:
        """SMP run with per-CPU traces of ``workload`` (cached)."""
        key = self._smp_key(config, workload, cpu_count)
        result = self._smp_cache.get(key)
        if result is None:
            result = self._fetch_smp(key, config, workload, cpu_count)
            self._smp_cache[key] = result
        else:
            self.stats.memory_hits += 1
        return result

    def _fetch_up(
        self, key: Tuple[str, str], config: MachineConfig, workload: Workload
    ) -> SimResult:
        """Produce an uncached uniprocessor result (serial: just run)."""
        self.stats.misses += 1
        self._log(f"  running {workload.name} on {config.name} ...")
        started = time.perf_counter()
        result = _run_up(config, workload)
        self.stats.record_run(
            f"{workload.name}@{config.name}", time.perf_counter() - started, None
        )
        return result

    def _fetch_smp(
        self,
        key: Tuple[str, str, int],
        config: MachineConfig,
        workload: Workload,
        cpu_count: int,
    ) -> SmpResult:
        """Produce an uncached SMP result (serial: just run)."""
        self.stats.misses += 1
        self._log(f"  running {workload.name} x{cpu_count}P on {config.name} ...")
        started = time.perf_counter()
        result = _run_smp(config, workload, cpu_count)
        self.stats.record_run(
            f"{workload.name}x{cpu_count}P@{config.name}",
            time.perf_counter() - started,
            None,
        )
        return result

    def prefetch(
        self,
        up: Sequence[UpRequest] = (),
        smp: Sequence[SmpRequest] = (),
    ) -> None:
        """Hint that these runs are coming.  Serial runner: no-op (lazy)."""

    def cached_results(self) -> Dict[Tuple[str, str], SimResult]:
        """All uniprocessor results produced so far."""
        return dict(self._up_cache)


class ParallelRunner(ExperimentRunner):
    """Multi-process experiment runner with a persistent disk cache.

    ``jobs`` bounds the worker-process pool used by :meth:`prefetch`;
    individual :meth:`run`/:meth:`run_smp` calls always execute
    in-process (one simulation cannot be split), so figure and sweep
    code prefetches its whole (config × workload) matrix first and then
    reads results back through the ordinary serial interface.
    """

    def __init__(
        self,
        jobs: int = 1,
        verbose: bool = False,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ) -> None:
        super().__init__(verbose=verbose)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if use_cache else None
        #: Lazily created, reused across prefetch batches; workers stay
        #: warm (their workload/trace memos survive between figures).
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _discard_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the worker pool down (also safe to never call)."""
        self._discard_pool()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self._discard_pool()
        except Exception:
            pass

    # -- disk cache ------------------------------------------------------

    def _disk_load_up(self, key: Tuple[str, str]) -> Optional[SimResult]:
        if self.cache is None:
            return None
        payload = self.cache.load(self.cache.key("up", *key))
        if payload is None:
            return None
        try:
            return SimResult.from_dict(payload)
        except (ValueError, TypeError, KeyError):
            # Payload from an incompatible writer: treat as a miss.
            return None

    def _disk_load_smp(self, key: Tuple[str, str, int]) -> Optional[SmpResult]:
        if self.cache is None:
            return None
        payload = self.cache.load(self.cache.key("smp", key[0], key[1], key[2]))
        if payload is None:
            return None
        try:
            return SmpResult.from_dict(payload)
        except (ValueError, TypeError, KeyError):
            return None

    def _disk_store_up(
        self, key: Tuple[str, str], result: SimResult, workload: Workload
    ) -> None:
        if self.cache is not None:
            self.cache.store(
                self.cache.key("up", *key),
                result.to_dict(),
                meta={"config": result.config_name, "workload": workload.name},
            )

    def _disk_store_smp(
        self, key: Tuple[str, str, int], result: SmpResult, workload: Workload
    ) -> None:
        if self.cache is not None:
            self.cache.store(
                self.cache.key("smp", key[0], key[1], key[2]),
                result.to_dict(),
                meta={
                    "config": result.config_name,
                    "workload": workload.name,
                    "cpus": key[2],
                },
            )

    # -- serial-path overrides (memo miss) -------------------------------

    def _fetch_up(
        self, key: Tuple[str, str], config: MachineConfig, workload: Workload
    ) -> SimResult:
        cached = self._disk_load_up(key)
        if cached is not None:
            self.stats.disk_hits += 1
            self._log(f"  [cache] {workload.name} on {config.name}")
            return cached
        result = super()._fetch_up(key, config, workload)
        self._disk_store_up(key, result, workload)
        return result

    def _fetch_smp(
        self,
        key: Tuple[str, str, int],
        config: MachineConfig,
        workload: Workload,
        cpu_count: int,
    ) -> SmpResult:
        cached = self._disk_load_smp(key)
        if cached is not None:
            self.stats.disk_hits += 1
            self._log(f"  [cache] {workload.name} x{cpu_count}P on {config.name}")
            return cached
        result = super()._fetch_smp(key, config, workload, cpu_count)
        self._disk_store_smp(key, result, workload)
        return result

    # -- parallel fan-out ------------------------------------------------

    def prefetch(
        self,
        up: Sequence[UpRequest] = (),
        smp: Sequence[SmpRequest] = (),
    ) -> None:
        """Execute a batch of runs across workers, filling the caches.

        Requests already satisfied by the in-memory memo or the disk
        cache are skipped; the rest fan out over ``jobs`` processes.
        Each worker failure degrades to an in-process rerun of that one
        request, so a crash never loses the whole batch.
        """
        pending_up: List[Tuple[Tuple[str, str], MachineConfig, Workload]] = []
        seen_keys = set()
        for config, workload in up:
            key = self._up_key(config, workload)
            if key in seen_keys or key in self._up_cache:
                continue
            cached = self._disk_load_up(key)
            if cached is not None:
                self.stats.disk_hits += 1
                self._up_cache[key] = cached
                continue
            seen_keys.add(key)
            pending_up.append((key, config, workload))

        pending_smp: List[
            Tuple[Tuple[str, str, int], MachineConfig, Workload, int]
        ] = []
        for config, workload, cpu_count in smp:
            key = self._smp_key(config, workload, cpu_count)
            if key in seen_keys or key in self._smp_cache:
                continue
            cached = self._disk_load_smp(key)
            if cached is not None:
                self.stats.disk_hits += 1
                self._smp_cache[key] = cached
                continue
            seen_keys.add(key)
            pending_smp.append((key, config, workload, cpu_count))

        total = len(pending_up) + len(pending_smp)
        if total == 0:
            return
        self.stats.misses += total

        if self.jobs == 1 and total == 1:
            # Nothing to overlap; skip the pool entirely.
            self._run_pending_inline(pending_up, pending_smp)
            return
        self._run_pending_pool(pending_up, pending_smp)

    def _run_pending_inline(self, pending_up, pending_smp) -> None:
        for key, config, workload in pending_up:
            self._log(f"  running {workload.name} on {config.name} ...")
            started = time.perf_counter()
            result = _run_up(config, workload)
            self.stats.record_run(
                f"{workload.name}@{config.name}",
                time.perf_counter() - started,
                None,
            )
            self._up_cache[key] = result
            self._disk_store_up(key, result, workload)
        for key, config, workload, cpu_count in pending_smp:
            self._log(f"  running {workload.name} x{cpu_count}P on {config.name} ...")
            started = time.perf_counter()
            result = _run_smp(config, workload, cpu_count)
            self.stats.record_run(
                f"{workload.name}x{cpu_count}P@{config.name}",
                time.perf_counter() - started,
                None,
            )
            self._smp_cache[key] = result
            self._disk_store_smp(key, result, workload)

    def _run_pending_pool(self, pending_up, pending_smp) -> None:
        """Fan pending runs out over a worker pool, falling back per-run."""
        total = len(pending_up) + len(pending_smp)
        self._log(f"  fanning {total} runs out over {self.jobs} workers ...")
        futures = {}
        done_count = 0
        try:
            pool = self._pool()
            for item in pending_up:
                key, config, workload = item
                futures[pool.submit(_up_worker, config, workload)] = ("up", item)
            for item in pending_smp:
                key, config, workload, cpu_count = item
                futures[pool.submit(_smp_worker, config, workload, cpu_count)] = (
                    "smp",
                    item,
                )
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    kind, item = futures[future]
                    done_count += 1
                    try:
                        payload, pid, seconds = future.result()
                    except Exception as error:  # noqa: BLE001
                        self._recover(kind, item, error)
                        continue
                    self._install(kind, item, payload, pid, seconds, done_count, total)
        except Exception as error:  # noqa: BLE001
            # Pool-level failure (e.g. the executor itself cannot start,
            # or it broke mid-batch): discard it and rerun whatever was
            # never installed, in-process.
            self._discard_pool()
            self._log(f"  worker pool failed ({error!r}); completing in-process")
            leftovers_up = [
                item for item in pending_up if item[0] not in self._up_cache
            ]
            leftovers_smp = [
                item for item in pending_smp if item[0] not in self._smp_cache
            ]
            self.stats.worker_fallbacks += len(leftovers_up) + len(leftovers_smp)
            self._run_pending_inline(leftovers_up, leftovers_smp)

    def _install(
        self, kind, item, payload, pid, seconds, done_count, total
    ) -> None:
        if kind == "up":
            key, config, workload = item
            result = SimResult.from_dict(payload)
            label = f"{workload.name}@{config.name}"
            self._up_cache[key] = result
            self._disk_store_up(key, result, workload)
        else:
            key, config, workload, cpu_count = item
            result = SmpResult.from_dict(payload)
            label = f"{workload.name}x{cpu_count}P@{config.name}"
            self._smp_cache[key] = result
            self._disk_store_smp(key, result, workload)
        self.stats.record_run(label, seconds, pid)
        self._log(
            f"  [{done_count}/{total}] worker {pid} finished {label} "
            f"in {seconds:.2f}s"
        )

    def _recover(self, kind, item, error) -> None:
        """A worker died or raised: rerun this one request in-process."""
        self.stats.worker_fallbacks += 1
        if isinstance(error, BrokenExecutor):
            # A dead pool stays dead; drop it so later batches rebuild one.
            self._discard_pool()
        if kind == "up":
            key, config, workload = item
            self._log(
                f"  worker failed on {workload.name}@{config.name} "
                f"({error!r}); rerunning in-process"
            )
            self._run_pending_inline([item], [])
        else:
            key, config, workload, cpu_count = item
            self._log(
                f"  worker failed on {workload.name}x{cpu_count}P@{config.name} "
                f"({error!r}); rerunning in-process"
            )
            self._run_pending_inline([], [item])

    def summary(self) -> str:
        """One-line observability summary (cache + execution counters)."""
        stats = self.stats
        parts = [
            f"memory hits {stats.memory_hits}",
            f"disk hits {stats.disk_hits}",
            f"misses {stats.misses}",
            f"in-process runs {stats.runs_in_process}",
            f"worker runs {stats.runs_in_workers}",
            f"fallbacks {stats.worker_fallbacks}",
            f"sim time {stats.total_run_seconds:.1f}s",
        ]
        if self.cache is not None:
            parts.append(f"cache corrupt {self.cache.stats.corrupt}")
        return ", ".join(parts)
