"""Shape-regression harness: every paper claim as a checkable item.

Runs the full evaluation matrix and grades each of the paper's
qualitative claims PASS / WEAK / FAIL, producing the scorecard that
EXPERIMENTS.md summarises.  Useful as a one-command acceptance check
after any change to the simulator or the workload profiles:

    python -m repro.analysis.regress          (full scale, ~10 min)
    python -m repro.analysis.regress --quick  (reduced traces)
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.figures import (
    fig07_characteristics,
    fig08_issue_width,
    fig09_10_bht,
    fig11_12_13_l1,
    fig16_17_prefetch,
    fig18_reservation,
)
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import standard_workloads


@dataclass
class Claim:
    """One paper statement and how the reproduction scores it."""

    figure: str
    statement: str
    verdict: str  # PASS / WEAK / FAIL
    measured: str

    @property
    def ok(self) -> bool:
        return self.verdict != "FAIL"


@dataclass
class Scorecard:
    claims: List[Claim] = field(default_factory=list)

    def add(self, figure: str, statement: str, value: float,
            pass_when: Callable[[float], bool],
            weak_when: Optional[Callable[[float], bool]] = None,
            fmt: str = "{:.3f}") -> None:
        if pass_when(value):
            verdict = "PASS"
        elif weak_when is not None and weak_when(value):
            verdict = "WEAK"
        else:
            verdict = "FAIL"
        self.claims.append(
            Claim(figure, statement, verdict, fmt.format(value))
        )

    def format_table(self) -> str:
        rows = [
            (claim.figure, claim.verdict, claim.measured, claim.statement)
            for claim in self.claims
        ]
        summary = (
            f"{sum(c.verdict == 'PASS' for c in self.claims)} PASS, "
            f"{sum(c.verdict == 'WEAK' for c in self.claims)} WEAK, "
            f"{sum(c.verdict == 'FAIL' for c in self.claims)} FAIL"
        )
        return (
            format_table(["figure", "verdict", "measured", "paper claim"], rows)
            + f"\n\n{summary}"
        )

    @property
    def failed(self) -> List[Claim]:
        return [claim for claim in self.claims if claim.verdict == "FAIL"]


def run_scorecard(warm: int = 100_000, timed: int = 25_000) -> Scorecard:
    """Run the matrix and grade every claim."""
    workloads = standard_workloads(warm=warm, timed=timed)
    runner = ExperimentRunner(verbose=True)
    card = Scorecard()

    # Figure 7.
    breakdown = {
        item.trace_name: item
        for item in fig07_characteristics(workloads).breakdowns
    }
    card.add("Fig7", "SPECint95 ~30% branch stalls",
             breakdown["SPECint95"].branch,
             lambda v: 0.15 <= v <= 0.45)
    card.add("Fig7", "SPECfp95 is core-execution heavy (paper 74%)",
             breakdown["SPECfp95"].core,
             lambda v: v >= 0.55, weak_when=lambda v: v >= 0.30)
    card.add("Fig7", "TPC-C large sx (L2-miss) share (paper 35%)",
             breakdown["TPC-C"].sx,
             lambda v: 0.20 <= v <= 0.60, weak_when=lambda v: v > 0.10)

    # Figure 8.
    issue = fig08_issue_width(workloads, runner).ratios
    int_best = max(issue["SPECint95"], issue["SPECint2000"])
    others = max(issue["SPECfp95"], issue["SPECfp2000"], issue["TPC-C"])
    card.add("Fig8", "SPECint gains most from 4-way issue",
             int_best - others, lambda v: v > 0.0)
    card.add("Fig8", "4-way materially faster for SPECint",
             int_best, lambda v: v > 1.05)

    # Figures 9/10.
    bht = fig09_10_bht(workloads, runner)
    tpcc_increase = (
        (bht.mispredict_4k["TPC-C"] - bht.mispredict_16k["TPC-C"])
        / max(bht.mispredict_16k["TPC-C"], 1e-9)
    )
    card.add("Fig10", "TPC-C failures increase with 4K BHT (paper +60%)",
             tpcc_increase, lambda v: v >= 0.30, weak_when=lambda v: v >= 0.05)
    spec_deltas = [
        abs(bht.mispredict_4k[name] - bht.mispredict_16k[name])
        for name in ("SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000")
    ]
    card.add("Fig10", "SPEC shows no BHT-size failure difference",
             max(spec_deltas), lambda v: v < 0.01)
    card.add("Fig9", "TPC-C IPC favours 16K BHT (paper -5.6% with 4K)",
             bht.ipc_ratio.ratios["TPC-C"],
             lambda v: v < 1.0, weak_when=lambda v: v < 1.02)

    # Figures 11-13.
    l1 = fig11_12_13_l1(workloads, runner)
    imiss_growth = l1.imiss_32k["TPC-C"] / max(l1.imiss_128k["TPC-C"], 1e-9)
    dmiss_growth = l1.dmiss_32k["TPC-C"] / max(l1.dmiss_128k["TPC-C"], 1e-9)
    card.add("Fig12", "TPC-C I-miss grows with 32KB L1 (paper +99%)",
             imiss_growth, lambda v: 1.5 <= v <= 4.0,
             weak_when=lambda v: v > 1.2)
    card.add("Fig13", "TPC-C D-miss grows with 32KB L1 (paper +64%)",
             dmiss_growth, lambda v: 1.3 <= v <= 3.5,
             weak_when=lambda v: v > 1.1)
    card.add("Fig11", "small L1 costs TPC-C IPC (paper -2.0%)",
             l1.ipc_ratio.ratios["TPC-C"], lambda v: v < 1.0)

    # Figures 16/17.
    prefetch = fig16_17_prefetch(workloads, runner)
    fp_gain = max(
        prefetch.ipc_ratio.ratios["SPECfp95"],
        prefetch.ipc_ratio.ratios["SPECfp2000"],
    ) - 1.0
    card.add("Fig16", "SPECfp gains >13% IPC from prefetch",
             fp_gain, lambda v: v > 0.13, weak_when=lambda v: v > 0.04,
             fmt="{:+.1%}")
    card.add(
        "Fig17", "prefetch cuts SPECfp demand L2 misses",
        prefetch.miss_without["SPECfp2000"]
        - prefetch.miss_with_demand["SPECfp2000"],
        lambda v: v > 0.0,
    )

    # Figure 18.
    rs = fig18_reservation(workloads, runner).ratios
    card.add("Fig18", "2RS slightly below 1RS on every workload",
             max(rs.values()), lambda v: v <= 1.02)

    return card


def main() -> None:
    quick = "--quick" in sys.argv
    warm, timed = (30_000, 8_000) if quick else (100_000, 25_000)
    card = run_scorecard(warm=warm, timed=timed)
    print()
    print(card.format_table())
    if card.failed:
        sys.exit(1)


if __name__ == "__main__":  # pragma: no cover
    main()
