"""Checkpointed campaign manifests for resumable sweeps and figures.

A figure or sweep campaign is a batch of (config, workload[, cpus])
runs.  The persistent :class:`~repro.analysis.cache.ResultCache`
already makes a restarted campaign cheap — completed runs replay from
disk — but it cannot *tell you* what a killed campaign had finished.
:class:`CampaignManifest` does: every completed run appends one record
to an append-only JSONL file, fsync'd so a power cut cannot lose it,
and a restarted campaign loads the manifest to report exactly which
keys remain (``python -m repro sweeps --resume`` prints the count).

Robustness properties, each covered by ``tests/test_campaign.py``:

- appends are atomic at the line level (single ``write`` + flush +
  fsync of a ``\\n``-terminated record), and the file is opened in
  append mode (``O_APPEND``), so *concurrent* appenders — two runner
  processes sharing one manifest file — interleave at record
  granularity rather than corrupting each other;
- a truncated final line — the signature of a crash mid-append — is
  ignored on load and overwritten by the next append;
- a duplicate header line — two fresh appenders racing to initialise
  the same file — is recognised and skipped on load rather than
  counted as a torn record;
- a manifest written by a different code version is set aside (renamed
  to ``*.stale``) rather than trusted, because run keys embed the
  source-tree digest indirectly through the result cache;
- garbage headers raise :class:`~repro.common.errors.CampaignError`
  only when the caller demands strictness; the default is to quarantine
  and start fresh, matching the runner's degrade-don't-abort posture.

Keys are digests of (kind, config content hash, workload cache key,
cpu count) — the same identity the result cache uses — so "manifest
says complete" and "cache can serve it" refer to the same run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.common.errors import CampaignError
from repro.common.hashing import code_version

#: Manifest header format version; bump when the record layout changes.
MANIFEST_FORMAT = 1


class CampaignManifest:
    """Append-only record of completed runs for one campaign."""

    def __init__(
        self,
        path: Union[str, Path],
        code_hash: Optional[str] = None,
        strict: bool = False,
    ) -> None:
        self.path = Path(path)
        self.code_hash = code_hash or code_version()
        self.strict = strict
        #: key -> human-readable label, in completion order.
        self._completed: Dict[str, str] = {}
        #: Lines dropped on load (truncated tail, foreign garbage).
        self.recovered_drops = 0
        #: True when this manifest resumed an earlier, interrupted file.
        self.resumed = False
        self._handle = None
        self._load()

    # -- keys ------------------------------------------------------------

    def key(self, kind: str, *parts: object) -> str:
        """Digest naming one run (same identity as the result cache)."""
        material = "\x1f".join([kind] + [str(part) for part in parts])
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    # -- load ------------------------------------------------------------

    def _quarantine(self, reason: str) -> None:
        """Set a bad/stale manifest aside and start fresh."""
        if self.strict:
            raise CampaignError(f"manifest {self.path}: {reason}")
        stale = self.path.with_suffix(self.path.suffix + ".stale")
        try:
            os.replace(self.path, stale)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        self._completed = {}

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            self._quarantine(f"unreadable ({exc})")
            return
        lines = raw.split("\n")
        if not lines or not lines[0].strip():
            self._quarantine("empty or headerless")
            return
        try:
            header = json.loads(lines[0])
            if header.get("campaign") != MANIFEST_FORMAT:
                raise ValueError("format mismatch")
        except (ValueError, AttributeError):
            self._quarantine("unrecognised header")
            return
        if header.get("code") != self.code_hash:
            # Simulator changed since the campaign started: its cached
            # results are invalid anyway, so the bookkeeping is too.
            self._quarantine(
                f"written by code version {header.get('code')!r}, "
                f"current is {self.code_hash!r}"
            )
            return
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if isinstance(record, dict) and "campaign" in record:
                    # A second header: two fresh appenders raced to
                    # initialise the file.  Benign, not a torn record.
                    continue
                key = record["key"]
            except (ValueError, KeyError, TypeError):
                # A torn final append (crash mid-write) or stray bytes:
                # drop the line; the run will simply be redone/recached.
                self.recovered_drops += 1
                continue
            self._completed[str(key)] = str(record.get("label", ""))
        self.resumed = bool(self._completed)

    # -- append ----------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            torn_tail = False
            if not fresh:
                with open(self.path, "rb") as peek:
                    peek.seek(-1, os.SEEK_END)
                    torn_tail = peek.read(1) != b"\n"
            self._handle = open(self.path, "a", encoding="utf-8")
            if torn_tail:
                # Seal a torn final line (crash mid-append) so the next
                # record starts on its own line instead of extending the
                # garbage; the torn line itself is dropped on load.
                self._handle.write("\n")
            if fresh:
                self._append_line(
                    {"campaign": MANIFEST_FORMAT, "code": self.code_hash}
                )
        return self._handle

    def _append_line(self, record: dict) -> None:
        handle = self._handle
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def mark(self, key: str, label: str = "") -> None:
        """Record one completed run (idempotent)."""
        if key in self._completed:
            return
        self._open()
        self._append_line({"key": key, "label": label})
        self._completed[key] = label

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignManifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries ---------------------------------------------------------

    def is_done(self, key: str) -> bool:
        return key in self._completed

    @property
    def completed(self) -> Dict[str, str]:
        """Completed key -> label map (copy)."""
        return dict(self._completed)

    def __len__(self) -> int:
        return len(self._completed)

    def summary(self) -> str:
        state = "resumed" if self.resumed else "new"
        note = (
            f", {self.recovered_drops} torn line(s) recovered"
            if self.recovered_drops
            else ""
        )
        return f"campaign manifest {self.path} ({state}, {len(self)} complete{note})"
