"""Reproduction functions, one per figure of the paper's §4.

Each function runs the necessary (configuration × workload) matrix on an
:class:`~repro.analysis.runner.ExperimentRunner` and returns a result
object carrying both the raw numbers and a ``format_table()`` renderer
that prints the same series the paper plots.

Paper-reported values to compare shapes against are embedded as
``PAPER_*`` constants where the text states them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table, percent
from repro.analysis.runner import ExperimentRunner
from repro.analysis.workloads import (
    Workload,
    smp_workload,
    standard_workloads,
    tpcc_workload,
)
from repro.model.config import (
    MachineConfig,
    base_config,
    bht_4k_2w_1t,
    issue_2way,
    l1_32k_1w_3c,
    l2_off_8m_1w,
    l2_off_8m_2w,
    one_rs,
    prefetch_off,
)
from repro.model.perfect import (
    StallBreakdown,
    breakdown_from_cycles,
    perfect_variants,
)
from repro.observe.cpistack import render_stack_table

#: Paper statements used for shape checks (values from §4 text).
PAPER_FIG7_TPCC_SX = 0.35  # TPC-C spends 35% of time on L2-miss stalls
PAPER_FIG7_SPECINT95_BRANCH = 0.30  # SPECint95: 30% on branch stalls
PAPER_FIG7_SPECFP95_CORE = 0.74  # SPECfp95: 74% core execution
PAPER_FIG9_TPCC_IPC_DROP = 0.056  # 4k-2w.1t loses 5.6% IPC on TPC-C
PAPER_FIG10_TPCC_MISPREDICT_INCREASE = 0.60  # +60% failures with 4k BHT
PAPER_FIG11_TPCC_IPC_DROP = 0.020  # 32k-1w.3c loses 2.0% IPC on TPC-C
PAPER_FIG12_TPCC_IMISS_INCREASE = 0.99  # +99% I-miss with 32 KB L1
PAPER_FIG13_TPCC_DMISS_INCREASE = 0.64  # +64% D-miss with 32 KB L1
PAPER_FIG14_TPCC_UP_DROP_8M1W = 0.14  # off.8m-1w loses 14% on TPC-C UP
PAPER_FIG14_TPCC_16P_DROP_8M1W = 0.124  # and 12.4% on TPC-C 16P
PAPER_FIG16_SPECFP_GAIN = 0.13  # prefetch gains >13% IPC on SPECfp


# ---------------------------------------------------------------------------
# Figure 7 — benchmark characteristics.
# ---------------------------------------------------------------------------


@dataclass
class Fig07Result:
    """Execution-time breakdowns (Figure 7)."""

    breakdowns: List[StallBreakdown]

    def format_table(self) -> str:
        rows = [
            (
                item.trace_name,
                percent(item.core),
                percent(item.branch),
                percent(item.ibs_tlb),
                percent(item.sx),
            )
            for item in self.breakdowns
        ]
        return format_table(
            ["workload", "core", "branch", "ibs/tlb", "sx"], rows
        )


def fig07_characteristics(
    workloads: Optional[List[Workload]] = None,
    config: Optional[MachineConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Fig07Result:
    """Figure 7: stall breakdown via perfect-structure models.

    The four models per workload (base, perfect L2, perfect L1+TLB,
    perfect everything) go through ``runner`` so they parallelise and
    cache like every other figure's runs.
    """
    workloads = workloads or standard_workloads()
    config = config or base_config()
    runner = runner or ExperimentRunner()
    variants = perfect_variants(config)
    runner.prefetch(
        up=[(variant, w) for variant in variants for w in workloads]
    )
    breakdowns = []
    for workload in workloads:
        cycles = [runner.run(variant, workload).cycles for variant in variants]
        breakdown = breakdown_from_cycles(workload.name, *cycles)
        breakdowns.append(breakdown)
    return Fig07Result(breakdowns)


# ---------------------------------------------------------------------------
# Measured CPI stacks (the cycle-attribution companion to Figure 7).
# ---------------------------------------------------------------------------


@dataclass
class CpiStackResult:
    """Measured per-workload CPI stacks from the cycle accountant.

    Figure 7 derives its breakdown from perfect-structure model *deltas*;
    this is the same question answered by direct attribution — every
    simulated cycle charged to one stall category, conserving the total.
    Both tables are printed so the two methodologies can be compared.
    """

    stacks: Dict[str, Dict[str, int]]  # row label -> category -> cycles
    cycles: Dict[str, int]

    def format_table(self) -> str:
        fine = render_stack_table(self.stacks)
        fig7 = render_stack_table(self.stacks, fig7=True)
        return (
            "measured CPI stacks (fraction of cycles):\n"
            f"{fine}\n\n"
            "collapsed onto Figure 7 buckets:\n"
            f"{fig7}"
        )


def fig_cpistack(
    workloads: Optional[List[Workload]] = None,
    config: Optional[MachineConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> CpiStackResult:
    """Measured CPI stacks for the standard workloads on one config."""
    workloads = workloads or standard_workloads()
    config = config or base_config()
    runner = runner or ExperimentRunner()
    runner.prefetch(up=[(config, w) for w in workloads])
    stacks: Dict[str, Dict[str, int]] = {}
    cycles: Dict[str, int] = {}
    for workload in workloads:
        result = runner.run(config, workload)
        stacks[workload.name] = dict(result.core.cpi_stack)
        cycles[workload.name] = result.cycles
    return CpiStackResult(stacks, cycles)


# ---------------------------------------------------------------------------
# Generic two-config IPC-ratio figure (Figures 8, 9, 11, 18 share shape).
# ---------------------------------------------------------------------------


@dataclass
class IpcRatioResult:
    """IPC of an alternative config relative to a baseline, per workload.

    A ``None`` ratio marks a workload whose run was abandoned by the
    failure policy; the table shows ``n/a`` and footnotes the gap.
    """

    title: str
    baseline_name: str
    alternative_name: str
    ratios: Dict[str, Optional[float]]  # workload -> alt IPC / baseline IPC
    extras: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def missing(self) -> List[str]:
        return [name for name, ratio in self.ratios.items() if ratio is None]

    def format_table(self) -> str:
        rows = [
            (name, "n/a", "n/a")
            if ratio is None
            else (name, f"{ratio:.4f}", percent(ratio - 1.0, 2))
            for name, ratio in self.ratios.items()
        ]
        table = format_table(
            ["workload", f"{self.alternative_name}/{self.baseline_name}", "delta"],
            rows,
        )
        rendered = f"{self.title}\n{table}"
        if self.missing:
            rendered += (
                f"\npartial: {len(self.missing)} workload(s) skipped after "
                f"repeated failures ({', '.join(self.missing)})"
            )
        return rendered


def _ipc_ratio_study(
    title: str,
    baseline: MachineConfig,
    alternative: MachineConfig,
    workloads: List[Workload],
    runner: ExperimentRunner,
) -> IpcRatioResult:
    # Fan the whole (config × workload) matrix out first; a parallel
    # runner executes it across workers, the serial one stays lazy.
    runner.prefetch(
        up=[(config, w) for config in (baseline, alternative) for w in workloads]
    )
    ratios: Dict[str, Optional[float]] = {}
    for workload in workloads:
        base_result = runner.try_run(baseline, workload)
        alt_result = runner.try_run(alternative, workload)
        if base_result is None or alt_result is None:
            ratios[workload.name] = None
            continue
        ratios[workload.name] = (
            alt_result.ipc / base_result.ipc if base_result.ipc else 0.0
        )
    return IpcRatioResult(title, baseline.name, alternative.name, ratios)


def fig08_issue_width(
    workloads: Optional[List[Workload]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> IpcRatioResult:
    """Figure 8: 4-way vs 2-way issue (reported as 4-way over 2-way)."""
    workloads = workloads or standard_workloads()
    runner = runner or ExperimentRunner()
    result = _ipc_ratio_study(
        "Figure 8: issue width (IPC of 4-way relative to 2-way)",
        issue_2way(),
        base_config(),
        workloads,
        runner,
    )
    return result


# ---------------------------------------------------------------------------
# Figures 9 and 10 — branch history table.
# ---------------------------------------------------------------------------


@dataclass
class BhtStudyResult:
    """Figure 9 (IPC ratio) + Figure 10 (misprediction rates)."""

    ipc_ratio: IpcRatioResult
    mispredict_16k: Dict[str, float]
    mispredict_4k: Dict[str, float]

    def format_table(self) -> str:
        rows = []
        for name in self.mispredict_16k:
            big = self.mispredict_16k[name]
            small = self.mispredict_4k[name]
            increase = (small - big) / big if big else 0.0
            rows.append(
                (
                    name,
                    f"{self.ipc_ratio.ratios[name]:.4f}",
                    percent(big, 2),
                    percent(small, 2),
                    percent(increase, 0),
                )
            )
        return (
            "Figures 9/10: BHT 4k-2w.1t versus 16k-4w.2t\n"
            + format_table(
                [
                    "workload",
                    "IPC(4k)/IPC(16k)",
                    "mispredict 16k-4w.2t",
                    "mispredict 4k-2w.1t",
                    "failure increase",
                ],
                rows,
            )
        )


def fig09_10_bht(
    workloads: Optional[List[Workload]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> BhtStudyResult:
    """Figures 9 and 10: BHT latency-versus-size trade-off."""
    workloads = workloads or standard_workloads()
    runner = runner or ExperimentRunner()
    baseline = base_config()
    alternative = bht_4k_2w_1t()
    ratio = _ipc_ratio_study(
        "Figure 9: IPC of 4k-2w.1t relative to 16k-4w.2t",
        baseline,
        alternative,
        workloads,
        runner,
    )
    big = {
        w.name: runner.run(baseline, w).bht_misprediction_ratio for w in workloads
    }
    small = {
        w.name: runner.run(alternative, w).bht_misprediction_ratio for w in workloads
    }
    return BhtStudyResult(ratio, big, small)


# ---------------------------------------------------------------------------
# Figures 11, 12, 13 — level-one cache.
# ---------------------------------------------------------------------------


@dataclass
class L1StudyResult:
    """Figure 11 (IPC) + Figures 12/13 (I and D miss ratios)."""

    ipc_ratio: IpcRatioResult
    imiss_128k: Dict[str, float]
    imiss_32k: Dict[str, float]
    dmiss_128k: Dict[str, float]
    dmiss_32k: Dict[str, float]

    def format_table(self) -> str:
        rows = []
        for name in self.imiss_128k:
            rows.append(
                (
                    name,
                    f"{self.ipc_ratio.ratios[name]:.4f}",
                    percent(self.imiss_128k[name], 2),
                    percent(self.imiss_32k[name], 2),
                    percent(self.dmiss_128k[name], 2),
                    percent(self.dmiss_32k[name], 2),
                )
            )
        return (
            "Figures 11-13: L1 32k-1w.3c versus 128k-2w.4c\n"
            + format_table(
                [
                    "workload",
                    "IPC(32k)/IPC(128k)",
                    "I-miss 128k",
                    "I-miss 32k",
                    "D-miss 128k",
                    "D-miss 32k",
                ],
                rows,
            )
        )


def fig11_12_13_l1(
    workloads: Optional[List[Workload]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> L1StudyResult:
    """Figures 11–13: L1 cache latency-versus-volume trade-off."""
    workloads = workloads or standard_workloads()
    runner = runner or ExperimentRunner()
    baseline = base_config()
    alternative = l1_32k_1w_3c()
    ratio = _ipc_ratio_study(
        "Figure 11: IPC of 32k-1w.3c relative to 128k-2w.4c",
        baseline,
        alternative,
        workloads,
        runner,
    )
    return L1StudyResult(
        ipc_ratio=ratio,
        imiss_128k={w.name: runner.run(baseline, w).miss_ratio("l1i") for w in workloads},
        imiss_32k={w.name: runner.run(alternative, w).miss_ratio("l1i") for w in workloads},
        dmiss_128k={w.name: runner.run(baseline, w).miss_ratio("l1d") for w in workloads},
        dmiss_32k={w.name: runner.run(alternative, w).miss_ratio("l1d") for w in workloads},
    )


# ---------------------------------------------------------------------------
# Figures 14 and 15 — on-chip vs off-chip L2, including TPC-C (16P).
# ---------------------------------------------------------------------------


@dataclass
class L2StudyResult:
    """Figure 14 (IPC ratios) + Figure 15 (L2 miss ratios)."""

    #: workload -> config label -> IPC relative to on.2m-4w
    ipc_ratios: Dict[str, Dict[str, float]]
    #: workload -> config label -> L2 demand miss ratio
    miss_ratios: Dict[str, Dict[str, float]]
    labels: List[str] = field(
        default_factory=lambda: ["on.2m-4w", "off.8m-2w", "off.8m-1w"]
    )

    def format_table(self) -> str:
        rows = []
        for name, per_config in self.ipc_ratios.items():
            misses = self.miss_ratios[name]
            rows.append(
                (
                    name,
                    *(f"{per_config[label]:.4f}" for label in self.labels),
                    *(percent(misses[label], 2) for label in self.labels),
                )
            )
        headers = (
            ["workload"]
            + [f"IPC {label}" for label in self.labels]
            + [f"L2 miss {label}" for label in self.labels]
        )
        return "Figures 14/15: L2 design study\n" + format_table(headers, rows)


def fig14_15_l2(
    workloads: Optional[List[Workload]] = None,
    runner: Optional[ExperimentRunner] = None,
    smp_cpus: int = 16,
    include_smp: bool = True,
    smp_workload_override: Optional[Workload] = None,
) -> L2StudyResult:
    """Figures 14/15: on-chip 2 MB vs off-chip 8 MB L2 (+TPC-C SMP)."""
    workloads = workloads or standard_workloads()
    runner = runner or ExperimentRunner()
    configs = {
        "on.2m-4w": base_config(),
        "off.8m-2w": l2_off_8m_2w(),
        "off.8m-1w": l2_off_8m_1w(),
    }
    smp = smp_workload_override or smp_workload(smp_cpus)
    runner.prefetch(
        up=[(config, w) for config in configs.values() for w in workloads],
        smp=(
            [(config, smp, smp_cpus) for config in configs.values()]
            if include_smp
            else []
        ),
    )
    ipc_ratios: Dict[str, Dict[str, float]] = {}
    miss_ratios: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        ipcs = {}
        misses = {}
        for label, config in configs.items():
            result = runner.run(config, workload)
            ipcs[label] = result.ipc
            misses[label] = result.miss_ratio("l2")
        base_ipc = ipcs["on.2m-4w"]
        ipc_ratios[workload.name] = {
            label: value / base_ipc if base_ipc else 0.0
            for label, value in ipcs.items()
        }
        miss_ratios[workload.name] = misses

    if include_smp:
        ipcs = {}
        misses = {}
        for label, config in configs.items():
            result = runner.run_smp(config, smp, smp_cpus)
            ipcs[label] = result.ipc
            misses[label] = result.l2_miss_ratio()
        base_ipc = ipcs["on.2m-4w"]
        ipc_ratios[smp.name] = {
            label: value / base_ipc if base_ipc else 0.0
            for label, value in ipcs.items()
        }
        miss_ratios[smp.name] = misses

    return L2StudyResult(ipc_ratios=ipc_ratios, miss_ratios=miss_ratios)


# ---------------------------------------------------------------------------
# Figures 16 and 17 — hardware prefetching.
# ---------------------------------------------------------------------------


@dataclass
class PrefetchStudyResult:
    """Figure 16 (IPC impact) + Figure 17 (L2 miss with/without)."""

    ipc_ratio: IpcRatioResult  # with-prefetch relative to without
    miss_with: Dict[str, float]  # all requests including prefetches
    miss_with_demand: Dict[str, float]  # demand requests only
    miss_without: Dict[str, float]

    def format_table(self) -> str:
        rows = []
        for name in self.miss_with:
            rows.append(
                (
                    name,
                    f"{self.ipc_ratio.ratios[name]:.4f}",
                    percent(self.miss_with[name], 2),
                    percent(self.miss_with_demand[name], 2),
                    percent(self.miss_without[name], 2),
                )
            )
        return (
            "Figures 16/17: hardware prefetching\n"
            + format_table(
                [
                    "workload",
                    "IPC(with)/IPC(without)",
                    "L2 miss with",
                    "L2 miss with-Demand",
                    "L2 miss without",
                ],
                rows,
            )
        )


def fig16_17_prefetch(
    workloads: Optional[List[Workload]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> PrefetchStudyResult:
    """Figures 16/17: L2 hardware prefetch on versus off."""
    workloads = workloads or standard_workloads()
    runner = runner or ExperimentRunner()
    with_pf = base_config()
    without_pf = prefetch_off()
    ratio = _ipc_ratio_study(
        "Figure 16: IPC with prefetch relative to without",
        without_pf,
        with_pf,
        workloads,
        runner,
    )
    return PrefetchStudyResult(
        ipc_ratio=ratio,
        miss_with={
            w.name: runner.run(with_pf, w).miss_ratio("l2", demand_only=False)
            for w in workloads
        },
        miss_with_demand={
            w.name: runner.run(with_pf, w).miss_ratio("l2") for w in workloads
        },
        miss_without={
            w.name: runner.run(without_pf, w).miss_ratio("l2") for w in workloads
        },
    )


# ---------------------------------------------------------------------------
# Figure 18 — reservation-station organisation.
# ---------------------------------------------------------------------------


def fig18_reservation(
    workloads: Optional[List[Workload]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> IpcRatioResult:
    """Figure 18: 2RS relative to 1RS (paper: 2RS slightly lower)."""
    workloads = workloads or standard_workloads()
    runner = runner or ExperimentRunner()
    return _ipc_ratio_study(
        "Figure 18: IPC of 2RS relative to 1RS",
        one_rs(),
        base_config(),
        workloads,
        runner,
    )
