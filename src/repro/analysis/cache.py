"""Persistent on-disk experiment-result cache.

Every figure and sweep funnels through the same handful of
(configuration, workload[, cpu count]) simulations, and those results
only change when the simulator itself does.  :class:`ResultCache`
memoises them as JSON files under ``.repro_cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable), keyed by

- a content hash of the :class:`~repro.model.config.MachineConfig`
  (every parameter, not just the display name),
- the workload's :meth:`~repro.analysis.workloads.Workload.cache_key`,
- the CPU count (SMP runs),
- and a digest of the ``repro`` source tree, so editing the simulator
  invalidates all previously cached results automatically.

Corrupt or truncated entries — an interrupted write, a stray editor —
are detected on load, deleted, and reported as misses; callers then fall
back to a fresh run.  Writes are atomic *and* durable: the payload is
written to a temporary file, flushed and ``fsync``'d, then moved into
place with ``os.replace`` (followed by a best-effort directory fsync),
so neither a crash mid-write nor a power cut can leave a half-entry
visible to a concurrent reader — the entry either exists completely or
not at all.  The ``kill-mid-write`` and ``store-corrupt`` fault classes
(:mod:`repro.common.faults`) target exactly this window in tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.common import faults
from repro.common.hashing import code_version

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"
#: Envelope format version; bump when the payload layout changes.
CACHE_FORMAT = 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }


class ResultCache:
    """JSON-file result cache keyed by config + workload + code version."""

    def __init__(
        self,
        directory: Optional[str] = None,
        code_hash: Optional[str] = None,
    ) -> None:
        self.directory = Path(
            directory
            or os.environ.get("REPRO_CACHE_DIR")
            or DEFAULT_CACHE_DIR
        )
        self.code_hash = code_hash or code_version()
        self.stats = CacheStats()

    # -- keys ------------------------------------------------------------

    def key(
        self,
        kind: str,
        config_hash: str,
        workload_key: str,
        cpu_count: Optional[int] = None,
    ) -> str:
        """Digest naming one cached run."""
        material = "\x1f".join(
            (kind, config_hash, workload_key, str(cpu_count), self.code_hash)
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- load / store ----------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or None on miss/corruption."""
        path = self.path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            return None
        try:
            envelope = json.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("cache envelope is not an object")
            if envelope.get("format") != CACHE_FORMAT:
                raise ValueError("cache format mismatch")
            if envelope.get("code") != self.code_hash:
                raise ValueError("stale code version")
            payload = envelope["payload"]
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not an object")
        except (ValueError, KeyError, TypeError):
            # Corrupt, truncated, or stale: remove and treat as a miss.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def store(self, key: str, payload: dict, meta: Optional[dict] = None) -> None:
        """Atomically persist ``payload`` under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": CACHE_FORMAT,
            "code": self.code_hash,
            "meta": meta or {},
            "payload": payload,
        }
        # Serialise first so fault injection (testing) can damage the
        # byte stream exactly the way a crashed non-atomic writer would.
        text = faults.corrupt_cache_text(json.dumps(envelope), key)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            # The atomicity claim under test: a writer killed here must
            # leave the previous entry (or no entry) visible, never a
            # torn one.
            faults.kill_mid_write(key)
            os.replace(tmp_name, self.path(key))
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._fsync_directory()
        faults.corrupt_store_file(self.path(key))
        self.stats.stores += 1

    def _fsync_directory(self) -> None:
        """Best-effort fsync of the cache directory (persists the rename)."""
        try:
            dir_fd = os.open(str(self.directory), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    # -- inspection ------------------------------------------------------

    def scan(self, current_code_only: bool = True):
        """Yield ``(meta, payload)`` for every readable entry on disk.

        Powers ``repro analyze cpistack``: render cached results without
        re-simulating.  Unreadable entries are skipped silently (load()
        owns corruption handling); with ``current_code_only`` entries
        written by a different simulator version are skipped too.
        """
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(envelope, dict):
                continue
            if envelope.get("format") != CACHE_FORMAT:
                continue
            if current_code_only and envelope.get("code") != self.code_hash:
                continue
            payload = envelope.get("payload")
            meta = envelope.get("meta")
            if not isinstance(payload, dict):
                continue
            yield (meta if isinstance(meta, dict) else {}), payload

    # -- maintenance -----------------------------------------------------

    def entries(self) -> int:
        """Number of cache files currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def size_bytes(self) -> int:
        """Total bytes occupied by cache files."""
        if not self.directory.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
