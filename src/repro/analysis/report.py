"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    columns = [
        [str(header)] + [str(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
