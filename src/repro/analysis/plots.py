"""Plain-text rendering of figure results: bar charts and CSV export.

The paper presents its studies as bar charts; these helpers render the
reproduction's result objects the same way for terminals and logs, and
export the underlying numbers as CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: Glyph used for bar bodies.
_BAR = "█"
_HALF = "▌"


def bar_chart(
    series: Mapping[str, Number],
    title: str = "",
    width: int = 48,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Render a horizontal bar chart.

    ``baseline`` draws a reference mark (e.g. 1.0 for IPC ratios) as a
    ``|`` at the corresponding position.
    """
    if not series:
        return title
    label_width = max(len(str(label)) for label in series)
    maximum = max(max(series.values()), baseline or 0.0, 1e-12)
    lines = [title] if title else []
    for label, value in series.items():
        filled = value / maximum * width
        bar = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += _HALF
        if baseline is not None:
            mark = min(int(baseline / maximum * width), width - 1)
            padded = list(bar.ljust(width))
            if 0 <= mark < width and padded[mark] == " ":
                padded[mark] = "|"
            bar = "".join(padded).rstrip()
        lines.append(f"{str(label):<{label_width}}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, Number]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Render groups of bars (one group per workload, one bar per config)."""
    lines = [title] if title else []
    all_values = [
        value for group in groups.values() for value in group.values()
    ]
    if not all_values:
        return title
    maximum = max(max(all_values), 1e-12)
    bar_labels = {label for group in groups.values() for label in group}
    label_width = max(len(str(label)) for label in bar_labels)
    for group_name, group in groups.items():
        lines.append(f"{group_name}:")
        for label, value in group.items():
            filled = int(value / maximum * width)
            lines.append(
                f"  {str(label):<{label_width}}  {_BAR * filled} {value:.4g}{unit}"
            )
    return "\n".join(lines)


def stacked_breakdown_chart(
    rows: Mapping[str, Mapping[str, float]],
    order: Sequence[str],
    title: str = "",
    width: int = 50,
) -> str:
    """Render 100%-stacked bars (the Figure 7 presentation).

    ``rows`` maps a workload to {category: fraction}; fractions should sum
    to ~1.  Each category gets a distinct fill glyph.
    """
    glyphs = ["█", "▓", "▒", "░", "▞", "▚"]
    lines = [title] if title else []
    label_width = max((len(str(label)) for label in rows), default=0)
    legend = "  ".join(
        f"{glyphs[index % len(glyphs)]}={category}"
        for index, category in enumerate(order)
    )
    lines.append(legend)
    for label, fractions in rows.items():
        bar = ""
        for index, category in enumerate(order):
            segment = int(round(fractions.get(category, 0.0) * width))
            bar += glyphs[index % len(glyphs)] * segment
        lines.append(f"{str(label):<{label_width}}  {bar[:width]}")
    return "\n".join(lines)


def to_csv(
    rows: List[Mapping[str, object]],
    field_order: Optional[Sequence[str]] = None,
) -> str:
    """Serialise a list of dict rows to CSV text."""
    if not rows:
        return ""
    fields = list(field_order) if field_order else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def ipc_ratio_csv(result) -> str:
    """CSV for an :class:`~repro.analysis.figures.IpcRatioResult`."""
    rows = [
        {
            "workload": name,
            "ratio": round(ratio, 6),
            "baseline": result.baseline_name,
            "alternative": result.alternative_name,
        }
        for name, ratio in result.ratios.items()
    ]
    return to_csv(rows, ["workload", "ratio", "baseline", "alternative"])


def breakdown_csv(result) -> str:
    """CSV for a :class:`~repro.analysis.figures.Fig07Result`."""
    rows = [
        {
            "workload": item.trace_name,
            "core": round(item.core, 6),
            "branch": round(item.branch, 6),
            "ibs_tlb": round(item.ibs_tlb, 6),
            "sx": round(item.sx, 6),
        }
        for item in result.breakdowns
    ]
    return to_csv(rows, ["workload", "core", "branch", "ibs_tlb", "sx"])
