"""Statistical aggregation for sampled simulation.

SMARTS-style systematic sampling measures many short detailed windows
and treats each window's CPI (and each CPI-stack category's
cycles-per-instruction) as one observation.  Because the schedule gives
every window the same instruction count, the unweighted mean of
per-window CPIs equals the exact ratio estimator (total cycles over
total instructions), and the usual t-based confidence interval applies.
IPC bounds come from inverting the CPI interval — IPC is a reciprocal,
so its interval is the reciprocal of the CPI interval with the ends
swapped.

The module is dependency-free (no scipy): two-sided 95 % t quantiles
come from a small table up to 30 degrees of freedom and approach the
normal quantile beyond.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.errors import SimulationError
from repro.core.pipeline import CoreStats
from repro.memory.cache import CacheStats
from repro.observe.categories import CPI_CATEGORIES
from repro.observe.cpistack import merge as merge_stacks

#: Two-sided 95 % Student-t quantiles (P[|T| <= t] = 0.95) for df = 1..30.
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_quantile_975(df: int) -> float:
    """97.5th-percentile Student-t quantile (two-sided 95 % intervals)."""
    if df < 1:
        raise SimulationError("t quantile needs at least one degree of freedom")
    if df <= len(_T_975):
        return _T_975[df - 1]
    if df <= 40:
        return 2.021
    if df <= 60:
        return 2.000
    if df <= 120:
        return 1.980
    return 1.960


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a 95 % confidence interval."""

    mean: float
    lo: float
    hi: float
    stddev: float
    count: int

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (0 when the mean is 0)."""
        if self.mean == 0:
            return 0.0
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "lo": self.lo,
            "hi": self.hi,
            "stddev": self.stddev,
            "n": self.count,
        }

    @staticmethod
    def from_samples(values: Sequence[float]) -> "Estimate":
        """t-based 95 % interval for the mean of ``values``."""
        n = len(values)
        if n == 0:
            raise SimulationError("cannot estimate from zero samples")
        mean = sum(values) / n
        if n == 1:
            return Estimate(mean=mean, lo=mean, hi=mean, stddev=0.0, count=1)
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stddev = math.sqrt(variance)
        half = t_quantile_975(n - 1) * stddev / math.sqrt(n)
        return Estimate(mean=mean, lo=mean - half, hi=mean + half, stddev=stddev, count=n)

    def reciprocal(self) -> "Estimate":
        """Interval for 1/X given this interval for X (X bounded above 0)."""
        if self.mean <= 0:
            raise SimulationError("reciprocal needs a positive mean")
        lo = 1.0 / self.hi if self.hi > 0 else 0.0
        # A CPI interval straddling zero would invert to an unbounded IPC;
        # clamp to a finite (useless, but serialisable) bound.
        hi = 1.0 / self.lo if self.lo > 0 else 10.0 / self.mean
        return Estimate(
            mean=1.0 / self.mean, lo=lo, hi=hi, stddev=self.stddev, count=self.count
        )


# ----------------------------------------------------------------------
# Per-window measurement aggregation.
#
# A "measurement" is the flat counter dict produced by
# :meth:`repro.core.pipeline.ProcessorCore.run_measured` for one window.
# ----------------------------------------------------------------------

_CORE_INT_FIELDS = (
    "cycles",
    "instructions",
    "loads",
    "stores",
    "branches",
    "replays",
    "dispatches",
    "bank_conflicts",
    "store_forwards",
    "order_stalls",
    "fetch_icache_stall_cycles",
    "fetch_taken_bubble_cycles",
    "branch_mispredictions",
    "conditional_branches",
)


def sum_counts(dicts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for counts in dicts:
        for key, value in counts.items():
            out[key] = out.get(key, 0) + value
    return out


def merge_core_stats(measurements: Sequence[Dict]) -> CoreStats:
    """Sum per-window measurements into one :class:`CoreStats`.

    The merged CPI stack conserves cycles because each window's does.
    """
    core = CoreStats()
    for name in _CORE_INT_FIELDS:
        setattr(core, name, sum(m[name] for m in measurements))
    core.cpi_stack = merge_stacks([m["cpi_stack"] for m in measurements])
    core.decode_stalls = sum_counts([m["decode_stalls"] for m in measurements])
    core.load_level_counts = sum_counts([m["load_level_counts"] for m in measurements])
    return core


def merge_cache_counts(counts: Sequence[Dict[str, int]]) -> Dict[str, float]:
    """Sum raw per-window cache counters; ratios recomputed over totals."""
    return CacheStats(**sum_counts(counts)).as_dict()


def compute_estimates(measurements: Sequence[Dict]) -> Dict[str, Estimate]:
    """Point estimates with 95 % CIs for CPI, IPC and every stack category.

    Keys: ``"cpi"``, ``"ipc"``, and ``"cpi.<category>"`` for every
    CPI-stack category observed in any window.
    """
    if not measurements:
        raise SimulationError("cannot estimate from zero sample windows")
    for m in measurements:
        if m["instructions"] <= 0:
            raise SimulationError("sample window measured zero instructions")
    cpis = [m["cycles"] / m["instructions"] for m in measurements]
    cpi = Estimate.from_samples(cpis)
    out: Dict[str, Estimate] = {"cpi": cpi, "ipc": cpi.reciprocal()}

    observed = set()
    for m in measurements:
        observed.update(m["cpi_stack"])
    # Stable report order: canonical categories first, any others after.
    ordered = [c for c in CPI_CATEGORIES if c in observed]
    ordered += sorted(observed - set(CPI_CATEGORIES))
    for category in ordered:
        values = [
            m["cpi_stack"].get(category, 0) / m["instructions"] for m in measurements
        ]
        out[f"cpi.{category}"] = Estimate.from_samples(values)
    return out


def window_ipcs(measurements: Sequence[Dict]) -> List[float]:
    """Per-window IPCs (diagnostic view of the sample distribution)."""
    return [m["instructions"] / m["cycles"] for m in measurements if m["cycles"]]
