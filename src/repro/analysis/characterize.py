"""Workload characterisation reports (§4.1/§4.2 style).

Produces, for any trace, the kind of characterisation table the paper's
§4.2 builds its studies on: instruction mix, footprints, branch
behaviour, and — when a model run is supplied — the structural miss
ratios and the Figure 7 stall decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import format_table, percent
from repro.analysis.workloads import Workload
from repro.model.config import MachineConfig, base_config
from repro.model.perfect import StallBreakdown, stall_breakdown
from repro.model.simulator import PerformanceModel
from repro.model.stats import SimResult
from repro.trace.stream import Trace, TraceStats


@dataclass
class WorkloadReport:
    """Characterisation of one workload."""

    name: str
    trace_stats: TraceStats
    sim: Optional[SimResult] = None
    breakdown: Optional[StallBreakdown] = None

    def format_report(self) -> str:
        stats = self.trace_stats
        rows = [
            ("instructions", f"{stats.instruction_count:,}"),
            ("loads", percent(stats.load_fraction)),
            ("stores", percent(stats.store_fraction)),
            ("branches", percent(stats.branch_fraction)),
            ("taken branches", percent(stats.taken_branch_fraction)),
            ("floating point", percent(stats.fp_fraction)),
            ("kernel mode", percent(stats.privileged_fraction)),
            ("code footprint", f"{stats.code_footprint_bytes // 1024} KB"),
            ("data footprint", f"{stats.data_footprint_bytes // 1024} KB"),
        ]
        if self.sim is not None:
            rows += [
                ("IPC", f"{self.sim.ipc:.3f}"),
                ("L1I miss", percent(self.sim.miss_ratio("l1i"), 2)),
                ("L1D miss", percent(self.sim.miss_ratio("l1d"), 2)),
                ("L2 miss", percent(self.sim.miss_ratio("l2"), 2)),
                ("mispredict", percent(self.sim.bht_misprediction_ratio, 2)),
            ]
        if self.breakdown is not None:
            rows += [
                ("time: core", percent(self.breakdown.core)),
                ("time: branch", percent(self.breakdown.branch)),
                ("time: ibs/tlb", percent(self.breakdown.ibs_tlb)),
                ("time: sx", percent(self.breakdown.sx)),
            ]
        return f"=== {self.name} ===\n" + format_table(["metric", "value"], rows)


def characterize_trace(trace: Trace, name: Optional[str] = None) -> WorkloadReport:
    """Static characterisation only (no simulation)."""
    return WorkloadReport(name or trace.name, trace.stats())


def characterize_workload(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    with_breakdown: bool = False,
) -> WorkloadReport:
    """Full characterisation: trace statistics + model run (+ Figure 7)."""
    config = config or base_config()
    trace = workload.trace()
    sim = PerformanceModel(config).run(
        trace,
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
    )
    breakdown = None
    if with_breakdown:
        breakdown = stall_breakdown(
            config,
            trace,
            warmup_fraction=workload.warmup_fraction,
            regions=workload.regions(),
        )
        breakdown.trace_name = workload.name
    return WorkloadReport(workload.name, trace.stats(), sim, breakdown)
