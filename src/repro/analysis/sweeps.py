"""Parameter sweeps beyond the paper's printed figures.

The paper's §4 studies compare two or three hand-picked design points;
these helpers sweep the same axes continuously, the kind of supplemental
study performance architects run between the printed ones:

- :func:`l2_size_sweep` — L2 capacity (§4.3.4's "2 MB is a result of
  discussions about LSI technology"), with the prefetcher on;
- :func:`window_size_sweep` — instruction-window depth (§3's 64-entry
  choice);
- :func:`smp_scaling_sweep` — TPC-C throughput versus processor count
  (the system-balance study behind §4.3.4's 16P line);
- :func:`bht_size_sweep` — BHT capacity between the paper's two points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentRunner, ParallelRunner
from repro.analysis.workloads import Workload, smp_workload, workload_by_name
from repro.frontend.bht import BhtParams
from repro.model.config import MachineConfig, base_config
from repro.model.stats import SampledSimResult


def _default_runner(jobs: int) -> ExperimentRunner:
    """Serial runner for jobs=1, process-pool runner above that."""
    if jobs > 1:
        return ParallelRunner(jobs=jobs)
    return ExperimentRunner()


def _ipc_error_series(results: Sequence) -> Optional[List[Optional[float]]]:
    """95 % IPC half-widths when any result is sampled, else ``None``.

    Sweeps over sampled runs report their sampling error alongside the
    point estimates, so a trend smaller than the error bars is visibly
    not a trend.
    """
    if not any(isinstance(result, SampledSimResult) for result in results):
        return None
    return [
        result.ipc_half_width if isinstance(result, SampledSimResult) else None
        for result in results
    ]


@dataclass
class SweepResult:
    """One sweep: axis label, points, and per-point measurements.

    A point whose run was abandoned by the failure policy (``skip``)
    carries ``None`` in every series and its label in :attr:`missing`;
    the table renders it as ``n/a`` and footnotes the gap, so a partial
    campaign is visibly partial instead of silently shorter.
    """

    title: str
    axis: str
    points: List[object]
    #: metric name -> one value per point (None = run skipped).
    series: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    #: Labels of points that were skipped after repeated failures.
    missing: List[str] = field(default_factory=list)

    @property
    def is_partial(self) -> bool:
        return bool(self.missing)

    def format_table(self) -> str:
        headers = [self.axis] + list(self.series)
        rows = []
        for index, point in enumerate(self.points):
            row = [point] + [
                "n/a" if values[index] is None else f"{values[index]:.4f}"
                for values in self.series.values()
            ]
            rows.append(row)
        table = f"{self.title}\n{format_table(headers, rows)}"
        if self.missing:
            table += (
                f"\npartial: {len(self.missing)} point(s) skipped after "
                f"repeated failures ({', '.join(self.missing)})"
            )
        return table


def l2_size_sweep(
    sizes_mb: Sequence[int] = (1, 2, 4, 8),
    workload: Optional[Workload] = None,
    runner: Optional[ExperimentRunner] = None,
    jobs: int = 1,
) -> SweepResult:
    """IPC and L2 miss ratio versus on-chip L2 capacity (TPC-C)."""
    workload = workload or workload_by_name("TPC-C")
    runner = runner or _default_runner(jobs)
    base = base_config()
    configs = [
        base.derived(
            f"l2-{size}m",
            l2=base.l2.scaled(
                name=f"L2-{size}m", size_bytes=size * 1024 * 1024
            ),
        )
        for size in sizes_mb
    ]
    runner.prefetch(up=[(config, workload) for config in configs])
    results = [runner.try_run(config, workload) for config in configs]
    missing = [
        f"{workload.name}@{config.name}"
        for config, result in zip(configs, results)
        if result is None
    ]
    series: Dict[str, List[Optional[float]]] = {
        "IPC": [r.ipc if r is not None else None for r in results],
        "L2 miss ratio": [
            r.miss_ratio("l2") if r is not None else None for r in results
        ],
    }
    errors = _ipc_error_series(results)
    if errors is not None:
        series["IPC ±95%"] = errors
    return SweepResult(
        title=f"L2 capacity sweep on {workload.name}",
        axis="L2 (MB)",
        points=list(sizes_mb),
        series=series,
        missing=missing,
    )


def window_size_sweep(
    sizes: Sequence[int] = (16, 32, 64, 128),
    workload: Optional[Workload] = None,
    runner: Optional[ExperimentRunner] = None,
    jobs: int = 1,
) -> SweepResult:
    """IPC versus instruction-window (commit stack) depth."""
    workload = workload or workload_by_name("SPECint95")
    runner = runner or _default_runner(jobs)
    base = base_config()
    configs = [
        base.derived(f"window-{size}", core=base.core.derived(window_size=size))
        for size in sizes
    ]
    runner.prefetch(up=[(config, workload) for config in configs])
    results = [runner.try_run(config, workload) for config in configs]
    missing = [
        f"{workload.name}@{config.name}"
        for config, result in zip(configs, results)
        if result is None
    ]
    series: Dict[str, List[Optional[float]]] = {
        "IPC": [r.ipc if r is not None else None for r in results]
    }
    errors = _ipc_error_series(results)
    if errors is not None:
        series["IPC ±95%"] = errors
    return SweepResult(
        title=f"Instruction-window sweep on {workload.name}",
        axis="window",
        points=list(sizes),
        series=series,
        missing=missing,
    )


def bht_size_sweep(
    entry_counts: Sequence[int] = (1024, 4096, 16384, 65536),
    workload: Optional[Workload] = None,
    runner: Optional[ExperimentRunner] = None,
    jobs: int = 1,
) -> SweepResult:
    """Misprediction ratio versus BHT capacity (fills in Figure 10)."""
    workload = workload or workload_by_name("TPC-C")
    runner = runner or _default_runner(jobs)
    base = base_config()
    configs = [
        base.derived(
            f"bht-{entries}",
            bht=BhtParams(f"{entries // 1024}k", entries=entries, ways=4,
                          access_latency=2),
        )
        for entries in entry_counts
    ]
    runner.prefetch(up=[(config, workload) for config in configs])
    results = [runner.try_run(config, workload) for config in configs]
    missing = [
        f"{workload.name}@{config.name}"
        for config, result in zip(configs, results)
        if result is None
    ]
    series: Dict[str, List[Optional[float]]] = {
        "mispredict ratio": [
            r.bht_misprediction_ratio if r is not None else None for r in results
        ],
        "IPC": [r.ipc if r is not None else None for r in results],
    }
    errors = _ipc_error_series(results)
    if errors is not None:
        series["IPC ±95%"] = errors
    return SweepResult(
        title=f"BHT capacity sweep on {workload.name}",
        axis="entries",
        points=list(entry_counts),
        series=series,
        missing=missing,
    )


def smp_scaling_sweep(
    cpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    runner: Optional[ExperimentRunner] = None,
    warm: int = 20_000,
    timed: int = 6_000,
    config: Optional[MachineConfig] = None,
    jobs: int = 1,
) -> SweepResult:
    """System throughput and coherence traffic versus processor count."""
    runner = runner or _default_runner(jobs)
    config = config or base_config()
    points = [
        (smp_workload(cpus, warm=warm, timed=timed), cpus) for cpus in cpu_counts
    ]
    runner.prefetch(smp=[(config, workload, cpus) for workload, cpus in points])
    system_ipcs: List[Optional[float]] = []
    per_cpu_ipcs: List[Optional[float]] = []
    move_out_rates: List[Optional[float]] = []
    missing: List[str] = []
    for workload, cpus in points:
        result = runner.try_run_smp(config, workload, cpus)
        if result is None:
            missing.append(f"{workload.name}x{cpus}P@{config.name}")
            system_ipcs.append(None)
            per_cpu_ipcs.append(None)
            move_out_rates.append(None)
            continue
        system_ipcs.append(result.ipc)
        per_cpu_ipcs.append(result.per_cpu_ipc)
        move_out_rates.append(
            result.coherence["cache_to_cache"] / max(result.total_instructions, 1)
        )
    return SweepResult(
        title="TPC-C SMP scaling",
        axis="CPUs",
        points=list(cpu_counts),
        series={
            "system IPC": system_ipcs,
            "per-CPU IPC": per_cpu_ipcs,
            "move-outs/instr": move_out_rates,
        },
        missing=missing,
    )
