"""Experiment harness: one function per table/figure of the paper.

Every function returns a structured result object with a
``format_table()`` method that prints the same rows/series the paper
reports.  The experiment-to-module map lives in DESIGN.md §4.
"""

from repro.analysis.workloads import (
    Workload,
    smp_workload,
    spec_workloads,
    standard_workloads,
    tpcc_workload,
    workload_by_name,
)
from repro.analysis.cache import ResultCache
from repro.analysis.campaign import CampaignManifest
from repro.analysis.policy import RunPolicy
from repro.analysis.runner import ExperimentRunner, ParallelRunner, RunnerStats
from repro.analysis.figures import (
    CpiStackResult,
    fig_cpistack,
    fig07_characteristics,
    fig08_issue_width,
    fig09_10_bht,
    fig11_12_13_l1,
    fig14_15_l2,
    fig16_17_prefetch,
    fig18_reservation,
)
from repro.analysis.characterize import characterize_trace, characterize_workload
from repro.analysis.sweeps import (
    bht_size_sweep,
    l2_size_sweep,
    smp_scaling_sweep,
    window_size_sweep,
)

__all__ = [
    "Workload",
    "spec_workloads",
    "tpcc_workload",
    "smp_workload",
    "standard_workloads",
    "workload_by_name",
    "ExperimentRunner",
    "ParallelRunner",
    "RunnerStats",
    "RunPolicy",
    "CampaignManifest",
    "ResultCache",
    "CpiStackResult",
    "fig_cpistack",
    "fig07_characteristics",
    "fig08_issue_width",
    "fig09_10_bht",
    "fig11_12_13_l1",
    "fig14_15_l2",
    "fig16_17_prefetch",
    "fig18_reservation",
    "characterize_trace",
    "characterize_workload",
    "l2_size_sweep",
    "window_size_sweep",
    "bht_size_sweep",
    "smp_scaling_sweep",
]
