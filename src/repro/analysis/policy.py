"""Failure policy for campaign runs: timeouts, retries, backoff.

A thousand-run campaign meets every failure mode eventually — a worker
OOM-killed, a simulation wedged on a pathological input, a node paused
by the scheduler.  :class:`RunPolicy` decides, per run, how long to
wait, how often to retry, and what to do when the budget is spent:

- ``retry`` (default) — after the worker-side retry budget is
  exhausted, rerun once in the parent process (no timeout there; the
  parent is observable and interruptible).
- ``fail`` — raise :class:`~repro.common.errors.ExperimentError`
  naming the run; the campaign aborts loudly.
- ``skip`` — record the run as skipped and keep going; reports mark
  the missing points (see ``SweepResult.missing``).

Backoff between retries is exponential with deterministic jitter: the
jitter is drawn from :class:`~repro.common.rng.DeterministicRng` seeded
by (policy seed, run label, attempt), so two replays of a campaign
sleep the same amounts — retries never make a run irreproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng

#: Allowed ``on_failure`` values.
FAILURE_POLICIES = ("retry", "fail", "skip")


@dataclass(frozen=True)
class RunPolicy:
    """Per-run fault-handling knobs for :class:`ParallelRunner`."""

    #: Wall-clock seconds a single worker-side run may take; ``None``
    #: disables the watchdog entirely.
    timeout: float | None = None
    #: Worker-side attempts beyond the first (0 = never retry in a worker).
    retries: int = 1
    #: First backoff delay, in seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff sleep.
    backoff_max: float = 5.0
    #: Jitter fraction in [0, 1]: each delay is scaled by a deterministic
    #: draw from [1 - jitter, 1 + jitter].
    jitter: float = 0.25
    #: What to do once retries are exhausted: retry | fail | skip.
    on_failure: str = "retry"
    #: Seed for the deterministic jitter stream.
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("policy timeout must be positive (or None)")
        if self.retries < 0:
            raise ConfigError("policy retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")
        if self.on_failure not in FAILURE_POLICIES:
            raise ConfigError(
                f"on_failure must be one of {', '.join(FAILURE_POLICIES)}; "
                f"got {self.on_failure!r}"
            )

    def backoff_delay(self, label: str, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based) of ``label``."""
        if attempt < 1 or self.backoff_base == 0:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if self.jitter > 0:
            site = f"{label}|{attempt}".encode("utf-8")
            rng = DeterministicRng(self.seed).fork(zlib.crc32(site))
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return min(delay, self.backoff_max)
