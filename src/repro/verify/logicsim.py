"""The logic-simulator analog: execution-driven timing runs.

The paper's logic simulator executes performance test programs against
the actual hardware logic; model verification compares its cycle counts
against the trace-driven performance model fed the original trace
(Figure 3, loop (2)).

We have no RTL; the substitute preserves the *two-path* structure:

- the **trace-driven path** is :class:`repro.model.PerformanceModel`
  consuming a pre-recorded trace;
- the **execution-driven path** is this module: the functional SPARC
  subset executor runs the test program, producing the dynamic stream
  that drives the cycle engine.

:func:`cross_check` runs both paths over the same program and asserts
cycle-exact agreement — the determinism/equivalence invariant the
paper's methodology relies on.  Divergence indicates a bug in one of the
drivers, exactly the class of defect loop (2) existed to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import VerificationError
from repro.core.pipeline import CoreStats, ProcessorCore
from repro.isa.executor import ExecutionResult, FunctionalExecutor
from repro.isa.program import Program
from repro.model.config import MachineConfig, base_config
from repro.model.simulator import PerformanceModel, build_hierarchy
from repro.trace.stream import Trace


@dataclass
class LogicSimResult:
    """Outcome of one execution-driven run."""

    program_name: str
    instructions: int
    cycles: int
    halted: bool
    core: CoreStats
    execution: ExecutionResult

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class LogicSimulator:
    """Executes test programs and times them cycle-accurately."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        max_steps: int = 2_000_000,
    ) -> None:
        self.config = config or base_config()
        self.max_steps = max_steps

    def run(self, program: Program) -> LogicSimResult:
        """Functionally execute ``program``, then time its stream."""
        executor = FunctionalExecutor(max_steps=self.max_steps, halt_on_limit=True)
        execution = executor.run(program)
        trace = Trace(execution.records, name=f"exec:{program.name}")

        hierarchy = build_hierarchy(self.config)
        core = ProcessorCore(
            trace,
            hierarchy,
            self.config.core,
            self.config.frontend,
            self.config.bht,
        )
        stats = core.run()
        return LogicSimResult(
            program_name=program.name,
            instructions=stats.instructions,
            cycles=stats.cycles,
            halted=execution.halted,
            core=stats,
            execution=execution,
        )


def cross_check(
    program: Program,
    config: Optional[MachineConfig] = None,
    max_steps: int = 2_000_000,
) -> LogicSimResult:
    """Run both verification paths on ``program``; raise on divergence.

    The execution-driven path (logic simulator) and the trace-driven path
    (performance model fed the recorded stream) must report identical
    cycle counts.
    """
    config = config or base_config()
    logic = LogicSimulator(config, max_steps=max_steps)
    logic_result = logic.run(program)

    trace = Trace(logic_result.execution.records, name=f"trace:{program.name}")
    model_result = PerformanceModel(config).run(trace, warmup_fraction=0.0)

    if model_result.cycles != logic_result.cycles:
        raise VerificationError(
            f"paths diverge on {program.name!r}: "
            f"model={model_result.cycles} cycles, "
            f"logic simulator={logic_result.cycles} cycles"
        )
    if model_result.instructions != logic_result.instructions:
        raise VerificationError(
            f"instruction counts diverge on {program.name!r}: "
            f"{model_result.instructions} vs {logic_result.instructions}"
        )
    if model_result.core.cpi_stack != logic_result.core.cpi_stack:
        # Equal cycle counts with different attributions means the
        # accountant classified identical pipeline states differently —
        # a divergence in the observability layer, not the timing.
        raise VerificationError(
            f"CPI stacks diverge on {program.name!r}: "
            f"model={model_result.core.cpi_stack} vs "
            f"logic simulator={logic_result.core.cpi_stack}"
        )
    return logic_result
