"""Accuracy tracking (Figure 19).

Two studies:

- :func:`version_estimate_history` — the upper graph: performance
  estimates of model versions v1…v8 on SPEC CPU2000 traces, normalised to
  v8.  Estimates decrease as rigidity improves, except the v5 bump from
  the special-instruction remodelling.

- :func:`accuracy_history` — the lower graph: model error against the
  "physical machine" over the verification phase.  With no silicon
  available, the physical machine is the final model run on a *different
  seed* of each workload — so the terminal error is the honest sampling
  error (paper: 3.9% for SPECfp2000, 4.2% for SPECint2000), not a
  trivially zero self-comparison.  Intermediate phases carry the kinds of
  memory-system parameter mistakes the paper describes being fixed
  ("memory access latency, bus width, and outstanding numbers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.params import BusParams, MemoryParams
from repro.model.config import MachineConfig, base_config
from repro.model.simulator import PerformanceModel
from repro.analysis.workloads import Workload, workload_by_name

#: Machine-seed offset: the "physical machine" executes a different
#: sample of the same workload than the traces fed to the model.
MACHINE_SEED_OFFSET = 7919


@dataclass
class AccuracyPoint:
    """One (phase, workload) accuracy measurement."""

    phase: str
    workload: str
    model_cycles: int
    machine_cycles: int

    @property
    def error(self) -> float:
        """Relative cycle error of the model versus the machine."""
        if self.machine_cycles == 0:
            return 0.0
        return (self.model_cycles - self.machine_cycles) / self.machine_cycles

    @property
    def abs_error(self) -> float:
        return abs(self.error)


def _run_cycles(config: MachineConfig, workload: Workload) -> int:
    result = PerformanceModel(config).run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
    )
    return result.cycles


def version_estimate_history(
    workload_names: Optional[List[str]] = None,
    timed: int = 25_000,
    warm: int = 100_000,
) -> Dict[str, Dict[str, float]]:
    """Fig. 19 (upper): per-version performance relative to v8.

    Returns ``{workload: {version: perf_ratio}}`` where performance is
    1/cycles normalised so v8 = 1.0.
    """
    from repro.verify.fidelity import MODEL_VERSIONS, model_version

    workload_names = workload_names or ["SPECint2000", "SPECfp2000"]
    history: Dict[str, Dict[str, float]] = {}
    for name in workload_names:
        workload = workload_by_name(name, warm=warm, timed=timed)
        cycles = {
            label: _run_cycles(model_version(label), workload)
            for label in MODEL_VERSIONS
        }
        v8_cycles = cycles["v8"]
        history[name] = {
            label: v8_cycles / value if value else 0.0
            for label, value in cycles.items()
        }
    return history


def _phase_configs(final: MachineConfig) -> List[MachineConfig]:
    """Hardware-parameter states across the verification phase.

    Each phase fixes one class of memory-system parameter mistakes, the
    way the paper describes the lower graph's abrupt changes.
    """
    return [
        # Phase A: processor-side latencies optimistic, memory latency
        # badly underestimated, bus width wrong.
        final.derived(
            "phaseA",
            l1d=final.l1d.scaled(hit_latency=final.l1d.hit_latency - 1),
            l2=final.l2.scaled(hit_latency=final.l2.hit_latency - 4),
            memory=MemoryParams(latency=140, channels=final.memory.channels,
                                channel_occupancy=final.memory.channel_occupancy),
            system_bus=BusParams("system", latency=10, bytes_per_cycle=16),
        ),
        # Phase B: L1 latency corrected; L2/memory still off, outstanding
        # numbers (MSHRs) wrong.
        final.derived(
            "phaseB",
            l2=final.l2.scaled(mshr_count=4, hit_latency=final.l2.hit_latency - 2),
            l1d=final.l1d.scaled(mshr_count=2),
        ),
        # Phase C: near-final; only system-bus latency is slightly off.
        final.derived(
            "phaseC",
            system_bus=BusParams(
                "system",
                latency=final.system_bus.latency + 6,
                bytes_per_cycle=final.system_bus.bytes_per_cycle,
            ),
        ),
        # Final: all parameters reflect the built machine.
        final.derived("final"),
    ]


def accuracy_history(
    workload_names: Optional[List[str]] = None,
    timed: int = 25_000,
    warm: int = 100_000,
    final_config: Optional[MachineConfig] = None,
) -> List[AccuracyPoint]:
    """Fig. 19 (lower): model-vs-machine error over verification phases."""
    workload_names = workload_names or ["SPECint2000", "SPECfp2000"]
    final = final_config or base_config()
    points: List[AccuracyPoint] = []
    for name in workload_names:
        model_workload = workload_by_name(name, warm=warm, timed=timed)
        machine_workload = workload_by_name(
            name,
            sample_seed=model_workload.seed + MACHINE_SEED_OFFSET,
            warm=warm,
            timed=timed,
        )
        machine_cycles = _run_cycles(final.derived("machine"), machine_workload)
        for config in _phase_configs(final):
            points.append(
                AccuracyPoint(
                    phase=config.name,
                    workload=name,
                    model_cycles=_run_cycles(config, model_workload),
                    machine_cycles=machine_cycles,
                )
            )
    return points
