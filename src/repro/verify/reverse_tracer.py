"""Reverse Tracer: generate executable test programs from traces.

Reproduction of the tool of [11] (Sakamoto et al., HPCA 2002): given a
dynamic instruction trace, emit a self-contained program that — when
executed — replays the trace's behaviour.  Replay can never be perfect
for arbitrary traces (branch outcomes and effective addresses are
data-dependent), so this implementation reconstructs the *static* code
from the trace and rebuilds each behaviour it can express exactly,
approximating the rest and reporting a :class:`ReplayFidelity` score:

- per-site opcode/operand structure: exact;
- conditional branches classified ALWAYS/NEVER/LOOP(k) replay exactly
  (loops get dedicated counter registers while the pool lasts); MIXED
  sites fall back to their majority direction;
- memory operations replay each site's first observed effective address
  (as an absolute displacement); varying addresses are approximated;
- CALLs replay exactly; RETURNs become direct jumps to the site's
  dominant dynamic successor (register-window return-address discipline
  is outside the subset).

The program ends with HALT after replaying approximately the original
instruction count.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import TraceError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.isa.registers import FP_REG_BASE, ICC, is_fp_reg
from repro.trace.record import NO_REG, TraceRecord
from repro.trace.stream import Trace

#: Counter registers available for LOOP-site replay.
_LOOP_COUNTER_POOL = tuple(range(16, 31))

#: Scratch registers for generic integer results.
_SCRATCH_INT = (8, 9, 10, 11, 12, 13, 14)
_SCRATCH_FP = tuple(range(0, 16))


@dataclass
class ReplayFidelity:
    """How faithfully the generated program can replay the trace."""

    static_sites: int = 0
    exact_branch_sites: int = 0
    approximated_branch_sites: int = 0
    loop_sites_with_counters: int = 0
    memory_sites: int = 0
    constant_address_sites: int = 0
    return_sites_approximated: int = 0
    #: pcs observed with more than one opcode class (kernel-transition
    #: sites in synthetic traces); replayed with their majority class.
    polymorphic_sites: int = 0

    @property
    def branch_exact_fraction(self) -> float:
        total = self.exact_branch_sites + self.approximated_branch_sites
        if total == 0:
            return 1.0
        return self.exact_branch_sites / total

    def as_dict(self) -> Dict[str, float]:
        return {
            "static_sites": self.static_sites,
            "exact_branch_sites": self.exact_branch_sites,
            "approximated_branch_sites": self.approximated_branch_sites,
            "branch_exact_fraction": round(self.branch_exact_fraction, 4),
            "loop_sites_with_counters": self.loop_sites_with_counters,
            "memory_sites": self.memory_sites,
            "constant_address_sites": self.constant_address_sites,
            "return_sites_approximated": self.return_sites_approximated,
            "polymorphic_sites": self.polymorphic_sites,
        }


class _SiteInfo:
    """Everything observed about one static pc in the trace."""

    __slots__ = ("record", "outcomes", "addresses", "successors", "order", "op_counts")

    def __init__(self, record: TraceRecord, order: int) -> None:
        self.record = record
        self.outcomes: List[bool] = []
        self.addresses: List[int] = []
        self.successors: Counter = Counter()
        self.order = order
        self.op_counts: Counter = Counter()


def _classify_outcomes(outcomes: List[bool]) -> Tuple[str, int]:
    """Classify a branch-outcome sequence: always/never/loop(k)/mixed."""
    if all(outcomes):
        return "always", 0
    if not any(outcomes):
        return "never", 0
    # Loop pattern: k takens followed by one not-taken, repeated; the
    # final (possibly truncated) period may be incomplete.
    first_not = outcomes.index(False)
    k = first_not
    if k == 0:
        return "mixed", 0
    position = 0
    for outcome in outcomes:
        expected = position < k
        if outcome != expected:
            return "mixed", 0
        position = 0 if position == k else position + 1
    return "loop", k


class ReverseTracer:
    """Builds replay programs from dynamic traces."""

    def __init__(self, max_loop_counters: int = len(_LOOP_COUNTER_POOL)) -> None:
        self.max_loop_counters = max(0, min(max_loop_counters, len(_LOOP_COUNTER_POOL)))

    # ------------------------------------------------------------------

    def generate(self, trace: Trace) -> Tuple[Program, ReplayFidelity]:
        """Produce a test program replaying ``trace`` plus fidelity info."""
        if len(trace) == 0:
            raise TraceError("cannot reverse-trace an empty trace")
        sites = self._collect_sites(trace)
        ordered = sorted(sites.values(), key=lambda site: site.record.pc)
        fidelity = ReplayFidelity(static_sites=len(ordered))
        fidelity.polymorphic_sites = self._polymorphic

        program = Program(name=f"rt-{trace.name}")
        label_of = {site.record.pc: f"L{site.record.pc:x}" for site in ordered}

        # Preamble: initialise loop counters.
        loop_plan = self._plan_loops(ordered, fidelity)
        for pc in sorted(loop_plan):
            register, trip = loop_plan[pc]
            program.append(Instruction(Mnemonic.MOV, rd=register, imm=trip + 1))

        for site in ordered:
            instructions = self._emit_site(site, label_of, loop_plan, fidelity)
            instructions[0].label = label_of[site.record.pc]
            program.extend(instructions)
        program.append(Instruction(Mnemonic.HALT, label="halt_pad"))
        program.finalize()
        return program, fidelity

    # ------------------------------------------------------------------

    def _collect_sites(self, trace: Trace) -> Dict[int, _SiteInfo]:
        sites: Dict[int, _SiteInfo] = {}
        previous: Optional[TraceRecord] = None
        for order, record in enumerate(trace.records):
            site = sites.get(record.pc)
            if site is None:
                site = _SiteInfo(record, order)
                sites[record.pc] = site
            site.op_counts[record.op] += 1
            if record.op == site.record.op:
                if record.is_conditional_branch:
                    site.outcomes.append(record.taken)
                if record.is_memory:
                    site.addresses.append(record.ea)
            if previous is not None and previous.is_branch:
                sites[previous.pc].successors[record.pc] += 1
            previous = record
        # Resolve polymorphic sites (rare: kernel entry/exit pcs) to their
        # majority class: keep the first record of that class.
        majority_fix = []
        for site in sites.values():
            if len(site.op_counts) > 1:
                majority_fix.append(site)
        if majority_fix:
            by_pc_class: Dict[tuple, TraceRecord] = {}
            for record in trace.records:
                key = (record.pc, record.op)
                if key not in by_pc_class:
                    by_pc_class[key] = record
            for site in majority_fix:
                majority_op = site.op_counts.most_common(1)[0][0]
                site.record = by_pc_class[(site.record.pc, majority_op)]
        self._polymorphic = len(majority_fix)
        return sites

    def _plan_loops(
        self, ordered: List[_SiteInfo], fidelity: ReplayFidelity
    ) -> Dict[int, Tuple[int, int]]:
        """Assign counter registers to replayable LOOP sites."""
        plan: Dict[int, Tuple[int, int]] = {}
        pool = list(_LOOP_COUNTER_POOL[: self.max_loop_counters])
        candidates = []
        for site in ordered:
            if not site.record.is_conditional_branch or not site.outcomes:
                continue
            kind, trip = _classify_outcomes(site.outcomes)
            if kind == "loop":
                candidates.append((len(site.outcomes), site.record.pc, trip))
        # Busiest loops get the counters.
        for _, pc, trip in sorted(candidates, reverse=True):
            if not pool:
                break
            plan[pc] = (pool.pop(), trip)
        fidelity.loop_sites_with_counters = len(plan)
        return plan

    # ------------------------------------------------------------------

    def _emit_site(
        self,
        site: _SiteInfo,
        label_of: Dict[int, str],
        loop_plan: Dict[int, Tuple[int, int]],
        fidelity: ReplayFidelity,
    ) -> List[Instruction]:
        record = site.record
        op = record.op
        if op == OpClass.LOAD:
            return [self._emit_memory(site, fidelity, load=True)]
        if op == OpClass.STORE:
            return [self._emit_memory(site, fidelity, load=False)]
        if op == OpClass.BRANCH_COND:
            return self._emit_conditional(site, label_of, loop_plan, fidelity)
        if op == OpClass.BRANCH_UNCOND:
            target = self._dominant_successor(site)
            return [Instruction(Mnemonic.BA, target=label_of.get(target, "halt_pad"))]
        if op == OpClass.CALL:
            target = self._dominant_successor(site)
            return [Instruction(Mnemonic.CALL, target=label_of.get(target, "halt_pad"))]
        if op == OpClass.RETURN:
            fidelity.return_sites_approximated += 1
            target = self._dominant_successor(site)
            return [Instruction(Mnemonic.BA, target=label_of.get(target, "halt_pad"))]
        return [self._emit_compute(record)]

    def _dominant_successor(self, site: _SiteInfo) -> int:
        if site.successors:
            return site.successors.most_common(1)[0][0]
        return site.record.target if site.record.target >= 0 else site.record.pc + 4

    def _emit_conditional(
        self,
        site: _SiteInfo,
        label_of: Dict[int, str],
        loop_plan: Dict[int, Tuple[int, int]],
        fidelity: ReplayFidelity,
    ) -> List[Instruction]:
        record = site.record
        taken_target = None
        # The taken successor is the recorded target; find its label.
        if record.target >= 0 and record.target in label_of:
            taken_target = label_of[record.target]
        kind, _ = _classify_outcomes(site.outcomes) if site.outcomes else ("never", 0)

        if record.pc in loop_plan and taken_target is not None:
            register, trip = loop_plan[record.pc]
            fidelity.exact_branch_sites += 1
            # counter -= 1; branch while non-zero; re-arm on fall-through.
            return [
                Instruction(Mnemonic.SUBCC, rd=register, rs1=register, imm=1),
                Instruction(Mnemonic.BNE, target=taken_target),
                Instruction(Mnemonic.MOV, rd=register, imm=trip + 1),
            ]
        if kind == "always" and taken_target is not None:
            fidelity.exact_branch_sites += 1
            # %g0 - %g0 = 0 -> icc.zero, so BE is always taken.
            return [
                Instruction(Mnemonic.SUBCC, rd=0, rs1=0, rs2=0),
                Instruction(Mnemonic.BE, target=taken_target),
            ]
        if kind == "never":
            fidelity.exact_branch_sites += 1
            # %g0 - 1 != 0, so BE is never taken.
            return [
                Instruction(Mnemonic.SUBCC, rd=0, rs1=0, imm=1),
                Instruction(Mnemonic.BE, target=taken_target or "halt_pad"),
            ]
        # MIXED (or unresolvable target): majority direction.
        fidelity.approximated_branch_sites += 1
        majority_taken = sum(site.outcomes) * 2 >= len(site.outcomes)
        if majority_taken and taken_target is not None:
            return [
                Instruction(Mnemonic.SUBCC, rd=0, rs1=0, rs2=0),
                Instruction(Mnemonic.BE, target=taken_target),
            ]
        return [
            Instruction(Mnemonic.SUBCC, rd=0, rs1=0, imm=1),
            Instruction(Mnemonic.BE, target=taken_target or "halt_pad"),
        ]

    def _emit_memory(
        self, site: _SiteInfo, fidelity: ReplayFidelity, load: bool
    ) -> Instruction:
        record = site.record
        fidelity.memory_sites += 1
        if len(set(site.addresses)) <= 1:
            fidelity.constant_address_sites += 1
        address = site.addresses[0] if site.addresses else 0
        address &= ~0x7
        if load:
            dest = record.dest
            if dest != NO_REG and is_fp_reg(dest):
                return Instruction(
                    Mnemonic.LDF, rd=dest - FP_REG_BASE, rs1=0, imm=address
                )
            rd = (dest % 7 + 8) if dest != NO_REG else 8
            return Instruction(Mnemonic.LDX, rd=rd, rs1=0, imm=address)
        data_src = record.srcs[-1] if record.srcs else 8
        if is_fp_reg(data_src):
            return Instruction(
                Mnemonic.STF, rd=data_src - FP_REG_BASE, rs1=0, imm=address
            )
        return Instruction(Mnemonic.STX, rd=data_src % 7 + 8, rs1=0, imm=address)

    def _emit_compute(self, record: TraceRecord) -> Instruction:
        op = record.op
        dest = record.dest
        if op == OpClass.INT_ALU and dest == ICC:
            return Instruction(Mnemonic.SUBCC, rd=0, rs1=8, rs2=9)
        scratch_rd = _SCRATCH_INT[(dest if dest >= 0 else 0) % len(_SCRATCH_INT)]
        int_srcs = [s for s in record.srcs if 0 <= s < 32]
        rs1 = int_srcs[0] % 7 + 8 if int_srcs else 8
        rs2 = int_srcs[1] % 7 + 8 if len(int_srcs) > 1 else None
        if op == OpClass.INT_ALU:
            return Instruction(Mnemonic.ADD, rd=scratch_rd, rs1=rs1, rs2=rs2, imm=1)
        if op == OpClass.INT_MUL:
            return Instruction(Mnemonic.MULX, rd=scratch_rd, rs1=rs1, rs2=rs2, imm=3)
        if op == OpClass.INT_DIV:
            return Instruction(Mnemonic.SDIVX, rd=scratch_rd, rs1=rs1, imm=7)
        fp_rd = _SCRATCH_FP[(dest - FP_REG_BASE if is_fp_reg(dest) else 0) % len(_SCRATCH_FP)]
        fp_srcs = [s - FP_REG_BASE for s in record.srcs if is_fp_reg(s)]
        frs1 = fp_srcs[0] if fp_srcs else 0
        frs2 = fp_srcs[1] if len(fp_srcs) > 1 else frs1
        if op == OpClass.FP_ADD:
            return Instruction(Mnemonic.FADD, rd=fp_rd, rs1=frs1, rs2=frs2)
        if op == OpClass.FP_MUL:
            return Instruction(Mnemonic.FMUL, rd=fp_rd, rs1=frs1, rs2=frs2)
        if op == OpClass.FP_FMA:
            return Instruction(Mnemonic.FMADD, rd=fp_rd, rs1=frs1, rs2=frs2)
        if op == OpClass.FP_DIV:
            return Instruction(Mnemonic.FDIV, rd=fp_rd, rs1=frs1, rs2=frs2)
        if op == OpClass.SPECIAL:
            return Instruction(Mnemonic.MEMBAR)
        return Instruction(Mnemonic.NOP)
