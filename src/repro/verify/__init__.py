"""Verification methodology (paper §2, §5, Figure 19).

The paper's model was verified in three loops (Figure 3):

1. model output drives hardware design decisions;
2. performance test programs — generated from instruction traces by the
   *Reverse Tracer* — run on the RTL logic simulator, and their results
   are compared with the model fed the original trace;
3. final accuracy is measured against the physical machine.

This package reproduces the loop-(2) machinery with simulation
substitutes: :class:`ReverseTracer` turns a trace into an executable test
program; :class:`LogicSimulator` is the execution-driven path (functional
SPARC-subset execution feeding the same cycle engine); and
:mod:`repro.verify.fidelity` + :mod:`repro.verify.accuracy` reproduce the
model-version history and the accuracy-convergence study of Figure 19,
using the final model as the "physical machine" and cross-seed traces as
the sampling error (so the final error is honest and non-zero).
"""

from repro.verify.reverse_tracer import ReplayFidelity, ReverseTracer
from repro.verify.logicsim import LogicSimResult, LogicSimulator, cross_check
from repro.verify.fidelity import MODEL_VERSIONS, model_version
from repro.verify.accuracy import (
    AccuracyPoint,
    accuracy_history,
    version_estimate_history,
)

__all__ = [
    "ReverseTracer",
    "ReplayFidelity",
    "LogicSimulator",
    "LogicSimResult",
    "cross_check",
    "MODEL_VERSIONS",
    "model_version",
    "AccuracyPoint",
    "accuracy_history",
    "version_estimate_history",
]
