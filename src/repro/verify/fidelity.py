"""Model-version fidelity presets (Figure 19, upper graph).

The paper improved one performance model continuously; major updates got
version labels v1…v8, and "the performance estimates were always
decreasing … The exception at v5 is the result of more-precise modeling
of special instructions.  Until v4, we set an experimental penalty to
each special instruction instead of modeling it in detail."

Each preset here reproduces one rigidity level by switching detail off
(or, for the special-instruction penalty, substituting the pessimistic
flat experimental value the paper describes):

====  ==========================================================
v1    latency-only memory side: no bank conflicts, generous MSHRs,
      wide buses, no TLB walks, cheap special instructions
v2    + finite bus bandwidth (request/data occupy the buses)
v3    + L1 operand-cache bank conflicts (8 × 4 B banks)
v4    + TLB walks; special instructions get the *flat experimental
      penalty* (pessimistic, pre-detailed model)
v5    + detailed special-instruction model (serialise at window head)
      — estimates move *up*, the paper's v5 anomaly
v6    + realistic MSHR (outstanding-miss) limits
v7    + memory-channel occupancy and queueing
v8    final model (= the production configuration)
====  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.memory.params import BusParams, MemoryParams
from repro.model.config import MachineConfig, base_config

#: The pessimistic flat penalty (cycles) used for special instructions
#: before they were modelled in detail (applied in v1–v4).
EXPERIMENTAL_SPECIAL_PENALTY = 50


def _wide(bus: BusParams) -> BusParams:
    """An effectively infinite-bandwidth version of a bus."""
    return BusParams(bus.name + "-ideal", latency=bus.latency, bytes_per_cycle=4096)


def _v1(final: MachineConfig) -> MachineConfig:
    return final.derived(
        "v1",
        core=final.core.derived(
            special_serialize=False, special_latency=1
        ),
        l1i=final.l1i.scaled(mshr_count=64),
        l1d=final.l1d.scaled(mshr_count=64, banks=1, bank_bytes=4),
        l2=final.l2.scaled(mshr_count=64),
        l1_l2_bus=_wide(final.l1_l2_bus),
        system_bus=_wide(final.system_bus),
        memory=MemoryParams(
            latency=final.memory.latency, channels=64, channel_occupancy=1
        ),
        perfect_tlb=True,
    )


def _v2(final: MachineConfig) -> MachineConfig:
    v1 = _v1(final)
    return v1.derived(
        "v2", l1_l2_bus=final.l1_l2_bus, system_bus=final.system_bus
    )


def _v3(final: MachineConfig) -> MachineConfig:
    v2 = _v2(final)
    return v2.derived("v3", l1d=v2.l1d.scaled(banks=final.l1d.banks))


def _v4(final: MachineConfig) -> MachineConfig:
    v3 = _v3(final)
    return v3.derived(
        "v4",
        perfect_tlb=False,
        core=v3.core.derived(
            special_serialize=False, special_latency=EXPERIMENTAL_SPECIAL_PENALTY
        ),
    )


def _v5(final: MachineConfig) -> MachineConfig:
    v4 = _v4(final)
    return v4.derived(
        "v5",
        core=v4.core.derived(
            special_serialize=final.core.special_serialize,
            special_latency=final.core.special_latency,
        ),
    )


def _v6(final: MachineConfig) -> MachineConfig:
    v5 = _v5(final)
    return v5.derived(
        "v6",
        l1i=final.l1i,
        l1d=final.l1d,
        l2=final.l2,
    )


def _v7(final: MachineConfig) -> MachineConfig:
    v6 = _v6(final)
    return v6.derived("v7", memory=final.memory)


def _v8(final: MachineConfig) -> MachineConfig:
    return final.derived("v8")


_BUILDERS: Dict[str, Callable[[MachineConfig], MachineConfig]] = {
    "v1": _v1,
    "v2": _v2,
    "v3": _v3,
    "v4": _v4,
    "v5": _v5,
    "v6": _v6,
    "v7": _v7,
    "v8": _v8,
}

#: Version labels in chronological order.
MODEL_VERSIONS: List[str] = list(_BUILDERS)


def model_version(label: str, final: MachineConfig = None) -> MachineConfig:
    """The machine configuration corresponding to model version ``label``."""
    final = final or base_config()
    try:
        return _BUILDERS[label](final)
    except KeyError:
        raise ValueError(
            f"unknown model version {label!r}; known: {', '.join(MODEL_VERSIONS)}"
        ) from None
