"""Unit conversion helpers.

The paper states timing in a mix of nanoseconds (off-chip penalties) and
CPU cycles.  The simulator works exclusively in cycles at the SPARC64 V
clock of 1.3 GHz, so these helpers centralise the conversions and keep
"+10 ns off-chip" style parameters readable in configuration code.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError

#: SPARC64 V clock frequency in GHz (Table 1).
DEFAULT_CLOCK_GHZ = 1.3

#: One CPU cycle in nanoseconds at the default clock.
CYCLE_TIME_NS = 1.0 / DEFAULT_CLOCK_GHZ

_SIZE_SUFFIXES = {
    "B": 1,
    "KB": 1024,
    "MB": 1024 * 1024,
    "GB": 1024 * 1024 * 1024,
}


def ns_to_cycles(nanoseconds: float, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> int:
    """Convert a latency in nanoseconds to whole CPU cycles (rounded up).

    The paper's off-chip L2 adds 10 ns, which at 1.3 GHz is 13 cycles.
    """
    if nanoseconds < 0:
        raise ConfigError(f"latency must be non-negative, got {nanoseconds} ns")
    return int(math.ceil(nanoseconds * clock_ghz))


def parse_size(text: str) -> int:
    """Parse a size string like ``"128KB"`` or ``"2MB"`` into bytes."""
    stripped = text.strip().upper().replace(" ", "")
    for suffix in ("GB", "MB", "KB", "B"):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)]
            try:
                value = float(number)
            except ValueError as exc:
                raise ConfigError(f"unparseable size: {text!r}") from exc
            return int(value * _SIZE_SUFFIXES[suffix])
    try:
        return int(stripped)
    except ValueError as exc:
        raise ConfigError(f"unparseable size: {text!r}") from exc


def size_to_str(num_bytes: int) -> str:
    """Render a byte count with the largest exact binary suffix."""
    if num_bytes < 0:
        raise ConfigError(f"size must be non-negative, got {num_bytes}")
    for suffix in ("GB", "MB", "KB"):
        unit = _SIZE_SUFFIXES[suffix]
        if num_bytes >= unit and num_bytes % unit == 0:
            return f"{num_bytes // unit}{suffix}"
    return f"{num_bytes}B"


def is_power_of_two(value: int) -> bool:
    """True for positive powers of two (cache geometry sanity checks)."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises ConfigError if not a power of two."""
    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a power of two")
    return value.bit_length() - 1
