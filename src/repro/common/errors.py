"""Exception hierarchy for the repro package.

All exceptions raised deliberately by the simulator derive from
:class:`ReproError` so callers can catch simulator problems without also
swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent machine configuration was supplied."""


class TraceError(ReproError):
    """A trace file or trace record is malformed or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an internal state that should be impossible.

    Raising this (rather than silently continuing) mirrors the paper's
    methodology of treating model/logic mismatches as bugs to be fixed.
    """


class VerificationError(ReproError):
    """A cross-check between two simulation paths failed.

    Used by :mod:`repro.verify` when the trace-driven model and the
    execution-driven logic simulator disagree.
    """
