"""Exception hierarchy for the repro package.

All exceptions raised deliberately by the simulator derive from
:class:`ReproError` so callers can catch simulator problems without also
swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent machine configuration was supplied."""


class TraceError(ReproError):
    """A trace file or trace record is malformed or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an internal state that should be impossible.

    Raising this (rather than silently continuing) mirrors the paper's
    methodology of treating model/logic mismatches as bugs to be fixed.
    """


class VerificationError(ReproError):
    """A cross-check between two simulation paths failed.

    Used by :mod:`repro.verify` when the trace-driven model and the
    execution-driven logic simulator disagree.
    """


class ExperimentError(ReproError):
    """An experiment run failed permanently in the harness.

    Raised by :class:`~repro.analysis.runner.ParallelRunner` when a run
    exhausts its retry budget under the ``fail`` policy, or when a
    result is requested for a run that the ``skip`` policy recorded as
    abandoned.  The message always names the (workload, config) pair so
    a campaign log points straight at the offending run.
    """


class CampaignError(ReproError):
    """A sweep/figure campaign manifest is unusable.

    Distinct from :class:`ExperimentError`: the runs themselves may be
    fine, but the resume bookkeeping (manifest file) cannot be trusted —
    e.g. it was written by an incompatible version.
    """


class ServiceError(ReproError):
    """The campaign service reached an unusable state.

    Raised by :mod:`repro.service` for conditions the scheduler cannot
    degrade around — e.g. a stored result that reads back unreadable
    after every retry, or an operation on a job the journal has never
    seen.  Transient failures (worker death, lease expiry) are handled
    by requeueing and never surface as exceptions.
    """


class QueueFull(ServiceError):
    """A bounded job queue refused a submission (load shedding).

    Raised by :meth:`repro.service.queue.JobQueue.submit` when the
    pending backlog has reached the configured capacity.  Callers are
    expected to back off and resubmit; the refusal is deliberate
    (bounded memory and bounded completion latency for accepted jobs)
    rather than a failure of the service.
    """


class InjectedFault(ReproError):
    """A deliberately injected fault (testing only).

    Raised by :mod:`repro.common.faults` when a fault site is configured
    to raise rather than crash or hang.  Deriving from
    :class:`ReproError` lets recovery paths treat it exactly like a real
    failure while tests can still assert on the specific type.
    """
