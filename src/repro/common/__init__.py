"""Common substrate shared by every simulator subsystem.

This package holds the pieces that are not specific to any one model:
error types, deterministic random-number helpers, unit conversions, and a
small event queue used by the bus and memory-controller models.
"""

from repro.common.errors import (
    CampaignError,
    ConfigError,
    ExperimentError,
    InjectedFault,
    ReproError,
    SimulationError,
    TraceError,
    VerificationError,
)
from repro.common.rng import DeterministicRng
from repro.common.units import (
    CYCLE_TIME_NS,
    DEFAULT_CLOCK_GHZ,
    ns_to_cycles,
    parse_size,
    size_to_str,
)

__all__ = [
    "CampaignError",
    "ConfigError",
    "ExperimentError",
    "InjectedFault",
    "ReproError",
    "SimulationError",
    "TraceError",
    "VerificationError",
    "DeterministicRng",
    "CYCLE_TIME_NS",
    "DEFAULT_CLOCK_GHZ",
    "ns_to_cycles",
    "parse_size",
    "size_to_str",
]
