"""Deterministic fault injection for the experiment pipeline.

Campaign-scale simulation is only trustworthy if every failure class —
a worker that dies, a worker that hangs, a cache entry scribbled on
mid-write, a trace file truncated by a full disk — either *recovers* or
*fails loudly* with a typed error.  This module makes those failures
reproducible on demand so the test suite (and the CI smoke job) can
prove it.

Faults are described by a compact spec string, activated through the
``REPRO_FAULTS`` environment variable so that worker processes spawned
by :class:`~repro.analysis.runner.ParallelRunner` inherit them::

    REPRO_FAULTS="worker-hang,times=1,hang=30;cache-corrupt,times=1"

Grammar: faults are separated by ``;``; within one fault the first
token is the kind, the rest are ``key=value`` parameters.

Kinds and their trigger sites:

======================  ===============================================
``worker-crash``        worker entry point calls ``os._exit`` (SIGKILL-like)
``worker-hang``         worker entry point sleeps ``hang`` seconds
``worker-raise``        worker entry point raises :class:`InjectedFault`
``cache-corrupt``       result-cache store scribbles on the JSON envelope
``trace-truncate``      trace writer truncates the file after writing
``trace-bitflip``       trace writer flips one byte after writing
``lease-expiry``        service treats a held job lease as already expired
``heartbeat-stall``     service suppresses a lease renewal (worker "lost")
``kill-mid-write``      result store dies between temp write and rename
``duplicate-delivery``  job queue hands a running job to a second worker
``store-corrupt``       result store damages the *final* file post-rename
======================  ===============================================

The five service kinds exercise the distributed failure modes of
:mod:`repro.service`: a lost worker whose lease lapses, the same job
executing twice, and a result store hit by a crash or bitrot.  The
store-side kinds (``kill-mid-write``, ``store-corrupt``) honour
``times`` against the *retry attempt* when the caller wraps the write
in :func:`attempt_scope`, so injected store damage spares retries the
same way worker faults do — the property that lets chaos campaigns
converge to bit-identical results.

Parameters (all optional):

- ``times`` — fire at most this many times *per attempt index* for
  worker faults (a run retried with ``attempt >= times`` is spared,
  which is what lets retry loops converge deterministically), and at
  most this many times per process for file/cache faults.
- ``match`` — only fire at sites whose label contains this substring.
- ``hang`` — sleep duration in seconds for ``worker-hang``
  (default 30; keep small in tests so an escaped hang cannot wedge
  a suite).
- ``p`` — firing probability in [0, 1] (default 1.0), drawn from a
  :class:`~repro.common.rng.DeterministicRng` forked per site label so
  two processes make identical decisions.
- ``seed`` — base seed for the probability draws (default 2003).

Everything is deterministic: the same spec, labels, and attempt numbers
fire the same faults in every process on every run.
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, InjectedFault
from repro.common.rng import DeterministicRng

#: Environment variable carrying the active fault spec into workers.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code used by injected worker crashes (distinctive in waitpid logs).
CRASH_EXIT_CODE = 83

_KINDS = (
    "worker-crash",
    "worker-hang",
    "worker-raise",
    "cache-corrupt",
    "trace-truncate",
    "trace-bitflip",
    "lease-expiry",
    "heartbeat-stall",
    "kill-mid-write",
    "duplicate-delivery",
    "store-corrupt",
)

#: Retry-attempt context for store-side fault sites (see attempt_scope).
_attempt_context: Optional[int] = None


@contextmanager
def attempt_scope(attempt: int):
    """Tag store-side fault sites with the current retry attempt.

    ``kill-mid-write`` and ``store-corrupt`` fire at sites that have no
    natural attempt number (the result store does not know it is being
    retried).  Wrapping the execute-and-store path in
    ``with faults.attempt_scope(attempt):`` lets those sites apply the
    same ``attempt >= times`` sparing rule as worker faults, so a spec
    like ``kill-mid-write,times=1`` kills the first attempt and spares
    the retry in *any* process — deterministic convergence.
    """
    global _attempt_context
    previous = _attempt_context
    _attempt_context = attempt
    try:
        yield
    finally:
        _attempt_context = previous


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: kind, trigger bounds, and parameters."""

    kind: str
    times: int = 1
    match: str = ""
    hang: float = 30.0
    probability: float = 1.0
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from: {', '.join(_KINDS)}"
            )
        if self.times < 1:
            raise ConfigError(f"{self.kind}: times must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"{self.kind}: p must be in [0, 1]")
        if self.hang <= 0:
            raise ConfigError(f"{self.kind}: hang must be positive")


def parse_spec(text: str) -> List[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` spec string into :class:`FaultSpec` list."""
    specs: List[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        tokens = [token.strip() for token in clause.split(",")]
        kind, params = tokens[0], {}
        for token in tokens[1:]:
            if "=" not in token:
                raise ConfigError(
                    f"malformed fault parameter {token!r} in {clause!r}"
                )
            name, value = token.split("=", 1)
            params[name.strip()] = value.strip()
        try:
            specs.append(
                FaultSpec(
                    kind=kind,
                    times=int(params.pop("times", 1)),
                    match=params.pop("match", ""),
                    hang=float(params.pop("hang", 30.0)),
                    probability=float(params.pop("p", 1.0)),
                    seed=int(params.pop("seed", 2003)),
                )
            )
        except ValueError as exc:
            raise ConfigError(f"malformed fault clause {clause!r}: {exc}") from exc
        if params:
            raise ConfigError(
                f"unknown fault parameters {sorted(params)} in {clause!r}"
            )
    return specs


class FaultInjector:
    """Evaluates configured faults at instrumented sites.

    One injector lives per process (module global, lazily built from
    ``REPRO_FAULTS``).  Worker processes build their own from the
    inherited environment, so no state needs to cross the pickle
    boundary.
    """

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.specs = specs
        #: kind -> number of times it fired in this process.
        self.fired: Dict[str, int] = {}
        #: per-(kind, spec-index) firing counters for ``times`` limits.
        self._counts: Dict[int, int] = {}

    @classmethod
    def from_spec(cls, text: str) -> "FaultInjector":
        return cls(parse_spec(text))

    def _select(
        self, kind: str, label: str, attempt: Optional[int]
    ) -> Optional[FaultSpec]:
        for index, spec in enumerate(self.specs):
            if spec.kind != kind:
                continue
            if spec.match and spec.match not in label:
                continue
            if attempt is not None:
                # Worker faults: spare retries past the budget so retry
                # loops converge (attempt numbering is per run).
                if attempt >= spec.times:
                    continue
            elif self._counts.get(index, 0) >= spec.times:
                continue
            if spec.probability < 1.0:
                # Stable across processes (unlike builtin hash, which is
                # salted): the same site makes the same decision in the
                # parent and in every worker.
                site = f"{kind}|{label}|{attempt}".encode("utf-8")
                draw = DeterministicRng(spec.seed).fork(zlib.crc32(site))
                if not draw.chance(spec.probability):
                    continue
            self._counts[index] = self._counts.get(index, 0) + 1
            self.fired[kind] = self.fired.get(kind, 0) + 1
            return spec
        return None

    # -- sites -----------------------------------------------------------

    def worker_fault(self, label: str, attempt: int) -> None:
        """Called at worker entry; may crash, hang, or raise."""
        spec = self._select("worker-crash", label, attempt)
        if spec is not None:
            # Bypass Python teardown entirely — indistinguishable from a
            # SIGKILL'd worker as far as the parent pool can tell.
            os._exit(CRASH_EXIT_CODE)
        spec = self._select("worker-hang", label, attempt)
        if spec is not None:
            time.sleep(spec.hang)
        spec = self._select("worker-raise", label, attempt)
        if spec is not None:
            raise InjectedFault(f"injected worker failure at {label} (attempt {attempt})")

    def corrupt_cache_text(self, text: str, label: str) -> str:
        """Called with the serialized cache envelope before it is written."""
        spec = self._select("cache-corrupt", label, None)
        if spec is None:
            return text
        # Chop the envelope mid-way: models a crash between write and
        # rename racing a non-atomic writer, or a scribbling editor.
        return text[: max(1, len(text) // 2)]

    # -- service sites ---------------------------------------------------

    def lease_expired(self, label: str) -> bool:
        """Service scheduler asks: pretend this held lease lapsed?"""
        return self._select("lease-expiry", label, None) is not None

    def stall_heartbeat(self, label: str) -> bool:
        """Service asks: swallow this lease renewal (worker "lost")?"""
        return self._select("heartbeat-stall", label, None) is not None

    def duplicate_delivery(self, label: str) -> bool:
        """Job queue asks: hand an already-running job out again?"""
        return self._select("duplicate-delivery", label, None) is not None

    def kill_mid_write(self, label: str) -> None:
        """Called between the result store's temp write and its rename."""
        if self._select("kill-mid-write", label, _attempt_context) is not None:
            # Die with the temp file written but the rename not yet done:
            # the atomicity claim says no reader may ever see a torn entry.
            os._exit(CRASH_EXIT_CODE)

    def corrupt_store_file(self, path: os.PathLike) -> None:
        """Called after the result store's rename; may damage the file.

        Unlike ``cache-corrupt`` (which models a crashed *non-atomic*
        writer by chopping the byte stream before it hits disk), this
        damages the final, successfully renamed file — modelling bitrot
        or a scribbling co-tenant.  Readers must detect it and fall back
        to recompute or serve-stale.
        """
        label = os.fspath(path)
        if self._select("store-corrupt", label, _attempt_context) is None:
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))

    def corrupt_trace_file(self, path: os.PathLike) -> None:
        """Called after a trace file is fully written; may damage it."""
        label = os.fspath(path)
        spec = self._select("trace-truncate", label, None)
        if spec is not None:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(8, size // 2))
            return
        spec = self._select("trace-bitflip", label, None)
        if spec is not None:
            size = os.path.getsize(path)
            rng = DeterministicRng(spec.seed).fork(len(label))
            # Flip a bit in the record region (past the 16-byte header
            # area) so framing, not the magic check, must catch it.
            offset = rng.randint(min(16, size - 1), size - 1)
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes((byte[0] ^ 0x40,)))


# -- process-global injector ------------------------------------------------

_injector: Optional[FaultInjector] = None
_loaded_from_env = False


def install(injector: Optional[FaultInjector]) -> None:
    """Set (or clear) this process's injector without touching the env."""
    global _injector, _loaded_from_env
    _injector = injector
    _loaded_from_env = True


def install_spec(text: Optional[str]) -> Optional[FaultInjector]:
    """Install a spec in this process *and* export it to child processes."""
    if not text:
        os.environ.pop(FAULTS_ENV, None)
        install(None)
        return None
    injector = FaultInjector.from_spec(text)
    os.environ[FAULTS_ENV] = text
    install(injector)
    return injector


def active() -> Optional[FaultInjector]:
    """This process's injector, built lazily from ``REPRO_FAULTS``."""
    global _injector, _loaded_from_env
    if not _loaded_from_env:
        _loaded_from_env = True
        text = os.environ.get(FAULTS_ENV)
        if text:
            _injector = FaultInjector.from_spec(text)
    return _injector


def reset() -> None:
    """Forget the cached injector (tests; re-reads the env next time)."""
    global _injector, _loaded_from_env
    _injector = None
    _loaded_from_env = False


# -- convenience hooks (no-ops when nothing is installed) -------------------


def worker_fault(label: str, attempt: int) -> None:
    injector = active()
    if injector is not None:
        injector.worker_fault(label, attempt)


def corrupt_cache_text(text: str, label: str) -> str:
    injector = active()
    if injector is None:
        return text
    return injector.corrupt_cache_text(text, label)


def corrupt_trace_file(path: os.PathLike) -> None:
    injector = active()
    if injector is not None:
        injector.corrupt_trace_file(path)


def lease_expired(label: str) -> bool:
    injector = active()
    return injector is not None and injector.lease_expired(label)


def stall_heartbeat(label: str) -> bool:
    injector = active()
    return injector is not None and injector.stall_heartbeat(label)


def duplicate_delivery(label: str) -> bool:
    injector = active()
    return injector is not None and injector.duplicate_delivery(label)


def kill_mid_write(label: str) -> None:
    injector = active()
    if injector is not None:
        injector.kill_mid_write(label)


def corrupt_store_file(path: os.PathLike) -> None:
    injector = active()
    if injector is not None:
        injector.corrupt_store_file(path)
