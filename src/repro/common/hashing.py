"""Content hashing for cache keys.

Two hashes govern the persistent result cache
(:mod:`repro.analysis.cache`):

- :func:`content_hash` — a digest of an object's *values* (dataclasses
  are walked field by field), so two configurations that differ in any
  parameter hash differently even when they share a display name;
- :func:`code_version` — a digest of every ``repro`` source file, so
  editing the simulator invalidates all previously cached results.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Optional

_DIGEST_CHARS = 16

_code_version: Optional[str] = None


def canonical(value: object) -> object:
    """Reduce ``value`` to JSON-serialisable primitives, deterministically.

    Dataclasses become ``{field: value}`` dicts (declaration order),
    enums their names, tuples lists.  Dict keys are sorted so insertion
    order never leaks into the digest.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name)) for f in fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def content_hash(value: object) -> str:
    """Hex digest of ``value``'s canonical form."""
    payload = json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


def code_version() -> str:
    """Hex digest over every ``repro`` source file (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:_DIGEST_CHARS]
    return _code_version
