"""A minimal future-event list used by the bus and memory-controller models.

The processor core itself is cycle-driven, but the memory side is easier
to express as "this request's data will be valid at cycle N".  The event
queue keeps those completions ordered and lets a component pop everything
that matured at or before the current cycle.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, List, Tuple


class EventQueue:
    """A priority queue of ``(cycle, payload)`` events.

    Ties are broken by insertion order so simulation stays deterministic
    regardless of payload types (payloads never need to be comparable).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, cycle: int, payload: Any) -> None:
        """Schedule ``payload`` to mature at ``cycle``."""
        heapq.heappush(self._heap, (cycle, next(self._counter), payload))

    def next_cycle(self) -> int:
        """Cycle of the earliest pending event (queue must be non-empty)."""
        return self._heap[0][0]

    def pop_due(self, cycle: int) -> Iterator[Any]:
        """Yield every payload scheduled at or before ``cycle``, in order."""
        while self._heap and self._heap[0][0] <= cycle:
            yield heapq.heappop(self._heap)[2]

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
