"""Deterministic random-number helpers.

Every stochastic component of the simulator (trace generators, workload
profiles) draws from a :class:`DeterministicRng` seeded explicitly, so a
given workload name + seed always produces bit-identical traces.  This is
what makes the reproduction's "physical machine" reference runs stable
across processes and machines.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, explicitly seeded wrapper over :class:`random.Random`.

    Adds the handful of distributions the trace generators need (Zipf-like
    hot/cold selection, bounded geometric run lengths) on top of the
    standard uniform draws.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Return an independent generator derived from this seed.

        Forking lets one workload seed drive several independent streams
        (code layout, data addresses, branch outcomes) without the streams
        perturbing each other when one of them draws more numbers.
        """
        return DeterministicRng((self._seed * 1_000_003 + salt) & 0x7FFF_FFFF_FFFF_FFFF)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice from ``items`` with the given relative weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffled(self, items: Sequence[T]) -> list:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def geometric(self, mean: float, maximum: Optional[int] = None) -> int:
        """Draw a run length >= 1 with roughly the requested mean.

        Used for basic-block lengths and burst sizes.  The distribution is
        geometric with success probability ``1/mean``, optionally clamped.
        """
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        # Inverse-CDF sampling keeps this a single uniform draw.
        u = self._random.random()
        import math

        value = 1 + int(math.log(max(u, 1e-12)) / math.log(1.0 - p))
        if maximum is not None:
            value = min(value, maximum)
        return max(1, value)

    def zipf_index(self, population: int, skew: float = 1.0) -> int:
        """Draw an index in ``[0, population)`` with a Zipf-like skew.

        Low indices are "hot".  ``skew`` of 0 degenerates to uniform; larger
        values concentrate draws on the head.  Implemented via the inverse
        power transform, which is fast and adequate for workload shaping.
        """
        if population <= 1:
            return 0
        if skew <= 0.0:
            return self._random.randrange(population)
        u = self._random.random()
        # Inverse transform of a truncated power-law density.
        index = int(population * (u ** (1.0 + skew)))
        return min(index, population - 1)
