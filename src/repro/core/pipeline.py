"""The out-of-order pipeline engine.

Cycle-driven model of the SPARC64 V core, driven by a fetch unit that
consumes a trace.  Per cycle, in this order:

1. completion events (execution finishing, branch resolution);
2. in-order commit of up to four instructions from the window head;
3. load/store unit: up to two requests to the L1 operand cache, with
   bank-conflict arbitration (§3.2);
4. dispatch from reservation stations, speculatively when enabled (§3.1);
5. decode of up to four instructions into the window, allocating rename
   registers, station entries and LSQ entries;
6. fetch of one group.

**Speculative dispatch and replay.**  A dispatching instruction may use a
producer whose result is not final (an unresolved load, or something
downstream of one).  It registers as a *waiter* on each such producer.
When a load resolves at its predicted L1-hit time, waiters are confirmed;
when it resolves late (miss, bank-conflict delay, TLB walk), every waiter
is cancelled recursively — returned to its reservation station for
re-dispatch — reproducing §3.1's "all instructions that have
read-after-write dependency must be cancelled at every stage".
Cancellation epochs invalidate the stale completion events.

**Mispredicted branches.**  The model is trace-driven and single-path:
fetch blocks at a mispredicted branch and resumes when the branch
resolves, so the misprediction penalty is the dead fetch time plus the
pipeline refill — the same accounting the paper's model uses.

**Observability.**  A CPI-stack accountant runs on every cycle (it is a
couple of dict increments, so it is always on): a cycle with at least
one commit is ``base``; a zero-commit cycle is attributed to whatever
blocks the window head, or to the front end when the window is empty
(see :mod:`repro.observe.cpistack` for the scheme).  The attributed
cycles must sum to ``CoreStats.cycles`` exactly — the conservation
invariant is enforced in :meth:`ProcessorCore.finalize_stats`.  A
:class:`~repro.observe.events.PipelineTracer` can additionally be
attached for per-uop structured event traces; when none is attached the
only cost is an ``is None`` test per event site.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.core.lsq import LoadResolution, LoadStoreUnit
from repro.core.params import CoreParams, RsOrganization
from repro.core.rename import RenameTracker
from repro.core.reservation import ReservationStation, StationGroup
from repro.core.uop import FAR_FUTURE, Uop, UopState
from repro.frontend.bht import BhtParams, BranchHistoryTable
from repro.frontend.fetch import FetchedInstruction, FetchUnit, FrontEndParams
from repro.isa.opcodes import OpClass, uses_rsa, uses_rsbr, uses_rse, uses_rsf
from repro.memory.hierarchy import MemoryHierarchy
from repro.observe import categories as cat
from repro.observe.cpistack import new_stack, prune, verify_conservation
from repro.trace.stream import Trace

#: Abort threshold for a wedged simulation (no activity, no wake events).
_DEADLOCK_LIMIT = 100_000


def functional_warm(
    hierarchy: MemoryHierarchy, bht, records, prefetch: bool = False
) -> int:
    """Update caches/TLBs/predictor with ``records``, without timing.

    The functional-warming mode of sampled simulation: between detailed
    windows the instruction stream only maintains micro-architectural
    *contents* — cache tags, TLB entries, BHT counters — so a window
    starts from realistic state without paying detailed-simulation cost.
    State changes mirror the timed path's fill and training decisions.
    ``prefetch=True`` also keeps the L2 prefetch engine in sync (see
    :meth:`MemoryHierarchy.warm_fetch`).  Returns the number of records
    processed.
    """
    count = 0
    for record in records:
        hierarchy.warm_fetch(record.pc, prefetch=prefetch)
        if record.is_memory:
            hierarchy.warm_data(record.ea, record.is_store, prefetch=prefetch)
        elif record.op == OpClass.BRANCH_COND and bht is not None:
            bht.warm(record.pc, record.taken)
        count += 1
    return count


def _cache_counts(cache) -> Dict[str, int]:
    """Raw (un-ratioed) counters of one cache, for snapshot differencing."""
    stats = cache.stats
    return {
        "demand_accesses": stats.demand_accesses,
        "demand_misses": stats.demand_misses,
        "prefetch_accesses": stats.prefetch_accesses,
        "prefetch_misses": stats.prefetch_misses,
        "writebacks": stats.writebacks,
        "invalidations_received": stats.invalidations_received,
        "prefetch_useful": stats.prefetch_useful,
    }


def _diff_snapshots(start: Dict[str, object], end: Dict[str, object]) -> Dict[str, object]:
    """Counter-wise ``end - start``; every counter is monotone between them."""
    out: Dict[str, object] = {}
    for key, after in end.items():
        before = start[key]
        if isinstance(after, dict):
            keys = set(after) | set(before)
            out[key] = {k: after.get(k, 0) - before.get(k, 0) for k in keys}
        else:
            out[key] = after - before
    out["cpi_stack"] = prune(out["cpi_stack"])
    return out


@dataclass
class CoreStats:
    """Raw counters produced by one core run."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    replays: int = 0
    dispatches: int = 0
    load_level_counts: Dict[str, int] = field(default_factory=dict)
    decode_stalls: Dict[str, int] = field(default_factory=dict)
    bank_conflicts: int = 0
    store_forwards: int = 0
    order_stalls: int = 0
    fetch_icache_stall_cycles: int = 0
    fetch_taken_bubble_cycles: int = 0
    branch_mispredictions: int = 0
    conditional_branches: int = 0
    #: CPI-stack: cycles attributed to each stall category (zero entries
    #: pruned).  Invariant: the values sum to ``cycles`` exactly.
    cpi_stack: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def misprediction_ratio(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.branch_mispredictions / self.conditional_branches


class ProcessorCore:
    """One SPARC64 V core executing one trace."""

    def __init__(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        core_params: CoreParams,
        frontend_params: FrontEndParams,
        bht_params: BhtParams,
        bht: Optional[BranchHistoryTable] = None,
    ) -> None:
        self.params = core_params
        self.hierarchy = hierarchy
        self.fetch = FetchUnit(trace, hierarchy, bht_params, frontend_params, bht=bht)
        self.lsu = LoadStoreUnit(core_params, hierarchy)
        self.rename = RenameTracker(core_params.int_rename, core_params.fp_rename)
        self._build_stations(core_params)
        self.window: List[Uop] = []  # treated as a FIFO; head at index 0
        self._window_head = 0
        self._seq = 0
        self._events: List[tuple] = []  # (cycle, counter, kind, epoch, uop, payload)
        self._event_counter = 0
        self._wakes: List[int] = []
        #: Min over station ``next_eligible`` notes, maintained at the
        #: tail of :meth:`_dispatch` so the idle-cycle jump does not
        #: re-walk every station (the notes cannot change between
        #: dispatch and :meth:`_next_cycle`: only ``select`` writes them,
        #: and decode/fetch never do).
        self._station_wake: Optional[int] = None
        self._trace_length = len(trace)
        self._committed = 0
        self.stats = CoreStats()
        self._decode_stalls = {kind: 0 for kind in cat.DECODE_STALL_KINDS}
        self._load_levels: Dict[str, int] = {}
        self.cycle = 0
        self._trace_name = getattr(trace, "name", "trace")
        # CPI-stack accountant: every cycle in [0, _accounted_until) has
        # been attributed to exactly one category in _stack.
        self._stack = new_stack()
        self._accounted_until = 0
        #: Optional PipelineTracer (see attach_tracer).
        self.tracer = None

    def _build_stations(self, params: CoreParams) -> None:
        if params.rs_organization is RsOrganization.TWO_RS:
            rse = [
                ReservationStation(f"RSE{i}", params.rse_entries, 1)
                for i in range(params.int_units)
            ]
            rsf = [
                ReservationStation(f"RSF{i}", params.rsf_entries, 1)
                for i in range(params.fp_units)
            ]
        else:
            rse = [
                ReservationStation(
                    "RSE", params.rse_entries * params.int_units, params.int_units
                )
            ]
            rsf = [
                ReservationStation(
                    "RSF", params.rsf_entries * params.fp_units, params.fp_units
                )
            ]
        self.rse = StationGroup("RSE", rse)
        self.rsf = StationGroup("RSF", rsf)
        self.rsa = ReservationStation("RSA", params.rsa_entries, params.eag_units)
        self.rsbr = ReservationStation("RSBR", params.rsbr_entries, 1)
        self._all_stations: List[ReservationStation] = rse + rsf + [self.rsa, self.rsbr]

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once every trace instruction has committed."""
        return self._committed >= self._trace_length

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.observe.events.PipelineTracer` (or None)."""
        self.tracer = tracer
        self.fetch.tracer = tracer

    def step_cycle(self, cycle: int) -> bool:
        """Advance all pipeline phases for one cycle; True on any activity."""
        self.cycle = cycle
        account = cycle >= self._accounted_until
        if account and cycle > self._accounted_until:
            # The driver skipped an idle span: no event fired and no phase
            # ran inside it, so the classification at the span start holds
            # for every skipped cycle.
            span = cycle - self._accounted_until
            self._stack[self._classify_stall(self._accounted_until)] += span
        activity = self._process_events(cycle)
        newly_committed = self._commit(cycle)
        self._committed += newly_committed
        activity |= newly_committed > 0

        resolutions, lsu_active = self.lsu.step(cycle)
        activity |= lsu_active
        for resolution in resolutions:
            self._schedule_resolution(resolution)
            activity = True

        activity |= self._dispatch(cycle)
        activity |= self._decode(cycle)

        buffered_before = len(self.fetch._buffer)
        self.fetch.step(cycle)
        activity |= len(self.fetch._buffer) != buffered_before

        if account:
            if newly_committed:
                self._stack[cat.BASE] += 1
            else:
                self._stack[self._classify_stall(cycle)] += 1
            self._accounted_until = cycle + 1
        return activity

    def run(self, max_cycles: Optional[int] = None) -> CoreStats:
        """Simulate until the whole trace commits; returns the statistics."""
        cycle = 0
        idle_streak = 0
        while not self.finished:
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationError(f"exceeded max_cycles={max_cycles}")
            if self.step_cycle(cycle):
                idle_streak = 0
                cycle += 1
            else:
                idle_streak += 1
                if idle_streak > _DEADLOCK_LIMIT:
                    raise SimulationError(
                        f"deadlock at cycle {cycle}: committed {self._committed}/"
                        f"{self._trace_length}, window {self._window_size()}"
                    )
                cycle = self._next_cycle(cycle)
        self.finalize_stats(cycle)
        return self.stats

    # ------------------------------------------------------------------
    # Windowed measurement (sampled simulation).
    # ------------------------------------------------------------------

    def run_measured(
        self,
        measure_start: int,
        measure_end: int,
        max_cycles: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run in detail, measuring only commits ``measure_start..measure_end``.

        The counter snapshot taken when the ``measure_start``-th commit
        is crossed is subtracted from the one taken at the
        ``measure_end``-th, so the leading instructions prime the
        pipeline in detailed mode without polluting the measurement, and
        the run stops as soon as the measured span has committed —
        trailing trace records (the drain pad) only serve to keep fetch
        busy through the end of the measured span.  Returns the flat
        measured-counter dict consumed by
        :mod:`repro.analysis.estimate`; the measured CPI stack conserves
        the measured cycles exactly.
        """
        if not 0 <= measure_start < measure_end:
            raise SimulationError("need 0 <= measure_start < measure_end")
        cycle = 0
        idle_streak = 0
        start_snap = self._snapshot() if measure_start == 0 else None
        end_snap = None
        while not self.finished:
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationError(f"exceeded max_cycles={max_cycles}")
            if self.step_cycle(cycle):
                idle_streak = 0
                advanced = cycle + 1
            else:
                idle_streak += 1
                if idle_streak > _DEADLOCK_LIMIT:
                    raise SimulationError(
                        f"deadlock at cycle {cycle}: committed {self._committed}/"
                        f"{self._trace_length}, window {self._window_size()}"
                    )
                advanced = self._next_cycle(cycle)
            if start_snap is None and self._committed >= measure_start:
                start_snap = self._snapshot()
            if self._committed >= measure_end:
                end_snap = self._snapshot()
                break
            cycle = advanced
        if start_snap is None:
            raise SimulationError(
                f"measurement start {measure_start} beyond trace "
                f"({self._committed} instructions committed)"
            )
        if end_snap is None:
            # Trace shorter than requested: measure through the last commit.
            end_snap = self._snapshot()
        measured = _diff_snapshots(start_snap, end_snap)
        verify_conservation(
            measured["cpi_stack"],
            measured["cycles"],
            where=f"measured window of trace {self._trace_name!r}",
        )
        return measured

    def _snapshot(self) -> Dict[str, object]:
        """Copy every measured counter at the current accounting point.

        ``step_cycle`` attributes each cycle before returning, so after
        any step the stack total equals ``_accounted_until`` exactly and
        a snapshot difference inherits CPI-stack conservation.
        """
        hierarchy = self.hierarchy
        bht_stats = self.fetch.bht.stats
        return {
            "cycles": self._accounted_until,
            "instructions": self._committed,
            "cpi_stack": dict(self._stack),
            "loads": self.stats.loads,
            "stores": self.stats.stores,
            "branches": self.stats.branches,
            "replays": self.stats.replays,
            "dispatches": self.stats.dispatches,
            "bank_conflicts": self.lsu.bank_conflicts,
            "store_forwards": self.lsu.forwards,
            "order_stalls": self.lsu.order_stalls,
            "fetch_icache_stall_cycles": self.fetch.icache_stall_cycles,
            "fetch_taken_bubble_cycles": self.fetch.taken_bubble_cycles,
            "branch_mispredictions": bht_stats.mispredictions,
            "conditional_branches": bht_stats.conditional_branches,
            "decode_stalls": dict(self._decode_stalls),
            "load_level_counts": dict(self._load_levels),
            "l1i": _cache_counts(hierarchy.l1i),
            "l1d": _cache_counts(hierarchy.l1d),
            "l2": _cache_counts(hierarchy.l2),
            "itlb": {
                "accesses": hierarchy.itlb.stats.accesses,
                "misses": hierarchy.itlb.stats.misses,
            },
            "dtlb": {
                "accesses": hierarchy.dtlb.stats.accesses,
                "misses": hierarchy.dtlb.stats.misses,
            },
            "l1_l2_bus_busy": hierarchy.l1_l2_bus.busy_cycles,
            "system_bus_busy": hierarchy.system_bus.busy_cycles,
            "prefetches_issued": hierarchy.prefetcher.stats.issued,
        }

    def finalize_stats(self, cycles: int) -> CoreStats:
        """Populate the statistics object after the last commit.

        Also closes the CPI-stack books and enforces conservation: the
        attributed cycles must equal ``cycles`` exactly.
        """
        if cycles > self._accounted_until:
            # Tail the driver never stepped (an SMP core idling after its
            # own trace finished): one classification covers the span.
            span = cycles - self._accounted_until
            self._stack[self._classify_stall(self._accounted_until)] += span
            self._accounted_until = cycles
        self.stats.cpi_stack = prune(self._stack)
        verify_conservation(
            self._stack, cycles, where=f"trace {self._trace_name!r}"
        )
        self.stats.cycles = cycles
        self.stats.instructions = self._committed
        self.stats.decode_stalls = dict(self._decode_stalls)
        self.stats.load_level_counts = dict(self._load_levels)
        self.stats.bank_conflicts = self.lsu.bank_conflicts
        self.stats.store_forwards = self.lsu.forwards
        self.stats.order_stalls = self.lsu.order_stalls
        self.stats.fetch_icache_stall_cycles = self.fetch.icache_stall_cycles
        self.stats.fetch_taken_bubble_cycles = self.fetch.taken_bubble_cycles
        self.stats.branch_mispredictions = self.fetch.bht.stats.mispredictions
        self.stats.conditional_branches = self.fetch.bht.stats.conditional_branches
        return self.stats

    def _next_cycle(self, cycle: int) -> int:
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        while self._wakes and self._wakes[0] <= cycle:
            heapq.heappop(self._wakes)
        if self._wakes:
            candidates.append(self._wakes[0])
        fetch_wake = self.fetch.next_wake_cycle()
        if fetch_wake is not None and fetch_wake > cycle:
            candidates.append(fetch_wake)
        # A buffered group still in the fetch pipe becomes decodable at
        # its delivery cycle even while fetch itself stalls on the next
        # group's I-miss; without this candidate the jump overshoots it.
        buffer = self.fetch._buffer
        if buffer:
            head_avail = buffer[0].avail_cycle
            if head_avail > cycle:
                candidates.append(head_avail)
        lsu_wake = self.lsu.pending_work_cycle(cycle)
        if lsu_wake is not None:
            candidates.append(lsu_wake)
        station_wake = self._station_wake
        if station_wake is not None and station_wake > cycle:
            candidates.append(station_wake)
        if not candidates:
            return cycle + 1
        return max(cycle + 1, min(candidates))

    def _wake(self, cycle: int) -> None:
        heapq.heappush(self._wakes, cycle)

    def _window_size(self) -> int:
        return len(self.window) - self._window_head

    def _classify_stall(self, cycle: int) -> str:
        """Attribute one zero-commit cycle to the category blocking progress.

        Head-of-window rule: the oldest in-flight instruction is the one
        commit is waiting for, so the cycle is charged to whatever that
        instruction is waiting on.  With an empty window the front end is
        responsible.  See :mod:`repro.observe.cpistack` for the scheme.
        """
        if self._window_head < len(self.window):
            uop = self.window[self._window_head]
            if uop.is_load:
                level = uop.mem_level
                if level is not None:
                    # Resolution known: charge the servicing level.
                    return cat.LEVEL_CATEGORY.get(level, cat.DCACHE_L1)
                lsu = self.lsu
                if lsu.last_conflict_cycle == cycle and lsu.last_conflict_seq == uop.seq:
                    return cat.BANK_CONFLICT
                if (
                    lsu.last_order_stall_cycle == cycle
                    and lsu.last_order_stall_seq == uop.seq
                ):
                    return cat.LSQ_ORDER
                if uop.replays:
                    return cat.REPLAY
                # Address generation / L1 access at predicted hit timing.
                return cat.DCACHE_L1
            if uop.is_store:
                if uop.state == UopState.DONE:
                    return cat.STORE_DATA
                if uop.replays:
                    return cat.REPLAY
                return cat.EXEC
            if uop.mispredicted and uop.is_branch and uop.state != UopState.DONE:
                return cat.BRANCH_MISPREDICT
            if uop.replays:
                return cat.REPLAY
            return cat.EXEC
        if self.fetch._buffer:
            # Instructions are in the fetch pipe but not yet decodable.
            return cat.FRONTEND_FILL
        reason = self.fetch.stall_reason(cycle)
        if reason is None:
            return cat.FRONTEND_FILL
        return cat.FETCH_CATEGORY[reason]

    # ------------------------------------------------------------------
    # Phase 1: completion events.
    # ------------------------------------------------------------------

    def _schedule_done(self, uop: Uop, cycle: int) -> None:
        self._event_counter += 1
        heapq.heappush(
            self._events, (cycle, self._event_counter, "done", uop.epoch, uop, None)
        )

    def _schedule_resolution(self, resolution: LoadResolution) -> None:
        """Queue a load's hit/miss outcome to become visible to the core.

        The L1 reports hit/miss when the speculatively scheduled data
        would have been forwarded — one hit-latency after issue — so
        dependents keep dispatching against the hit prediction until then
        (this window is what makes cancel-and-replay happen at all, §3.1).
        Store-forwarded data is known immediately.
        """
        uop = resolution.uop
        if resolution.level == "forward":
            apply_at = resolution.ready_cycle
        else:
            apply_at = resolution.issue_cycle + self.hierarchy.l1d.geometry.hit_latency
        self._event_counter += 1
        heapq.heappush(
            self._events,
            (apply_at, self._event_counter, "resolve", uop.epoch, uop, resolution),
        )

    def _process_events(self, cycle: int) -> bool:
        activity = False
        while self._events and self._events[0][0] <= cycle:
            event_cycle, _, kind, epoch, uop, payload = heapq.heappop(self._events)
            if uop.epoch != epoch or uop.state != UopState.INFLIGHT:
                continue  # stale (cancelled and possibly re-dispatched)
            if kind == "resolve":
                self._apply_load_resolution(payload, event_cycle)
            else:
                uop.state = UopState.DONE
                if self.tracer is not None:
                    self.tracer.emit(event_cycle, "complete", uop.seq, uop.mem_level)
                if not uop.confirmed:
                    self._confirm(uop)
                if uop.is_branch and uop.mispredicted:
                    self.fetch.redirect(cycle)
            activity = True
        return activity

    # ------------------------------------------------------------------
    # Phase 2: commit.
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> int:
        committed = 0
        while committed < self.params.commit_width and self._window_head < len(self.window):
            uop = self.window[self._window_head]
            if uop.state != UopState.DONE or uop.done_cycle > cycle:
                break
            if uop.is_store and not self._store_data_ready(uop, cycle):
                break
            uop.state = UopState.COMMITTED
            uop.commit_cycle = cycle
            if self.tracer is not None:
                self.tracer.emit(cycle, "commit", uop.seq)
            self.rename.release(uop)
            if uop.holds_rs_entry:
                uop.station.free(uop)
            if uop.is_load:
                self.lsu.release(uop)
                self.stats.loads += 1
            elif uop.is_store:
                self.lsu.store_committed(uop, cycle)
                self.stats.stores += 1
            elif uop.is_branch:
                self.stats.branches += 1
            self._window_head += 1
            committed += 1
        # Compact the window list occasionally.
        if self._window_head > 256:
            del self.window[: self._window_head]
            self._window_head = 0
        return committed

    def _store_data_ready(self, uop: Uop, cycle: int) -> bool:
        entry = self.lsu._by_uop.get(uop.seq)
        if entry is None:
            return True
        producer = getattr(entry, "data_producer", None)
        if producer is None or producer.state == UopState.COMMITTED:
            return True
        if producer.state == UopState.DONE and producer.result_ready <= cycle:
            return True
        return False

    # ------------------------------------------------------------------
    # Phase 3: load resolution (after LSU issue).
    # ------------------------------------------------------------------

    def _apply_load_resolution(self, resolution: LoadResolution, cycle: int) -> None:
        uop = resolution.uop
        if uop.state != UopState.INFLIGHT:
            return  # cancelled between address generation and issue
        ready = resolution.ready_cycle
        if not self.params.data_forwarding:
            ready += self.params.no_forwarding_penalty
        uop.result_ready = ready
        uop.done_cycle = ready
        uop.mem_level = resolution.level
        self._load_levels[resolution.level] = self._load_levels.get(resolution.level, 0) + 1
        if not resolution.prediction_held:
            self._cancel_waiters(uop, ready)
        uop.confirmed = True
        self._confirm(uop, becoming_done=False)
        self._schedule_done(uop, ready)
        self._wake(ready)

    # ------------------------------------------------------------------
    # Confirmation / cancellation.
    # ------------------------------------------------------------------

    def _confirm(self, uop: Uop, becoming_done: bool = True) -> None:
        """Producer ``uop``'s timing is now final; release its waiters."""
        uop.confirmed = True
        waiters = uop.waiters
        uop.waiters = []
        for waiter, epoch in waiters:
            if waiter.epoch != epoch or waiter.state != UopState.INFLIGHT:
                continue
            waiter.unconfirmed -= 1
            if waiter.unconfirmed <= 0:
                if waiter.holds_rs_entry:
                    waiter.station.free(waiter)
                if not waiter.is_load and not waiter.confirmed:
                    self._confirm(waiter)

    def _cancel_waiters(self, uop: Uop, producer_ready: int) -> None:
        waiters = uop.waiters
        uop.waiters = []
        exec_offset = self.params.dispatch_to_exec
        earliest = max(producer_ready - exec_offset, 0)
        for waiter, epoch in waiters:
            if waiter.epoch != epoch or waiter.state != UopState.INFLIGHT:
                continue
            self._cancel(waiter, earliest)

    def _cancel(self, uop: Uop, earliest: int) -> None:
        self.stats.replays += 1
        uop.replays += 1
        if self.tracer is not None:
            self.tracer.emit(self.cycle, "cancel", uop.seq, uop.replays)
        uop.epoch += 1
        uop.state = UopState.WAITING
        uop.result_ready = FAR_FUTURE
        uop.done_cycle = FAR_FUTURE
        uop.confirmed = False
        uop.unconfirmed = 0
        uop.earliest_dispatch = earliest
        if not uop.holds_rs_entry:
            # The entry was released on a confirmation that later proved
            # wrong — impossible by construction, but re-insert defensively.
            uop.station.insert(uop)
        if uop.is_load:
            uop.mem_level = None  # the re-issued access may hit elsewhere
            self.lsu.load_cancelled(uop)
        self._cancel_waiters(uop, earliest)
        self._wake(earliest)

    # ------------------------------------------------------------------
    # Phase 4: dispatch.
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> bool:
        speculative = self.params.speculative_dispatch
        exec_offset = self.params.dispatch_to_exec
        activity = False
        wake = None
        for station in self._all_stations:
            selected = station.select(cycle, exec_offset, speculative)
            for slot, uop in enumerate(selected):
                if (
                    uop.op == OpClass.SPECIAL
                    and self.params.special_serialize
                    and not self._is_oldest(uop)
                ):
                    continue
                self._do_dispatch(uop, cycle, station, slot)
                activity = True
            ne = station.next_eligible
            if ne is not None and ne > cycle and (wake is None or ne < wake):
                wake = ne
        self._station_wake = wake
        return activity

    def _is_oldest(self, uop: Uop) -> bool:
        return (
            self._window_head < len(self.window)
            and self.window[self._window_head] is uop
        )

    def _do_dispatch(
        self, uop: Uop, cycle: int, station: ReservationStation, slot: int
    ) -> None:
        params = self.params
        uop.state = UopState.INFLIGHT
        uop.dispatch_cycle = cycle
        station.dispatches += 1
        self.stats.dispatches += 1
        if self.tracer is not None:
            self.tracer.emit(cycle, "dispatch", uop.seq, station.name)
        exec_start = cycle + params.dispatch_to_exec

        # Register on unconfirmed producers for cancel/confirm tracking.
        unconfirmed = 0
        for producer in uop.producers:
            if producer.state == UopState.INFLIGHT and not producer.confirmed:
                producer.waiters.append((uop, uop.epoch))
                unconfirmed += 1
        uop.unconfirmed = unconfirmed
        uop.speculative = unconfirmed > 0

        op = uop.op
        if uop.is_load:
            addr_ready = exec_start + 1  # EAG latency
            predicted = addr_ready + self.hierarchy.l1d.geometry.hit_latency
            uop.result_ready = predicted  # speculative prediction (§3.1)
            uop.confirmed = False
            self.lsu.address_generated(uop, addr_ready, predicted)
            if unconfirmed == 0 and uop.holds_rs_entry:
                station.free(uop)
            self._wake(addr_ready)
            return
        if uop.is_store:
            addr_ready = exec_start + 1
            self.lsu.address_generated(uop, addr_ready, 0)
            uop.done_cycle = addr_ready
            uop.confirmed = unconfirmed == 0
            if uop.confirmed and uop.holds_rs_entry:
                station.free(uop)
            self._schedule_done(uop, addr_ready)
            return

        latency = params.latency_of(op)
        done = exec_start + latency
        result_ready = done
        if not params.data_forwarding:
            result_ready += params.no_forwarding_penalty
        uop.result_ready = result_ready
        uop.done_cycle = done
        uop.confirmed = unconfirmed == 0
        if uop.confirmed and uop.holds_rs_entry:
            station.free(uop)
        if op in (OpClass.INT_DIV, OpClass.FP_DIV):
            station.unit_busy[slot % station.dispatch_width] = done
        self._schedule_done(uop, done)

    # ------------------------------------------------------------------
    # Phase 5: decode.
    # ------------------------------------------------------------------

    def _decode(self, cycle: int) -> bool:
        decoded = 0
        while decoded < self.params.issue_width:
            fetched = self._peek_fetch(cycle)
            if fetched is None:
                break
            if not self._can_decode(fetched):
                break
            self._pop_fetch()
            self._make_uop(fetched, cycle)
            decoded += 1
        return decoded > 0

    def _peek_fetch(self, cycle: int) -> Optional[FetchedInstruction]:
        buffer = self.fetch._buffer
        if buffer and buffer[0].avail_cycle <= cycle:
            return buffer[0]
        return None

    def _pop_fetch(self) -> FetchedInstruction:
        return self.fetch._buffer.popleft()

    def _can_decode(self, fetched: FetchedInstruction) -> bool:
        record = fetched.record
        if self._window_size() >= self.params.window_size:
            self._decode_stalls[cat.DECODE_WINDOW] += 1
            return False
        kind = self.rename.dest_kind(record.dest)
        if not self.rename.can_allocate(kind):
            self._decode_stalls[cat.DECODE_RENAME_INT if kind == "int" else cat.DECODE_RENAME_FP] += 1
            return False
        op = record.op
        if uses_rse(op):
            if self.rse.station_for_insert() is None:
                self._decode_stalls[cat.DECODE_RS] += 1
                return False
        elif uses_rsf(op):
            if self.rsf.station_for_insert() is None:
                self._decode_stalls[cat.DECODE_RS] += 1
                return False
        elif uses_rsa(op):
            if not self.rsa.has_space():
                self._decode_stalls[cat.DECODE_RS] += 1
                return False
            if op == OpClass.LOAD and not self.lsu.can_allocate_load():
                self._decode_stalls[cat.DECODE_LQ] += 1
                return False
            if op == OpClass.STORE and not self.lsu.can_allocate_store():
                self._decode_stalls[cat.DECODE_SQ] += 1
                return False
        elif uses_rsbr(op):
            if not self.rsbr.has_space():
                self._decode_stalls[cat.DECODE_RS] += 1
                return False
        return True

    def _make_uop(self, fetched: FetchedInstruction, cycle: int) -> None:
        record = fetched.record
        uop = Uop(self._seq, record, cycle)
        self._seq += 1
        uop.mispredicted = fetched.mispredicted

        # Producer edges.  For stores the final source is the data operand,
        # which gates the queue write, not the address generation.
        srcs = record.srcs
        data_producer: Optional[Uop] = None
        if uop.is_store and srcs:
            data_producer = self.rename.producer_of(srcs[-1])
            srcs = srcs[:-1]
        producers = []
        for src in srcs:
            producer = self.rename.producer_of(src)
            if producer is not None and producer not in producers:
                producers.append(producer)
        uop.producers = tuple(producers)

        self.rename.allocate(uop)

        op = record.op
        if uses_rse(op):
            station = self.rse.station_for_insert()
        elif uses_rsf(op):
            station = self.rsf.station_for_insert()
        elif uses_rsa(op):
            station = self.rsa
        else:
            station = self.rsbr
        if station is None:  # pragma: no cover - guarded by _can_decode
            raise SimulationError("decode without station space")
        station.insert(uop)

        if uop.is_load or uop.is_store:
            self.lsu.allocate(uop, data_producer)

        self.window.append(uop)
        if self.tracer is not None:
            self.tracer.emit(cycle, "decode", uop.seq, record.pc, record.op.name)
