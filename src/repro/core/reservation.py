"""Reservation stations.

The SPARC64 V has four station kinds (Table 1): RSE (2 × 8 for the
integer units), RSF (2 × 8 for the FP units), RSA (10, feeding two
address generators), and RSBR (10, feeding the branch unit).  §4.4.1
studies the RSE/RSF organisation: the production "2RS" shape ties each
buffer to a unique unit with one dispatch per buffer per cycle, versus a
"1RS" shape with one combined buffer dispatching up to two per cycle.

Dispatch selection is oldest-first among entries whose producers are
(speculatively) ready: with speculative dispatch (§3.1), a producer is
ready if its result *will be* available by the time this instruction
reaches its execution stage.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import SimulationError
from repro.core.uop import FAR_FUTURE, Uop, UopState

__all__ = ["ReservationStation", "StationGroup"]


class ReservationStation:
    """One buffer with a fixed dispatch width."""

    def __init__(self, name: str, capacity: int, dispatch_width: int) -> None:
        if capacity < 1 or dispatch_width < 1:
            raise SimulationError(f"{name}: bad station shape")
        self.name = name
        self.capacity = capacity
        self.dispatch_width = dispatch_width
        self.entries: List[Uop] = []
        #: Busy-until per attached unit slot (div-style unpipelined ops).
        self.unit_busy: List[int] = [0] * dispatch_width
        self.dispatches = 0
        self.full_stalls = 0
        #: Earliest future cycle an entry becomes dispatchable (scan hint
        #: for the engine's idle-cycle jump); None when unknown.
        self.next_eligible: Optional[int] = None

    def has_space(self) -> bool:
        if len(self.entries) >= self.capacity:
            self.full_stalls += 1
            return False
        return True

    def insert(self, uop: Uop) -> None:
        if len(self.entries) >= self.capacity:
            raise SimulationError(f"{self.name}: insert into full station")
        self.entries.append(uop)
        uop.station = self
        uop.holds_rs_entry = True

    def free(self, uop: Uop) -> None:
        """Release the entry (dispatch confirmed or commit)."""
        if uop.holds_rs_entry:
            self.entries.remove(uop)
            uop.holds_rs_entry = False

    def occupancy(self) -> int:
        return len(self.entries)

    def select(self, cycle: int, exec_offset: int, speculative: bool) -> List[Uop]:
        """Pick up to ``dispatch_width`` oldest dispatchable entries.

        ``exec_offset`` is the dispatch-to-execute distance: a producer is
        acceptable if its (predicted) result-ready cycle is no later than
        ``cycle + exec_offset``.  Without speculative dispatch the
        producer must already be DONE with its result available now.
        """
        selected: List[Uop] = []
        horizon = cycle + exec_offset
        self.next_eligible = None
        for slot in range(self.dispatch_width):
            if self.unit_busy[slot] > cycle:
                self._note_eligible(self.unit_busy[slot])
                continue
            best: Optional[Uop] = None
            for uop in self.entries:
                if uop.state != UopState.WAITING:
                    continue
                if uop in selected:
                    continue
                if uop.earliest_dispatch > cycle:
                    self._note_eligible(uop.earliest_dispatch)
                    continue
                ready_at = self._sources_ready_at(uop, speculative, exec_offset)
                if ready_at > cycle:
                    if ready_at < FAR_FUTURE:
                        self._note_eligible(ready_at)
                    continue
                if best is None or uop.seq < best.seq:
                    best = uop
            if best is not None:
                selected.append(best)
        return selected

    def _note_eligible(self, cycle: int) -> None:
        if self.next_eligible is None or cycle < self.next_eligible:
            self.next_eligible = cycle

    @staticmethod
    def _sources_ready_at(uop: Uop, speculative: bool, exec_offset: int) -> int:
        """Earliest dispatch cycle at which sources are (spec-)ready.

        Returns :data:`FAR_FUTURE` when unknown (a producer has not been
        dispatched, or speculation is off and a producer is in flight).
        """
        ready_at = 0
        for producer in uop.producers:
            state = producer.state
            if state == UopState.COMMITTED:
                continue
            if state == UopState.DONE:
                if speculative:
                    candidate = producer.result_ready - exec_offset
                else:
                    candidate = producer.result_ready
            elif state == UopState.INFLIGHT:
                if not speculative or producer.result_ready >= FAR_FUTURE:
                    return FAR_FUTURE
                candidate = producer.result_ready - exec_offset
            else:
                return FAR_FUTURE  # WAITING producer
            if candidate > ready_at:
                ready_at = candidate
        return ready_at


class StationGroup:
    """A set of buffers that share an instruction class (RSE or RSF)."""

    def __init__(self, name: str, stations: List[ReservationStation]) -> None:
        self.name = name
        self.stations = stations
        self._next_alloc = 0

    def station_for_insert(self) -> Optional[ReservationStation]:
        """Round-robin-least-occupied buffer with space, or None."""
        candidates = [station for station in self.stations if len(station.entries) < station.capacity]
        if not candidates:
            for station in self.stations:
                station.full_stalls += 1
            return None
        best = min(candidates, key=lambda station: (station.occupancy(), station.name))
        return best

    def total_occupancy(self) -> int:
        return sum(station.occupancy() for station in self.stations)
