"""Core configuration parameters.

Defaults reproduce Table 1.  The alternative values exercised by the
paper's studies (2-way issue for Figure 8, 1RS for Figure 18, speculative
dispatch and forwarding ablations for §3.1) are all expressed through
this dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict

from repro.common.errors import ConfigError
from repro.isa.opcodes import EXECUTION_LATENCY, OpClass


class RsOrganization(str, Enum):
    """Reservation-station organisation for RSE/RSF (§4.4.1).

    - ``TWO_RS`` (production): two stations per unit pair, each tied to a
      unique execution unit, one dispatch per station per cycle.
    - ``ONE_RS``: a single double-size station dispatching up to two
      operations per cycle to either unit — slightly better IPC, rejected
      for dispatch-stage complexity.
    """

    TWO_RS = "2RS"
    ONE_RS = "1RS"


@dataclass(frozen=True)
class CoreParams:
    """Execution-core configuration (defaults = Table 1)."""

    #: Instructions decoded/issued into the window per cycle.
    issue_width: int = 4
    #: Instructions committed per cycle.
    commit_width: int = 4
    #: Instruction window (commit stack) entries.
    window_size: int = 64
    #: Renaming registers for integer / floating-point results.
    int_rename: int = 32
    fp_rename: int = 32

    rs_organization: RsOrganization = RsOrganization.TWO_RS
    #: Entries per RSE/RSF buffer (8/8 in 2RS; combined 16 in 1RS).
    rse_entries: int = 8
    rsf_entries: int = 8
    rsa_entries: int = 10
    rsbr_entries: int = 10

    int_units: int = 2
    fp_units: int = 2
    eag_units: int = 2

    load_queue: int = 16
    store_queue: int = 10
    #: Requests per cycle between the operand pipeline and the L1 (§3.2).
    l1d_ports: int = 2

    #: Pipeline stages between RS dispatch and execution (§3.1: dispatch,
    #: register read, execute — minimum three-stage execution pipeline).
    dispatch_to_exec: int = 2

    #: §3.1 techniques.
    speculative_dispatch: bool = True
    data_forwarding: bool = True
    #: Extra result-to-use delay when data forwarding is disabled (results
    #: must be written to and re-read from the register file).
    no_forwarding_penalty: int = 2

    #: Serialise SPECIAL instructions at the window head (detailed model);
    #: when False they execute like ALU ops with ``special_latency``
    #: (the pre-v5 flat experimental penalty of §5).
    special_serialize: bool = True
    special_latency: int = 12

    #: Per-class execution latency overrides.
    latency_overrides: Dict[OpClass, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.issue_width < 1 or self.commit_width < 1:
            raise ConfigError("issue/commit width must be >= 1")
        if self.window_size < self.issue_width:
            raise ConfigError("window must hold at least one issue group")
        if self.int_rename < 1 or self.fp_rename < 1:
            raise ConfigError("rename register counts must be positive")
        if min(self.rse_entries, self.rsf_entries, self.rsa_entries, self.rsbr_entries) < 1:
            raise ConfigError("reservation stations need at least one entry")
        if self.int_units < 1 or self.fp_units < 1 or self.eag_units < 1:
            raise ConfigError("need at least one unit of each kind")
        if self.load_queue < 1 or self.store_queue < 1:
            raise ConfigError("load/store queues must be positive")
        if self.l1d_ports < 1:
            raise ConfigError("need at least one L1D port")
        if self.dispatch_to_exec < 1:
            raise ConfigError("dispatch_to_exec must be >= 1")

    def latency_of(self, op: OpClass) -> int:
        """Execution latency for a non-load instruction class."""
        if op in self.latency_overrides:
            return self.latency_overrides[op]
        if op == OpClass.SPECIAL:
            return self.special_latency
        return EXECUTION_LATENCY[op]

    def derived(self, **changes) -> "CoreParams":
        """Copy with the given fields replaced."""
        return replace(self, **changes)
