"""The fast core engine: slot-recycled hot path, bit-exact vs reference.

:class:`FastProcessorCore` re-implements the inner loop of
:class:`~repro.core.pipeline.ProcessorCore` for throughput while keeping
its outputs **byte-identical** — same committed cycles, same CPI stack,
same counters, same stepped-cycle set.  The reference engine stays the
readable specification; this module is an optimized transcription of it,
enforced by ``tests/test_engine_equivalence.py``.

The three stacked optimizations:

1. **Bulk stall skip-ahead.**  The driver loop already jumps over idle
   spans via ``_next_cycle`` and attributes the skipped cycles in one
   addition to the classification at the span start.  The fast engine
   makes those jumps cheap: the LSU's pending-work scan is cached with
   event-based invalidation (see ``LoadStoreUnit.pending_work_cycle``)
   and per-cycle LSU/fetch/event phases are gated by O(1) checks that
   are provably equivalent to running the phase and observing no work.
   The *attribution rule is unchanged*: a skipped span inherits the
   span-start classification, exactly as the reference accountant does,
   so conservation holds cycle-for-cycle.

2. **Slot-recycled µop representation.**  Per-record static decode data
   (rename pool, station class, producer source list, latency, flags)
   is precomputed once into a parallel array indexed by decode order,
   and dynamic µops are recycled through a free pool instead of being
   allocated per instruction.  A retired slot is reusable only once
   nothing live can still reference it: every reference to a µop ``u``
   (producer edges, LSQ ``data_producer`` edges) is held by a µop or
   store-queue entry decoded *before* ``u`` committed, i.e. with a
   sequence number below the barrier recorded at ``u``'s commit.  Slots
   recycle once the oldest uncommitted µop and the oldest store-queue
   entry are both past that barrier.  Cancellation epochs are monotone
   across reuse (bumped at recycle, never reset) so stale completion
   events and waiter registrations can never alias a new incarnation.

3. **Memoized stall classification.**  The head-of-window blocker
   analysis is cached on the head µop's identity, epoch, state, replay
   count and memory level, and recomputed only when one of those
   changes or when an LSQ breadcrumb (bank conflict / ordering hold)
   lands on the classified cycle.

Dispatch selection is additionally memoized: an empty selection stays
empty until either a dependency-affecting mutation happens (tracked by
a global counter bumped on decode, dispatch, completion events, cancels
and commits) or the station's recorded ``next_eligible`` cycle is
reached.  Both conditions are exactly the ones under which the
reference ``select`` could return something new, so skipped scans are
observationally identical.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.core.lsq import LoadResolution, LoadStoreUnit, _LoadEntry, _StoreEntry
from repro.core.pipeline import ProcessorCore
from repro.core.uop import FAR_FUTURE, Uop, UopState
from repro.frontend.fetch import FetchUnit
from repro.isa.opcodes import OpClass
from repro.observe import categories as cat

_WAITING = UopState.WAITING
_INFLIGHT = UopState.INFLIGHT
_DONE = UopState.DONE
_COMMITTED = UopState.COMMITTED

#: Station-class codes in the decode prepass.
_RSE, _RSF, _LOAD, _STORE, _RSBR = 0, 1, 2, 3, 4

#: Rename-pool codes (match ``_dest_kind`` below).
_KIND_NONE, _KIND_INT, _KIND_FP, _KIND_CC = 0, 1, 2, 3

#: Traces at most this long get every µop prebuilt in the constructor
#: (~60 MB at the limit); longer ones use the pooled recycling path.
_PREBUILD_LIMIT = 150_000

#: Completion-event kinds (ints; the reference engine uses strings).
#: Heap tuples are ordered by (cycle, counter) with a unique counter,
#: so the kind field is never compared and the encodings cannot mix.
_EV_DONE, _EV_RESOLVE = 0, 1

_FP_OPS = frozenset(
    {OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_FMA, OpClass.FP_DIV}
)
_BRANCH_OPS = frozenset(
    {OpClass.BRANCH_COND, OpClass.BRANCH_UNCOND, OpClass.CALL, OpClass.RETURN}
)


class _FastUop(Uop):
    """A µop with precomputed static fields and a recyclable identity.

    The extra slots shadow the parent's ``op``/``is_branch`` properties
    with plain attributes, so every hot read is a slot load.  Instances
    are created raw (``__new__``) and fully initialized by the decode
    fast path; the cancellation ``epoch`` survives recycling and only
    ever increases.
    """

    __slots__ = (
        "op",
        "is_branch",
        "lat",
        "serialize",
        "is_div",
        "dest",
        "ready_lb",
        "consumers",
    )


class FastLoadStoreUnit(LoadStoreUnit):
    """Engine-private LSU with a lazy seq-ordered candidate merge.

    The reference :meth:`LoadStoreUnit.step` builds a candidate list from
    both queues and sorts it by sequence number every cycle.  Both queues
    are already seq-sorted by construction (allocation happens in decode
    order), so the oldest-first order is a two-pointer merge; and because
    every filter predicate is a function of the entry's own fields only
    (processing an older candidate never changes a younger one's
    predicate), evaluating predicates lazily visits exactly the entries
    the reference processes before port exhaustion, with identical
    counter and breadcrumb updates.
    """

    def __init__(self, params, hierarchy) -> None:
        super().__init__(params, hierarchy)
        self._banked = hierarchy.l1d.geometry.banks > 1

    def step(self, cycle, _WAITING=_WAITING, _INFLIGHT=_INFLIGHT):
        resolutions: List[LoadResolution] = []
        activity = False
        ports_left = self.params.l1d_ports
        banks_used: dict = {}
        banked = self._banked
        loads = self._loads
        stores = self._stores
        num_loads = len(loads)
        num_stores = len(stores)
        li = si = 0
        load = store = None
        load_seq = store_seq = 0
        hierarchy = self.hierarchy
        try_issue = self._try_issue_load
        while ports_left > 0:
            if load is None:
                while li < num_loads:
                    cand = loads[li]
                    li += 1
                    if not cand.issued and cand.addr_known_at <= cycle:
                        state = cand.uop.state
                        if state is _WAITING or state is _INFLIGHT:
                            load = cand
                            load_seq = cand.uop.seq
                            break
            if store is None:
                while si < num_stores:
                    cand = stores[si]
                    si += 1
                    if (
                        cand.committed_at >= 0
                        and cand.write_done_at < 0
                        and cand.addr_known_at <= cycle
                    ):
                        store = cand
                        store_seq = cand.uop.seq
                        break
            if load is not None and (store is None or load_seq < store_seq):
                entry, load = load, None
                outcome = try_issue(entry, cycle, banks_used, banked)
                if outcome == "conflict":
                    self.bank_conflicts += 1
                    self.last_conflict_cycle = cycle
                    self.last_conflict_seq = entry.uop.seq
                    continue
                if outcome == "blocked":
                    continue
                ports_left -= 1
                activity = True
                resolutions.append(outcome)
            elif store is not None:
                entry, store = store, None
                ea = entry.uop.record.ea
                bank = hierarchy.bank_of(ea)
                if banked and banks_used.get(bank):
                    self.bank_conflicts += 1
                    continue
                banks_used[bank] = True
                result = hierarchy.store(cycle, ea)
                entry.write_done_at = result.ready_cycle
                ports_left -= 1
                activity = True
            else:
                break

        # Reap written-back stores in place (reference: build + remove).
        if num_stores:
            kept = []
            keep = kept.append
            pop = self._by_uop.pop
            removed = False
            for entry in stores:
                if 0 <= entry.write_done_at <= cycle:
                    pop(entry.uop.seq, None)
                    removed = True
                else:
                    keep(entry)
            if removed:
                stores[:] = kept
                activity = True

        if activity:
            self._pending_dirty = True
        return resolutions, activity


class FastFetchUnit(FetchUnit):
    """Engine-private fetch: groups are delivered as packed runs.

    Single-path trace-driven fetch delivers consecutive records, and
    within one delivered group only the *last* record can be a
    mispredicted or taken transfer (delivery stops there).  So a fetch
    group compresses to one ``(avail_cycle, end_index, last_misp)``
    tuple in ``_runs``; the per-record ``FetchedInstruction`` objects of
    the reference unit are never materialized.  Predictor and counter
    updates happen in the same order with the same arguments, so BHT,
    RAS and fetch statistics are bit-identical.
    """

    def __init__(self, trace, hierarchy, bht_params, params, bht=None) -> None:
        super().__init__(trace, hierarchy, bht_params, params, bht=bht)
        self._runs = deque()
        self._buffered = 0  # undecoded instructions across all runs

    def step(self, cycle: int) -> None:
        if self._blocked or cycle < self._stall_until:
            return
        records = self._records
        if self._position >= len(records):
            return
        params = self.params
        if self._buffered + params.fetch_width > params.buffer_capacity:
            return
        if self._pending_delivery:
            self._pending_delivery = False
            self._deliver_group(cycle)
            return
        first = records[self._position]
        access = self._hierarchy.fetch(cycle, first.pc)
        if access.level != "l1" or access.tlb_cycles:
            self._stall_until = access.ready_cycle
            self._stall_reason = "icache"
            self.icache_stall_cycles += access.ready_cycle - cycle
            self._pending_delivery = True
            return
        self._deliver_group(cycle)

    def _deliver_group(
        self,
        cycle: int,
        _COND=OpClass.BRANCH_COND,
        _CALL=OpClass.CALL,
        _RET=OpClass.RETURN,
    ) -> None:
        params = self.params
        records = self._records
        position = self._position
        group_mask = ~(params.fetch_group_bytes - 1)
        first = records[position]
        group_base = first.pc & group_mask
        avail = cycle + params.pipeline_depth
        start = position
        limit = position + params.fetch_width
        total = len(records)
        if limit > total:
            limit = total
        last_misp = False
        bht = self.bht
        ras = self.ras
        perfect = params.perfect_prediction
        while position < limit:
            record = records[position]
            if record.pc & group_mask != group_base:
                break
            op = record.op
            mispredicted = False
            if op is _COND:
                if perfect:
                    pass
                else:
                    predicted_taken = bht.predict(record.pc)
                    mispredicted = predicted_taken != record.taken
                    bht.update(record.pc, record.taken, predicted_taken)
            elif op is _CALL:
                ras.push(record.pc + 4)
            elif op is _RET:
                if not perfect:
                    mispredicted = not ras.predict_return(record.target)
                else:
                    ras.predict_return(record.target)

            position += 1

            if mispredicted:
                # Fetch follows the wrong path; deliver nothing further
                # until the core resolves this branch.
                self._blocked = True
                last_misp = True
                break
            if record.taken:
                # Correctly-predicted taken transfer: redirect with the
                # BHT-access bubble penalty.
                bubbles = bht.params.access_latency
                self._stall_until = cycle + 1 + bubbles
                self._stall_reason = "bubble"
                self.taken_bubble_cycles += bubbles
                break

        count = position - start
        self._position = position
        if count:
            self._runs.append((avail, position, last_misp))
            self._buffered += count
        self.fetch_groups += 1
        if self.tracer is not None and count:
            self.tracer.emit(cycle, "fetch", -1, first.pc, count)


class FastProcessorCore(ProcessorCore):
    """Bit-exact optimized engine (see module docstring)."""

    def __init__(
        self,
        trace,
        hierarchy,
        core_params,
        frontend_params,
        bht_params,
        bht=None,
    ) -> None:
        super().__init__(
            trace, hierarchy, core_params, frontend_params, bht_params, bht=bht
        )
        # Engine-private LSU and fetch unit (same state layout, leaner
        # hot paths).  Installed before any simulation state accumulates;
        # attach_tracer and BHT warming happen later, on the replacements.
        self.lsu = FastLoadStoreUnit(core_params, hierarchy)
        self.fetch = FastFetchUnit(
            trace, hierarchy, bht_params, frontend_params, bht=bht
        )
        self._exec_offset = core_params.dispatch_to_exec
        self._speculative = core_params.speculative_dispatch
        self._special_serialize = core_params.special_serialize
        self._commit_width = core_params.commit_width
        self._issue_width = core_params.issue_width
        self._window_cap = core_params.window_size
        self._int_rename_cap = core_params.int_rename
        self._fp_rename_cap = core_params.fp_rename
        self._lq_cap = core_params.load_queue
        self._sq_cap = core_params.store_queue
        self._forwarding = core_params.data_forwarding
        self._no_fwd_pen = core_params.no_forwarding_penalty
        self._l1d_hit = hierarchy.l1d.geometry.hit_latency
        fetch_params = self.fetch.params
        self._fetch_width = fetch_params.fetch_width
        self._fetch_cap = fetch_params.buffer_capacity
        self._fetch_len = len(self.fetch._records)
        self._rse_stations = self.rse.stations
        self._rsf_stations = self.rsf.stations
        #: Dependency epoch: bumped on every mutation that can change
        #: dispatch eligibility anywhere.
        self._mut = 0
        self._stations_tuple = tuple(self._all_stations)
        for station in self._all_stations:
            station._fast_memo = -1  # _mut value at the last empty select
            station._fast_dirty = True  # eligibility may have changed
        #: Global dispatch skip: True when every station is clean, with
        #: the min of their recorded next_eligible cycles.
        self._disp_clean = False
        self._disp_ne = None
        #: Free pool of recycled µop slots and the retire queue of
        #: (uop, barrier_seq) pairs awaiting their recycle condition.
        self._pool: List[_FastUop] = []
        self._retired = deque()
        #: Stall-classification memo (head identity -> category).
        self._cls_key = None
        self._cls_val = None
        #: Next record index to decode (decode consumes the trace in
        #: order, so this indexes the prepass array).
        self._decode_index = 0
        self._pre = self._build_prepass(self.fetch._records, core_params)
        #: For bounded traces every µop slot is prebuilt in the (untimed)
        #: constructor with its static fields and reset-safe defaults, so
        #: decode only fills the dynamic fields and commit skips the
        #: recycling bookkeeping.  Megatraces (sampled mode) fall back to
        #: the pooled slot-recycling path to bound memory.
        if len(self._pre) <= _PREBUILD_LIMIT:
            self._prebuilt = self._build_uops()
            self._static_prod, self._static_data = self._build_producer_links()
            # With producers static, decode needs only two prepass
            # fields; parallel int lists beat re-unpacking the 9-tuple.
            self._pre_kind = [entry[0] for entry in self._pre]
            self._pre_class = [entry[1] for entry in self._pre]
            self._recycle = False
            # Instance attribute shadows the method: both drivers call
            # self._decode, so they pick up the prebuilt fast path.
            self._decode = self._decode_prebuilt
        else:
            self._prebuilt = None
            self._recycle = True

    # ------------------------------------------------------------------
    # Decode prepass: the static SoA side of the µop representation.
    # ------------------------------------------------------------------

    @staticmethod
    def _build_prepass(records, params) -> list:
        """Per-record static decode tuple, indexed by decode order.

        Layout: (rename_kind, station_class, producer_srcs, data_src,
        latency, op, dest, serialize, is_div).
        """
        latency_map = {
            op: params.latency_of(op)
            for op in OpClass
            if op not in (OpClass.LOAD, OpClass.STORE)
        }
        load_op, store_op = OpClass.LOAD, OpClass.STORE
        special_op = OpClass.SPECIAL
        div_ops = (OpClass.INT_DIV, OpClass.FP_DIV)
        pre = []
        append = pre.append
        for record in records:
            op = record.op
            dest = record.dest
            if dest < 0:
                kind = _KIND_NONE
            elif dest < 32:
                kind = _KIND_INT
            elif dest < 64:
                kind = _KIND_FP
            elif dest < 66:
                kind = _KIND_CC
            else:
                raise SimulationError(f"unknown destination register id {dest}")
            srcs = record.srcs
            if op == load_op:
                append((kind, _LOAD, srcs, -1, 0, op, dest, False, False))
            elif op == store_op:
                if srcs:
                    append((kind, _STORE, srcs[:-1], srcs[-1], 0, op, dest, False, False))
                else:
                    append((kind, _STORE, srcs, -1, 0, op, dest, False, False))
            elif op in _BRANCH_OPS:
                append((kind, _RSBR, srcs, -1, latency_map[op], op, dest, False, False))
            elif op in _FP_OPS:
                append(
                    (kind, _RSF, srcs, -1, latency_map[op], op, dest, False, op in div_ops)
                )
            else:
                append(
                    (
                        kind,
                        _RSE,
                        srcs,
                        -1,
                        latency_map[op],
                        op,
                        dest,
                        op == special_op,
                        op in div_ops,
                    )
                )
        return pre

    def _build_uops(self) -> list:
        """Prebuild one µop per record: statics plus reset-safe defaults.

        Runs in the constructor (untimed).  Every field decode would set
        to a constant is preset here; decode then touches only the truly
        dynamic ones (producers, station, fetch outcome, cycle stamps).
        Sequence numbers equal record indices because decode consumes
        the trace strictly in order from zero.
        """
        records = self.fetch._records
        far = FAR_FUTURE
        new = _FastUop.__new__
        cls = _FastUop
        out = []
        append = out.append
        for index, (kind, sclass, _srcs, _dsrc, lat, op, dest, serialize, is_div) in enumerate(
            self._pre
        ):
            uop = new(cls)
            uop.seq = index
            uop.record = records[index]
            uop.epoch = 0
            uop.state = _WAITING
            uop.dest_kind = kind
            uop.op = op
            uop.dest = dest
            uop.lat = lat
            uop.serialize = serialize
            uop.is_div = is_div
            uop.is_load = sclass == _LOAD
            uop.is_store = sclass == _STORE
            uop.is_branch = sclass == _RSBR
            uop.waiters = []
            uop.consumers = []
            uop.unconfirmed = 0
            uop.holds_rs_entry = True
            uop.dispatch_cycle = -1
            uop.earliest_dispatch = 0
            uop.result_ready = far
            uop.done_cycle = far
            uop.replays = 0
            uop.speculative = False
            uop.confirmed = False
            uop.lsq_index = -1
            uop.commit_cycle = -1
            uop.mem_level = None
            uop.producers = ()
            uop.mispredicted = False
            append(uop)
        return out

    def _build_producer_links(self):
        """Static last-writer linkage, computed untimed in the constructor.

        The reference decode's ``renmap.get(src)`` always returns the
        most recent earlier writer of ``src``: commit deletes a rename
        entry only while it is still the latest, so a hit is the last
        writer and a miss means the last writer committed.  With stable
        sequence numbers (no slot recycling) that lookup collapses to a
        trace-static seq per source; decode just re-applies the dynamic
        COMMITTED filter.  Returns (producer_seqs, data_seq) lists
        indexed by decode order, with -1 / absent for "no live writer
        can exist".
        """
        last: dict = {}
        prod = []
        datap = []
        for index, entry in enumerate(self._pre):
            srcs, data_src, dest = entry[2], entry[3], entry[6]
            datap.append(last.get(data_src, -1) if data_src >= 0 else -1)
            seen: list = []
            for src in srcs:
                seq = last.get(src, -1)
                if seq >= 0 and seq not in seen:
                    seen.append(seq)
            prod.append(seen)
            if dest >= 0:
                last[dest] = index
        return prod, datap

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None):
        """Merged driver: ``run`` + ``step_cycle`` fused into one loop.

        Identical phase order and skip conditions as :meth:`step_cycle`,
        with loop-invariant lookups hoisted out of the cycle loop.  The
        windowed drivers (``run_measured``, SMP) still call
        :meth:`step_cycle` directly; both paths are exercised by the
        equivalence suite.
        """
        cycle = 0
        idle_streak = 0
        trace_length = self._trace_length
        window = self.window
        events = self._events
        lsu = self.lsu
        fetch = self.fetch
        stack = self._stack
        base_cat = cat.BASE
        fetch_len = self._fetch_len
        fetch_width = self._fetch_width
        fetch_cap = self._fetch_cap
        classify = self._classify_stall
        process_events = self._process_events
        commit = self._commit
        dispatch = self._dispatch
        decode = self._decode
        schedule_resolution = self._schedule_resolution
        done_state = _DONE
        accounted = self._accounted_until
        committed_total = self._committed
        while committed_total < trace_length:
            if max_cycles is not None and cycle > max_cycles:
                self._accounted_until = accounted
                raise SimulationError(f"exceeded max_cycles={max_cycles}")
            self.cycle = cycle
            account = cycle >= accounted
            if account and cycle > accounted:
                # Skipped idle span: the span-start classification holds
                # for every skipped cycle (reference rule).
                stack[classify(accounted)] += cycle - accounted

            if events and events[0][0] <= cycle:
                activity = process_events(cycle)
            else:
                activity = False

            newly = 0
            head = self._window_head
            if head < len(window):
                uop = window[head]
                if uop.state is done_state and uop.done_cycle <= cycle:
                    newly = commit(cycle)
                    if newly:
                        committed_total += newly
                        self._committed = committed_total
                        activity = True

            pending = (
                lsu._refresh_pending() if lsu._pending_dirty else lsu._pending_min
            )
            if pending <= cycle:
                resolutions, lsu_active = lsu.step(cycle)
                if lsu_active:
                    activity = True
                for resolution in resolutions:
                    schedule_resolution(resolution)
                    activity = True

            if not self._disp_clean:
                if dispatch(cycle):
                    activity = True
            else:
                ne = self._disp_ne
                if ne is not None and ne <= cycle and dispatch(cycle):
                    activity = True

            runs = fetch._runs
            if runs and runs[0][0] <= cycle:
                if decode(cycle):
                    activity = True

            if (
                not fetch._blocked
                and cycle >= fetch._stall_until
                and fetch._position < fetch_len
                and fetch._buffered + fetch_width <= fetch_cap
            ):
                buffered_before = fetch._buffered
                fetch.step(cycle)
                if fetch._buffered != buffered_before:
                    activity = True

            if account:
                if newly:
                    stack[base_cat] += 1
                else:
                    stack[classify(cycle)] += 1
                accounted = cycle + 1

            if activity:
                idle_streak = 0
                cycle += 1
            else:
                idle_streak += 1
                if idle_streak > 100_000:
                    self._accounted_until = accounted
                    raise SimulationError(
                        f"deadlock at cycle {cycle}: committed "
                        f"{self._committed}/{self._trace_length}, "
                        f"window {self._window_size()}"
                    )
                cycle = self._next_cycle(cycle)
        self._accounted_until = accounted
        self.finalize_stats(cycle)
        return self.stats

    def step_cycle(self, cycle: int) -> bool:
        """One cycle, phase-for-phase equivalent to the reference loop."""
        self.cycle = cycle
        stack = self._stack
        accounted = self._accounted_until
        account = cycle >= accounted
        if account and cycle > accounted:
            # Skipped idle span: the span-start classification holds for
            # every skipped cycle (same rule as the reference engine).
            stack[self._classify_stall(accounted)] += cycle - accounted

        events = self._events
        if events and events[0][0] <= cycle:
            activity = self._process_events(cycle)
        else:
            activity = False

        newly_committed = self._commit(cycle)
        if newly_committed:
            self._committed += newly_committed
            activity = True

        lsu = self.lsu
        pending = lsu._refresh_pending() if lsu._pending_dirty else lsu._pending_min
        if pending <= cycle:
            resolutions, lsu_active = lsu.step(cycle)
            if lsu_active:
                activity = True
            for resolution in resolutions:
                self._schedule_resolution(resolution)
                activity = True

        if self._dispatch(cycle):
            activity = True
        if self._decode(cycle):
            activity = True

        fetch = self.fetch
        if (
            not fetch._blocked
            and cycle >= fetch._stall_until
            and fetch._position < self._fetch_len
            and fetch._buffered + self._fetch_width <= self._fetch_cap
        ):
            buffered_before = fetch._buffered
            fetch.step(cycle)
            if fetch._buffered != buffered_before:
                activity = True

        if account:
            if newly_committed:
                stack[cat.BASE] += 1
            else:
                stack[self._classify_stall(cycle)] += 1
            self._accounted_until = cycle + 1
        return activity

    # ------------------------------------------------------------------
    # Stall classification (memoized).
    # ------------------------------------------------------------------

    def _classify_stall(self, cycle: int) -> str:
        window = self.window
        head = self._window_head
        if head < len(window):
            uop = window[head]
            lsu = self.lsu
            if lsu.last_conflict_cycle == cycle or lsu.last_order_stall_cycle == cycle:
                # An LSQ breadcrumb landed on this very cycle: take the
                # reference path, whose cycle-equality checks apply.
                return ProcessorCore._classify_stall(self, cycle)
            state = uop.state
            key = (uop, uop.epoch, state, uop.replays, uop.mem_level)
            if key == self._cls_key:
                return self._cls_val
            if uop.is_load:
                level = uop.mem_level
                if level is not None:
                    value = cat.LEVEL_CATEGORY.get(level, cat.DCACHE_L1)
                elif uop.replays:
                    value = cat.REPLAY
                else:
                    value = cat.DCACHE_L1
            elif uop.is_store:
                if state is _DONE:
                    value = cat.STORE_DATA
                elif uop.replays:
                    value = cat.REPLAY
                else:
                    value = cat.EXEC
            elif uop.mispredicted and uop.is_branch and state is not _DONE:
                value = cat.BRANCH_MISPREDICT
            elif uop.replays:
                value = cat.REPLAY
            else:
                value = cat.EXEC
            self._cls_key = key
            self._cls_val = value
            return value
        fetch = self.fetch
        if fetch._runs:
            return cat.FRONTEND_FILL
        if fetch._blocked:
            return cat.BRANCH_MISPREDICT
        if fetch._position >= self._fetch_len:
            return cat.DRAIN
        if cycle < fetch._stall_until:
            return cat.FETCH_CATEGORY[fetch._stall_reason]
        return cat.FRONTEND_FILL

    # ------------------------------------------------------------------
    # Source-readiness bounds (push-based dataflow invalidation).
    #
    # Every µop caches ``ready_lb`` — the value the reference
    # ``_sources_ready_at`` would compute for it right now — and each
    # producer keeps a ``consumers`` list so the cache is recomputed
    # exactly when a producer's timing changes: dispatch (result_ready
    # becomes known), load resolution (predicted -> actual), cancel
    # (known -> unknown), and the two no-forwarding corner cases where a
    # completion or commit changes the formula's value.  Between those
    # events the cached value equals a fresh computation by definition,
    # so the per-cycle station scan is two integer compares per entry.
    # ------------------------------------------------------------------

    def _ready_of(
        self,
        uop,
        _FAR=FAR_FUTURE,
        _COMMITTED=_COMMITTED,
        _DONE=_DONE,
        _INFLIGHT=_INFLIGHT,
    ) -> int:
        """Reference ``_sources_ready_at`` (speculative) on live state."""
        off = self._exec_offset
        best = 0
        for producer in uop.producers:
            state = producer.state
            if state is _COMMITTED:
                continue
            if state is _DONE:
                candidate = producer.result_ready - off
            elif state is _INFLIGHT:
                ready = producer.result_ready
                if ready >= _FAR:
                    return _FAR
                candidate = ready - off
            else:  # WAITING producer: timing unknown
                return _FAR
            if candidate > best:
                best = candidate
        return best

    def _ripple_ready(
        self,
        producer,
        _WAITING=_WAITING,
        _COMMITTED=_COMMITTED,
        _DONE=_DONE,
        _INFLIGHT=_INFLIGHT,
        _FAR=FAR_FUTURE,
    ) -> None:
        """Recompute the cached bound of waiting consumers of ``producer``."""
        off = self._exec_offset
        touched = False
        for consumer in producer.consumers:
            if consumer.state is not _WAITING:
                continue
            # _ready_of, inlined: this is the hottest recompute site.
            best = 0
            for src in consumer.producers:
                state = src.state
                if state is _COMMITTED:
                    continue
                if state is _DONE:
                    candidate = src.result_ready - off
                elif state is _INFLIGHT:
                    ready = src.result_ready
                    if ready >= _FAR:
                        best = _FAR
                        break
                    candidate = ready - off
                else:  # WAITING producer: timing unknown
                    best = _FAR
                    break
                if candidate > best:
                    best = candidate
            consumer.ready_lb = best
            consumer.station._fast_dirty = True
            touched = True
        if touched:
            self._disp_clean = False

    def _apply_load_resolution(self, resolution, cycle: int) -> None:
        uop = resolution.uop
        ProcessorCore._apply_load_resolution(self, resolution, cycle)
        if uop.state is _INFLIGHT and uop.consumers:
            # The prediction was replaced by the actual ready cycle.
            self._ripple_ready(uop)

    def _cancel(self, uop, earliest: int) -> None:
        ProcessorCore._cancel(self, uop, earliest)
        uop.ready_lb = self._ready_of(uop)
        uop.station._fast_dirty = True  # back to WAITING, new earliest
        self._disp_clean = False
        if uop.consumers:
            self._ripple_ready(uop)  # timing went back to unknown

    # ------------------------------------------------------------------
    # Phase 1: completion events.
    # ------------------------------------------------------------------

    def _process_events(self, cycle: int) -> bool:
        events = self._events
        if not events or events[0][0] > cycle:
            return False
        pop = heapq.heappop
        tracer = self.tracer
        activity = False
        while events and events[0][0] <= cycle:
            event_cycle, _, kind, epoch, uop, payload = pop(events)
            if uop.epoch != epoch or uop.state is not _INFLIGHT:
                continue  # stale (cancelled and possibly re-dispatched)
            if kind:  # _EV_RESOLVE
                self._apply_load_resolution(payload, event_cycle)
            else:
                uop.state = _DONE
                if uop.result_ready >= FAR_FUTURE and uop.consumers:
                    # INFLIGHT treated this producer as unknown; DONE
                    # values it at result_ready - offset.
                    self._ripple_ready(uop)
                if tracer is not None:
                    tracer.emit(event_cycle, "complete", uop.seq, uop.mem_level)
                if not uop.confirmed:
                    self._confirm(uop)
                if uop.is_branch and uop.mispredicted:
                    self.fetch.redirect(cycle)
            activity = True
        if activity:
            self._mut += 1
        return activity

    # ------------------------------------------------------------------
    # Phase 2: commit (and slot recycling).
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> int:
        window = self.window
        head = self._window_head
        if head >= len(window):
            return 0
        uop = window[head]
        if uop.state is not _DONE or uop.done_cycle > cycle:
            return 0
        lsu = self.lsu
        by_uop = lsu._by_uop
        rename = self.rename
        renmap = rename._producers
        stats = self.stats
        tracer = self.tracer
        retired = self._retired
        recycle = self._recycle
        barrier = self._seq
        commit_width = self._commit_width
        exec_offset = self._exec_offset
        committed = 0
        while committed < commit_width and head < len(window):
            uop = window[head]
            if uop.state is not _DONE or uop.done_cycle > cycle:
                break
            if uop.is_store:
                entry = by_uop.get(uop.seq)
                if entry is not None:
                    producer = entry.data_producer
                    if producer is not None and producer.state is not _COMMITTED:
                        if not (
                            producer.state is _DONE
                            and producer.result_ready <= cycle
                        ):
                            break
            uop.state = _COMMITTED
            uop.commit_cycle = cycle
            if uop.result_ready - exec_offset > cycle and uop.consumers:
                # COMMITTED producers are skipped by the readiness
                # formula; without forwarding the DONE valuation could
                # still lie in the future, so the bound just dropped.
                self._ripple_ready(uop)
            if tracer is not None:
                tracer.emit(cycle, "commit", uop.seq)
            kind = uop.dest_kind
            if kind == _KIND_INT:
                rename.int_in_use -= 1
            elif kind == _KIND_FP:
                rename.fp_in_use -= 1
            if recycle:
                # Prebuilt mode never writes the rename map (static
                # producer links), so there is nothing to retire.
                dest = uop.dest
                if dest >= 0 and renmap.get(dest) is uop:
                    del renmap[dest]
            if uop.holds_rs_entry:
                uop.station.entries.remove(uop)
                uop.holds_rs_entry = False
            if uop.is_load:
                lsu.release(uop)
                stats.loads += 1
            elif uop.is_store:
                lsu.store_committed(uop, cycle)
                stats.stores += 1
            elif uop.is_branch:
                stats.branches += 1
            if recycle:
                retired.append((uop, barrier))
            head += 1
            committed += 1
        if committed:
            self._mut += 1
            if head > 256:
                del window[:head]
                head = 0
            self._window_head = head
            # Recycle retired slots whose barrier has passed: everything
            # decoded before their commit has itself committed, and the
            # store queue holds no entry old enough to reference them.
            if recycle and retired:
                stores = lsu._stores
                live_min = window[head].seq if head < len(window) else self._seq
                if stores:
                    oldest_store = stores[0].uop.seq
                    if oldest_store < live_min:
                        live_min = oldest_store
                pool = self._pool
                while retired and retired[0][1] <= live_min:
                    slot, _ = retired.popleft()
                    slot.epoch += 1  # monotone across reuse: stale
                    pool.append(slot)  # events/waiters can never match
        else:
            self._window_head = head
        return committed

    # ------------------------------------------------------------------
    # Phase 4: dispatch (memoized selection).
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        cycle: int,
        _WAITING=_WAITING,
        _COMMITTED=_COMMITTED,
        _DONE=_DONE,
        _INFLIGHT=_INFLIGHT,
        _FAR=FAR_FUTURE,
    ) -> bool:
        if not self._speculative:
            return self._dispatch_generic(cycle)
        if self._disp_clean:
            ne = self._disp_ne
            if ne is None or cycle < ne:
                # Every station is clean and none has reached its noted
                # wake cycle: the whole loop would be no-ops.
                return False
        special_serialize = self._special_serialize
        window = self.window
        activity = False
        all_clean = True
        global_ne = None
        for station in self._stations_tuple:
            if not station._fast_dirty:
                ne = station.next_eligible
                if ne is None or cycle < ne:
                    # Nothing changed since the last empty selection and
                    # no noted wake cycle has been reached: a re-scan
                    # would return empty with the same next_eligible.
                    if ne is not None and (global_ne is None or ne < global_ne):
                        global_ne = ne
                    continue
            entries = station.entries
            unit_busy = station.unit_busy
            if not entries:
                # select() over an empty station only notes busy units.
                ne = None
                for busy in unit_busy:
                    if busy > cycle and (ne is None or busy < ne):
                        ne = busy
                station.next_eligible = ne
                station._fast_dirty = False
                if ne is not None and (global_ne is None or ne < global_ne):
                    global_ne = ne
                continue
            if station.dispatch_width > 2:
                selected = station.select(cycle, self._exec_offset, True)
                all_clean = False  # wide stations are never memoized
            else:
                # Single scan replacing select()'s per-slot rescans: the
                # per-slot picks are exactly the k oldest eligible
                # entries, where k counts the non-busy unit slots, and
                # the wake notes of the rescans are identical to one
                # scan's (a selected entry never contributes a note).
                free_slots = 0
                ne = None
                for busy in unit_busy:
                    if busy > cycle:
                        if ne is None or busy < ne:
                            ne = busy
                    else:
                        free_slots += 1
                best1 = best2 = None
                if free_slots:
                    for uop in entries:
                        if uop.state is not _WAITING:
                            continue
                        earliest = uop.earliest_dispatch
                        if earliest > cycle:
                            if ne is None or earliest < ne:
                                ne = earliest
                            continue
                        ready_at = uop.ready_lb
                        if ready_at > cycle:
                            if ready_at < _FAR and (ne is None or ready_at < ne):
                                ne = ready_at
                            continue
                        if best1 is None or uop.seq < best1.seq:
                            best2 = best1
                            best1 = uop
                        elif best2 is None or uop.seq < best2.seq:
                            best2 = uop
                station.next_eligible = ne
                if best1 is None:
                    station._fast_dirty = False
                    if ne is not None and (global_ne is None or ne < global_ne):
                        global_ne = ne
                    continue
                selected = (
                    (best1, best2)
                    if free_slots > 1 and best2 is not None
                    else (best1,)
                )
            # Non-empty selection: the station stays dirty (a dispatch
            # mutates it; a serialize-blocked pick must retry next cycle).
            station._fast_dirty = True
            all_clean = False
            for slot, uop in enumerate(selected):
                if uop.serialize and special_serialize:
                    head = self._window_head
                    if not (head < len(window) and window[head] is uop):
                        continue
                self._do_dispatch(uop, cycle, station, slot)
                activity = True
        if all_clean:
            self._disp_clean = True
            self._disp_ne = global_ne
        else:
            self._disp_clean = False
        return activity

    def _next_cycle(self, cycle: int) -> int:
        """Idle-cycle jump target; station notes read directly.

        The reference engine caches the min station ``next_eligible`` at
        the tail of its dispatch walk, which visits every station each
        cycle.  The fast dispatch skips clean stations entirely, so that
        cache cannot be maintained with identical semantics here — but
        the skipped stations' notes are untouched (that is what made
        them skippable), so reading the attributes directly gives the
        same min the reference computes.
        """
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        wakes = self._wakes
        while wakes and wakes[0] <= cycle:
            heapq.heappop(wakes)
        if wakes:
            candidates.append(wakes[0])
        fetch_wake = self.fetch.next_wake_cycle()
        if fetch_wake is not None and fetch_wake > cycle:
            candidates.append(fetch_wake)
        # Same buffered-group delivery candidate as the reference walk;
        # the head run's avail cycle is the buffer head's avail cycle.
        runs = self.fetch._runs
        if runs:
            head_avail = runs[0][0]
            if head_avail > cycle:
                candidates.append(head_avail)
        lsu_wake = self.lsu.pending_work_cycle(cycle)
        if lsu_wake is not None:
            candidates.append(lsu_wake)
        for station in self._stations_tuple:
            ne = station.next_eligible
            if ne is not None and ne > cycle:
                candidates.append(ne)
        if not candidates:
            return cycle + 1
        return max(cycle + 1, min(candidates))

    def _dispatch_generic(self, cycle: int) -> bool:
        """Reference-shaped dispatch (non-speculative configs)."""
        speculative = self._speculative
        exec_offset = self._exec_offset
        special_serialize = self._special_serialize
        window = self.window
        activity = False
        for station in self._all_stations:
            if station._fast_memo == self._mut:
                next_eligible = station.next_eligible
                if next_eligible is None or cycle < next_eligible:
                    continue
            selected = station.select(cycle, exec_offset, speculative)
            if not selected:
                station._fast_memo = self._mut
                continue
            station._fast_memo = -1
            for slot, uop in enumerate(selected):
                if uop.serialize and special_serialize:
                    head = self._window_head
                    if not (head < len(window) and window[head] is uop):
                        continue
                self._do_dispatch(uop, cycle, station, slot)
                activity = True
        return activity

    def _do_dispatch(
        self,
        uop,
        cycle: int,
        station,
        slot: int,
        _INFLIGHT=_INFLIGHT,
        _heappush=heapq.heappush,
    ) -> None:
        self._mut += 1
        uop.state = _INFLIGHT
        uop.dispatch_cycle = cycle
        station.dispatches += 1
        self.stats.dispatches += 1
        if self.tracer is not None:
            self.tracer.emit(cycle, "dispatch", uop.seq, station.name)
        exec_start = cycle + self._exec_offset

        unconfirmed = 0
        epoch = uop.epoch
        for producer in uop.producers:
            if producer.state is _INFLIGHT and not producer.confirmed:
                producer.waiters.append((uop, epoch))
                unconfirmed += 1
        uop.unconfirmed = unconfirmed
        uop.speculative = unconfirmed > 0

        if uop.is_load:
            addr_ready = exec_start + 1  # EAG latency
            predicted = addr_ready + self._l1d_hit
            uop.result_ready = predicted  # speculative prediction (§3.1)
            uop.confirmed = False
            if uop.consumers:
                self._ripple_ready(uop)
            self.lsu.address_generated(uop, addr_ready, predicted)
            if unconfirmed == 0 and uop.holds_rs_entry:
                station.entries.remove(uop)
                uop.holds_rs_entry = False
            _heappush(self._wakes, addr_ready)
            return
        if uop.is_store:
            addr_ready = exec_start + 1
            self.lsu.address_generated(uop, addr_ready, 0)
            uop.done_cycle = addr_ready
            confirmed = unconfirmed == 0
            uop.confirmed = confirmed
            if confirmed and uop.holds_rs_entry:
                station.entries.remove(uop)
                uop.holds_rs_entry = False
            counter = self._event_counter + 1
            self._event_counter = counter
            _heappush(
                self._events, (addr_ready, counter, _EV_DONE, epoch, uop, None)
            )
            return

        done = exec_start + uop.lat
        result_ready = done if self._forwarding else done + self._no_fwd_pen
        uop.result_ready = result_ready
        uop.done_cycle = done
        if uop.consumers:
            self._ripple_ready(uop)
        confirmed = unconfirmed == 0
        uop.confirmed = confirmed
        if confirmed and uop.holds_rs_entry:
            station.entries.remove(uop)
            uop.holds_rs_entry = False
        if uop.is_div:
            station.unit_busy[slot % station.dispatch_width] = done
        counter = self._event_counter + 1
        self._event_counter = counter
        _heappush(self._events, (done, counter, _EV_DONE, epoch, uop, None))

    def _schedule_done(self, uop, cycle: int) -> None:
        counter = self._event_counter + 1
        self._event_counter = counter
        heapq.heappush(
            self._events, (cycle, counter, _EV_DONE, uop.epoch, uop, None)
        )

    def _schedule_resolution(self, resolution) -> None:
        """Reference semantics with the int event kind and hoisted L1 hit."""
        uop = resolution.uop
        if resolution.level == "forward":
            apply_at = resolution.ready_cycle
        else:
            apply_at = resolution.issue_cycle + self._l1d_hit
        counter = self._event_counter + 1
        self._event_counter = counter
        heapq.heappush(
            self._events,
            (apply_at, counter, _EV_RESOLVE, uop.epoch, uop, resolution),
        )

    # ------------------------------------------------------------------
    # Phase 5: decode (prepass-driven, pooled µops).
    # ------------------------------------------------------------------

    def _decode(self, cycle: int) -> bool:
        fetch = self.fetch
        runs = fetch._runs
        if not runs:
            return False
        run = runs[0]
        if run[0] > cycle:
            return False
        records = fetch._records
        window = self.window
        head = self._window_head
        window_cap = self._window_cap
        rename = self.rename
        renmap = rename._producers
        lsu = self.lsu
        pre = self._pre
        stalls = self._decode_stalls
        pool = self._pool
        tracer = self.tracer
        issue_width = self._issue_width
        rsa = self.rsa
        rsbr = self.rsbr
        index = self._decode_index
        seq = self._seq
        off = self._exec_offset
        far = FAR_FUTURE
        decoded = 0
        while decoded < issue_width:
            if len(window) - head >= window_cap:
                stalls[cat.DECODE_WINDOW] += 1
                break
            kind, sclass, srcs, data_src, lat, op, dest, serialize, is_div = pre[index]
            if kind == _KIND_INT:
                if rename.int_in_use >= self._int_rename_cap:
                    stalls[cat.DECODE_RENAME_INT] += 1
                    break
            elif kind == _KIND_FP:
                if rename.fp_in_use >= self._fp_rename_cap:
                    stalls[cat.DECODE_RENAME_FP] += 1
                    break
            if sclass == _RSE:
                station = None
                best_occupancy = 1 << 30
                for candidate in self._rse_stations:
                    occupancy = len(candidate.entries)
                    if occupancy < candidate.capacity and occupancy < best_occupancy:
                        station = candidate
                        best_occupancy = occupancy
                if station is None:
                    stalls[cat.DECODE_RS] += 1
                    break
            elif sclass == _RSF:
                station = None
                best_occupancy = 1 << 30
                for candidate in self._rsf_stations:
                    occupancy = len(candidate.entries)
                    if occupancy < candidate.capacity and occupancy < best_occupancy:
                        station = candidate
                        best_occupancy = occupancy
                if station is None:
                    stalls[cat.DECODE_RS] += 1
                    break
            elif sclass == _RSBR:
                station = rsbr
                if len(station.entries) >= station.capacity:
                    stalls[cat.DECODE_RS] += 1
                    break
            else:
                station = rsa
                if len(station.entries) >= station.capacity:
                    stalls[cat.DECODE_RS] += 1
                    break
                if sclass == _LOAD:
                    if len(lsu._loads) >= self._lq_cap:
                        stalls[cat.DECODE_LQ] += 1
                        break
                elif len(lsu._stores) >= self._sq_cap:
                    stalls[cat.DECODE_SQ] += 1
                    break

            record = records[index]
            if pool:
                uop = pool.pop()  # epoch already bumped at recycle time
            else:
                uop = _FastUop.__new__(_FastUop)
                uop.epoch = 0
            uop.seq = seq
            uop.record = record
            uop.state = _WAITING
            uop.dest_kind = kind

            # Producer edges.  For stores the final source is the data
            # operand, which gates the queue write, not address gen.
            data_producer = None
            if data_src >= 0:
                producer = renmap.get(data_src)
                if producer is not None and producer.state is not _COMMITTED:
                    data_producer = producer
            producers = []
            for src in srcs:
                producer = renmap.get(src)
                if (
                    producer is not None
                    and producer.state is not _COMMITTED
                    and producer not in producers
                ):
                    producers.append(producer)
            uop.producers = tuple(producers)
            uop.consumers = []
            ready_lb = 0
            for producer in producers:
                producer.consumers.append(uop)
                state = producer.state
                if state is _DONE:
                    candidate = producer.result_ready - off
                elif state is _INFLIGHT:
                    ready = producer.result_ready
                    if ready >= far:
                        ready_lb = far
                        continue
                    candidate = ready - off
                else:  # WAITING producer
                    ready_lb = far
                    continue
                if candidate > ready_lb:
                    ready_lb = candidate
            uop.ready_lb = ready_lb
            uop.waiters = []
            uop.unconfirmed = 0
            uop.station = station
            uop.holds_rs_entry = True
            station.entries.append(uop)
            station._fast_dirty = True
            uop.dispatch_cycle = -1
            uop.earliest_dispatch = 0
            uop.result_ready = FAR_FUTURE
            uop.done_cycle = FAR_FUTURE
            uop.replays = 0
            uop.speculative = False
            uop.confirmed = False
            uop.lsq_index = -1
            uop.mispredicted = run[2] and index + 1 == run[1]
            uop.decode_cycle = cycle
            uop.commit_cycle = -1
            uop.mem_level = None
            uop.op = op
            uop.dest = dest
            uop.lat = lat
            uop.serialize = serialize
            uop.is_div = is_div
            if sclass == _LOAD:
                uop.is_load = True
                uop.is_store = False
                uop.is_branch = False
                entry = _LoadEntry(uop)
                lsu._loads.append(entry)
                lsu._by_uop[seq] = entry
            elif sclass == _STORE:
                uop.is_load = False
                uop.is_store = True
                uop.is_branch = False
                entry = _StoreEntry(uop, data_producer)
                lsu._stores.append(entry)
                lsu._by_uop[seq] = entry
            else:
                uop.is_load = False
                uop.is_store = False
                uop.is_branch = sclass == _RSBR

            if dest >= 0:
                if kind == _KIND_INT:
                    rename.int_in_use += 1
                elif kind == _KIND_FP:
                    rename.fp_in_use += 1
                renmap[dest] = uop

            window.append(uop)
            if tracer is not None:
                tracer.emit(cycle, "decode", seq, record.pc, op.name)
            seq += 1
            index += 1
            decoded += 1
            if index == run[1]:
                runs.popleft()
                if not runs:
                    break
                run = runs[0]
                if run[0] > cycle:
                    break
        if decoded:
            fetch._buffered -= decoded
            self._seq = seq
            self._decode_index = index
            self._mut += 1
            self._disp_clean = False
            return True
        return False

    def _decode_prebuilt(self, cycle: int) -> bool:
        """Decode fast path over prebuilt µops (bounded traces).

        Identical checks, stall ticks and side effects as
        :meth:`_decode`; the µop comes from ``_prebuilt`` with every
        static field and reset-safe default already in place.
        """
        fetch = self.fetch
        runs = fetch._runs
        if not runs:
            return False
        run = runs[0]
        if run[0] > cycle:
            return False
        window = self.window
        head = self._window_head
        window_cap = self._window_cap
        if len(window) - head >= window_cap:
            # Full window: the loop below would stall-tick and break on
            # its first iteration; skip the heavy prologue entirely.
            self._decode_stalls[cat.DECODE_WINDOW] += 1
            return False
        rename = self.rename
        lsu = self.lsu
        kinds = self._pre_kind
        classes = self._pre_class
        prebuilt = self._prebuilt
        sprod = self._static_prod
        sdata = self._static_data
        stalls = self._decode_stalls
        tracer = self.tracer
        issue_width = self._issue_width
        rsa = self.rsa
        rsbr = self.rsbr
        index = self._decode_index
        off = self._exec_offset
        far = FAR_FUTURE
        run_end = run[1]
        run_misp = run[2]
        decoded = 0
        while decoded < issue_width:
            if len(window) - head >= window_cap:
                stalls[cat.DECODE_WINDOW] += 1
                break
            kind = kinds[index]
            sclass = classes[index]
            if kind == _KIND_INT:
                if rename.int_in_use >= self._int_rename_cap:
                    stalls[cat.DECODE_RENAME_INT] += 1
                    break
            elif kind == _KIND_FP:
                if rename.fp_in_use >= self._fp_rename_cap:
                    stalls[cat.DECODE_RENAME_FP] += 1
                    break
            if sclass == _RSE:
                station = None
                best_occupancy = 1 << 30
                for candidate in self._rse_stations:
                    occupancy = len(candidate.entries)
                    if occupancy < candidate.capacity and occupancy < best_occupancy:
                        station = candidate
                        best_occupancy = occupancy
                if station is None:
                    stalls[cat.DECODE_RS] += 1
                    break
            elif sclass == _RSF:
                station = None
                best_occupancy = 1 << 30
                for candidate in self._rsf_stations:
                    occupancy = len(candidate.entries)
                    if occupancy < candidate.capacity and occupancy < best_occupancy:
                        station = candidate
                        best_occupancy = occupancy
                if station is None:
                    stalls[cat.DECODE_RS] += 1
                    break
            elif sclass == _RSBR:
                station = rsbr
                if len(station.entries) >= station.capacity:
                    stalls[cat.DECODE_RS] += 1
                    break
            else:
                station = rsa
                if len(station.entries) >= station.capacity:
                    stalls[cat.DECODE_RS] += 1
                    break
                if sclass == _LOAD:
                    if len(lsu._loads) >= self._lq_cap:
                        stalls[cat.DECODE_LQ] += 1
                        break
                elif len(lsu._stores) >= self._sq_cap:
                    stalls[cat.DECODE_SQ] += 1
                    break

            uop = prebuilt[index]

            # Producer edges from the static last-writer links.  For
            # stores the final source is the data operand, which gates
            # the queue write, not address gen.
            data_seq = sdata[index]
            data_producer = None
            if data_seq >= 0:
                producer = prebuilt[data_seq]
                if producer.state is not _COMMITTED:
                    data_producer = producer
            ready_lb = 0
            seqs = sprod[index]
            if seqs:
                producers = []
                for seq in seqs:
                    producer = prebuilt[seq]
                    state = producer.state
                    if state is _COMMITTED:
                        continue
                    producers.append(producer)
                    producer.consumers.append(uop)
                    if state is _DONE:
                        candidate = producer.result_ready - off
                    elif state is _INFLIGHT:
                        ready = producer.result_ready
                        if ready >= far:
                            ready_lb = far
                            continue
                        candidate = ready - off
                    else:  # WAITING producer: timing unknown
                        ready_lb = far
                        continue
                    if candidate > ready_lb:
                        ready_lb = candidate
                uop.producers = tuple(producers)
            uop.ready_lb = ready_lb
            uop.station = station
            station.entries.append(uop)
            station._fast_dirty = True
            if run_misp and index + 1 == run_end:
                uop.mispredicted = True
            uop.decode_cycle = cycle
            if sclass == _LOAD:
                entry = _LoadEntry(uop)
                lsu._loads.append(entry)
                lsu._by_uop[index] = entry
            elif sclass == _STORE:
                entry = _StoreEntry(uop, data_producer)
                lsu._stores.append(entry)
                lsu._by_uop[index] = entry

            # Rename-map writes are skipped: with static producer links
            # nothing reads ``rename._producers`` in prebuilt mode, so
            # only the in-use counters (which gate decode) are kept.
            if kind == _KIND_INT:
                rename.int_in_use += 1
            elif kind == _KIND_FP:
                rename.fp_in_use += 1

            window.append(uop)
            if tracer is not None:
                tracer.emit(cycle, "decode", index, uop.record.pc, uop.op.name)
            index += 1
            decoded += 1
            if index == run_end:
                runs.popleft()
                if not runs:
                    break
                run = runs[0]
                if run[0] > cycle:
                    break
                run_end = run[1]
                run_misp = run[2]
        if decoded:
            fetch._buffered -= decoded
            self._seq = index
            self._decode_index = index
            self._mut += 1
            self._disp_clean = False
            return True
        return False
