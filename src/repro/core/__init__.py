"""Out-of-order execution core (the E-unit of Figure 4).

Implements the SPARC64 V's execution machinery at the level the paper's
performance model works: a 64-entry instruction window (commit stack),
renaming registers (32 integer + 32 floating-point results in flight),
four kinds of reservation stations (RSE/RSF/RSA/RSBR) with the 1RS/2RS
organisational choice of §4.4.1, two integer units, two FP multiply-add
units, two address-generation units, load/store queues (16/10), and the
speculative-dispatch + data-forwarding scheme of §3.1 with cancel-and-
replay on L1 misses.
"""

from repro.core.params import CoreParams, RsOrganization
from repro.core.uop import Uop, UopState
from repro.core.rename import RenameTracker
from repro.core.reservation import ReservationStation, StationGroup
from repro.core.lsq import LoadStoreUnit
from repro.core.pipeline import ProcessorCore

__all__ = [
    "CoreParams",
    "RsOrganization",
    "Uop",
    "UopState",
    "RenameTracker",
    "ReservationStation",
    "StationGroup",
    "LoadStoreUnit",
    "ProcessorCore",
]
