"""Register renaming state.

Tracks, per architected register, the youngest in-flight producer, and
enforces the renaming-register capacity of Table 1: up to 32 integer and
32 floating-point results may be held in renaming registers.  Condition
codes are renamed too but their pool is not a bottleneck and is not
capacity-limited in the model.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.isa.registers import FCC, ICC, is_fp_reg, is_int_reg
from repro.core.uop import Uop, UopState


class RenameTracker:
    """Architected-register to in-flight-producer map with capacity."""

    def __init__(self, int_capacity: int, fp_capacity: int) -> None:
        self.int_capacity = int_capacity
        self.fp_capacity = fp_capacity
        self._producers: Dict[int, Uop] = {}
        self.int_in_use = 0
        self.fp_in_use = 0
        self.int_full_stalls = 0
        self.fp_full_stalls = 0

    @staticmethod
    def dest_kind(reg_id: int) -> Optional[str]:
        """Rename pool for a destination register id."""
        if reg_id < 0:
            return None
        if is_int_reg(reg_id):
            return "int"
        if is_fp_reg(reg_id):
            return "fp"
        if reg_id in (ICC, FCC):
            return "cc"
        raise SimulationError(f"unknown destination register id {reg_id}")

    def can_allocate(self, kind: Optional[str]) -> bool:
        """True if a rename register of ``kind`` is available."""
        if kind == "int":
            if self.int_in_use >= self.int_capacity:
                self.int_full_stalls += 1
                return False
        elif kind == "fp":
            if self.fp_in_use >= self.fp_capacity:
                self.fp_full_stalls += 1
                return False
        return True

    def producer_of(self, reg_id: int) -> Optional[Uop]:
        """Youngest in-flight producer of ``reg_id``, if any."""
        producer = self._producers.get(reg_id)
        if producer is None or producer.state == UopState.COMMITTED:
            return None
        return producer

    def allocate(self, uop: Uop) -> None:
        """Record ``uop`` as the producer of its destination."""
        dest = uop.record.dest
        if dest < 0:
            return
        kind = self.dest_kind(dest)
        uop.dest_kind = kind
        if kind == "int":
            self.int_in_use += 1
        elif kind == "fp":
            self.fp_in_use += 1
        self._producers[dest] = uop

    def release(self, uop: Uop) -> None:
        """Free the rename register at commit."""
        if uop.dest_kind == "int":
            self.int_in_use -= 1
        elif uop.dest_kind == "fp":
            self.fp_in_use -= 1
        dest = uop.record.dest
        if dest >= 0 and self._producers.get(dest) is uop:
            del self._producers[dest]
