"""In-flight instruction state.

A :class:`Uop` is one dynamic instruction from decode to commit.  It
carries its producers (register-dependence edges to older in-flight
uops), its timing milestones, and the speculative-dispatch bookkeeping:
waiters registered on unresolved producers, and a cancellation epoch that
invalidates stale completion events after a replay (§3.1's "all
instructions that have read-after-write dependency must be cancelled at
every stage of the execution pipelines").
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional, Tuple

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord

#: Sentinel "unknown/far future" cycle.
FAR_FUTURE = 1 << 60


class UopState(IntEnum):
    """Lifecycle of an in-flight instruction."""

    WAITING = 0  # in a reservation station, not yet dispatched
    INFLIGHT = 1  # dispatched; moving through an execution pipeline
    DONE = 2  # result produced (or branch resolved / store address ready)
    COMMITTED = 3


class Uop:
    """One dynamic instruction in flight."""

    __slots__ = (
        "seq",
        "record",
        "state",
        "dest_kind",
        "producers",
        "waiters",
        "unconfirmed",
        "station",
        "holds_rs_entry",
        "dispatch_cycle",
        "earliest_dispatch",
        "result_ready",
        "done_cycle",
        "epoch",
        "replays",
        "speculative",
        "confirmed",
        "lsq_index",
        "mispredicted",
        "decode_cycle",
        "is_load",
        "is_store",
        "commit_cycle",
        "mem_level",
    )

    def __init__(self, seq: int, record: TraceRecord, decode_cycle: int) -> None:
        self.seq = seq
        self.record = record
        self.state = UopState.WAITING
        #: "int" / "fp" / "cc" / None — which rename pool the dest uses.
        self.dest_kind: Optional[str] = None
        #: Producer uops for each source still in flight at decode.
        self.producers: Tuple["Uop", ...] = ()
        #: Younger uops that dispatched against this uop's predicted result.
        self.waiters: List["Uop"] = []
        #: Count of this uop's producers that are still unconfirmed.
        self.unconfirmed = 0
        #: Reservation station this uop was allocated into.
        self.station = None
        self.holds_rs_entry = False
        self.dispatch_cycle = -1
        #: Dispatch not useful before this cycle (set on replay).
        self.earliest_dispatch = 0
        #: Cycle the result is available to dependents (FAR_FUTURE until known).
        self.result_ready = FAR_FUTURE
        #: Cycle execution finishes and the uop can commit.
        self.done_cycle = FAR_FUTURE
        #: Bumped on every cancellation; stale events carry old epochs.
        self.epoch = 0
        self.replays = 0
        #: True when dispatched against an unconfirmed producer.
        self.speculative = False
        #: True once this uop's completion timing can no longer change.
        self.confirmed = False
        self.lsq_index = -1
        self.mispredicted = False
        self.decode_cycle = decode_cycle
        op = record.op
        self.is_load = op == OpClass.LOAD
        self.is_store = op == OpClass.STORE
        self.commit_cycle = -1
        #: Memory level that serviced this load ("l1"/"l2"/"remote"/"mem"/
        #: "forward"), once its resolution is known; None before (and
        #: again after a cancellation).  Read by the CPI-stack accountant.
        self.mem_level: Optional[str] = None

    @property
    def op(self) -> OpClass:
        return self.record.op

    @property
    def is_branch(self) -> bool:
        return self.record.is_branch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<uop #{self.seq} {self.record.op.name} state={self.state.name} "
            f"ready={'?' if self.result_ready >= FAR_FUTURE else self.result_ready}>"
        )
