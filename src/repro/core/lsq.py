"""Load/store queues and the operand-access port arbitration.

Models §3.2 "non-blocking dual operand access":

- every memory instruction allocates a load-queue (16) or store-queue
  (10) entry at decode, in order;
- addresses arrive from the EAG pipelines; up to two requests per cycle
  pass from the queues to the L1 operand cache;
- the L1 is organised as eight 4-byte banks: two same-cycle requests to
  the same bank conflict, and the lower-priority (younger) one aborts and
  retries in a later cycle;
- a request that misses stays in its queue entry until the line arrives
  (the entry is the miss's bookkeeping);
- stores write the cache after commit, draining the store queue;
- loads may forward from an older same-address store once its data is in
  the queue; loads conservatively wait for older stores with unresolved
  addresses (no memory-dependence speculation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.core.params import CoreParams
from repro.core.uop import FAR_FUTURE, Uop
from repro.memory.hierarchy import MemoryHierarchy


class _LoadEntry:
    __slots__ = ("uop", "addr_known_at", "issued", "predicted_ready")

    def __init__(self, uop: Uop) -> None:
        self.uop = uop
        self.addr_known_at = FAR_FUTURE
        self.issued = False
        self.predicted_ready = FAR_FUTURE


class _StoreEntry:
    __slots__ = ("uop", "addr_known_at", "data_producer", "committed_at", "write_done_at")

    def __init__(self, uop: Uop, data_producer: Optional[Uop]) -> None:
        self.uop = uop
        self.addr_known_at = FAR_FUTURE
        self.data_producer = data_producer
        self.committed_at = -1
        self.write_done_at = -1

    def data_ready_cycle(self) -> int:
        if self.data_producer is None:
            return 0
        return self.data_producer.result_ready


@dataclass
class LoadResolution:
    """Outcome of one load reaching the L1 (reported to the engine)."""

    uop: Uop
    issue_cycle: int
    ready_cycle: int
    #: True when the data came at the speculatively predicted time.
    prediction_held: bool
    level: str  # "l1" / "l2" / "remote" / "mem" / "forward"


class LoadStoreUnit:
    """The S-unit face of the core: LQ, SQ, and L1D port arbitration."""

    def __init__(self, params: CoreParams, hierarchy: MemoryHierarchy) -> None:
        self.params = params
        self.hierarchy = hierarchy
        self._loads: List[_LoadEntry] = []
        self._stores: List[_StoreEntry] = []
        self._by_uop: Dict[int, object] = {}
        # Statistics.
        self.bank_conflicts = 0
        self.forwards = 0
        self.order_stalls = 0
        self.lq_full_stalls = 0
        self.sq_full_stalls = 0
        # Last-event breadcrumbs for the CPI-stack accountant: cycle and
        # uop seq of the most recent bank-conflict abort / ordering hold.
        self.last_conflict_cycle = -1
        self.last_conflict_seq = -1
        self.last_order_stall_cycle = -1
        self.last_order_stall_seq = -1
        # Cached earliest-pending-work cycle (see pending_work_cycle).
        # _pending_min is the raw minimum over entry milestones — a
        # cycle-independent quantity — recomputed lazily when stale.
        self._pending_min = FAR_FUTURE
        self._pending_dirty = False

    # ------------------------------------------------------------------
    # Allocation (decode time).
    # ------------------------------------------------------------------

    def can_allocate_load(self) -> bool:
        if len(self._loads) >= self.params.load_queue:
            self.lq_full_stalls += 1
            return False
        return True

    def can_allocate_store(self) -> bool:
        if len(self._stores) >= self.params.store_queue:
            self.sq_full_stalls += 1
            return False
        return True

    def allocate(self, uop: Uop, data_producer: Optional[Uop] = None) -> None:
        if uop.is_load:
            entry: object = _LoadEntry(uop)
            self._loads.append(entry)  # type: ignore[arg-type]
        elif uop.is_store:
            entry = _StoreEntry(uop, data_producer)
            self._stores.append(entry)  # type: ignore[arg-type]
        else:
            raise SimulationError("LSQ allocate for non-memory uop")
        self._by_uop[uop.seq] = entry

    # ------------------------------------------------------------------
    # Address generation / replay hooks (engine-driven).
    # ------------------------------------------------------------------

    def address_generated(self, uop: Uop, cycle: int, predicted_ready: int) -> None:
        """EAG produced the effective address at ``cycle``."""
        entry = self._by_uop.get(uop.seq)
        if entry is None:
            raise SimulationError(f"address for unknown LSQ entry #{uop.seq}")
        if isinstance(entry, _LoadEntry):
            entry.addr_known_at = cycle
            entry.issued = False
            entry.predicted_ready = predicted_ready
            # The load became issuable at ``cycle``: fold it into the
            # cached minimum (exact even while other milestones hold).
            if cycle < self._pending_min:
                self._pending_min = cycle
        else:
            entry.addr_known_at = cycle  # type: ignore[union-attr]

    def load_cancelled(self, uop: Uop) -> None:
        """A load was cancelled before issue (its address was speculative)."""
        entry = self._by_uop.get(uop.seq)
        if isinstance(entry, _LoadEntry):
            entry.addr_known_at = FAR_FUTURE
            entry.issued = False
            self._pending_dirty = True  # a candidate disappeared

    def store_committed(self, uop: Uop, cycle: int) -> None:
        entry = self._by_uop.get(uop.seq)
        if not isinstance(entry, _StoreEntry):
            raise SimulationError(f"commit of unknown store #{uop.seq}")
        entry.committed_at = cycle
        if entry.addr_known_at < self._pending_min:
            self._pending_min = entry.addr_known_at

    def release(self, uop: Uop) -> None:
        """Free a load entry at commit (stores free after their write)."""
        entry = self._by_uop.pop(uop.seq, None)
        if isinstance(entry, _LoadEntry):
            self._loads.remove(entry)
            self._pending_dirty = True
        elif isinstance(entry, _StoreEntry):
            self._stores.remove(entry)
            self._pending_dirty = True

    # ------------------------------------------------------------------
    # Per-cycle operation.
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> Tuple[List[LoadResolution], bool]:
        """Issue up to ``l1d_ports`` requests; returns (resolutions, activity)."""
        resolutions: List[LoadResolution] = []
        activity = False
        ports_left = self.params.l1d_ports
        banks_used: Dict[int, bool] = {}

        # Drain committed stores and issue ready loads, oldest first.
        candidates: List[Tuple[int, object]] = []
        for load in self._loads:
            if (
                not load.issued
                and load.addr_known_at <= cycle
                and load.uop.state.value < 2  # not DONE/COMMITTED
            ):
                candidates.append((load.uop.seq, load))
        for store in self._stores:
            if (
                store.committed_at >= 0
                and store.write_done_at < 0
                and store.addr_known_at <= cycle
            ):
                candidates.append((store.uop.seq, store))
        candidates.sort(key=lambda pair: pair[0])

        for _, entry in candidates:
            if ports_left <= 0:
                break
            banked = self.hierarchy.l1d.geometry.banks > 1
            if isinstance(entry, _LoadEntry):
                outcome = self._try_issue_load(entry, cycle, banks_used, banked)
                if outcome == "conflict":
                    self.bank_conflicts += 1
                    self.last_conflict_cycle = cycle
                    self.last_conflict_seq = entry.uop.seq
                    continue
                if outcome == "blocked":
                    continue
                ports_left -= 1
                activity = True
                resolutions.append(outcome)  # type: ignore[arg-type]
            else:
                bank = self.hierarchy.bank_of(entry.uop.record.ea)
                if banked and banks_used.get(bank):
                    self.bank_conflicts += 1
                    continue
                banks_used[bank] = True
                result = self.hierarchy.store(cycle, entry.uop.record.ea)
                entry.write_done_at = result.ready_cycle
                ports_left -= 1
                activity = True

        # Lazily reap written-back stores.
        finished = [
            store
            for store in self._stores
            if 0 <= store.write_done_at <= cycle
        ]
        for store in finished:
            self._stores.remove(store)
            self._by_uop.pop(store.uop.seq, None)
            activity = True

        if activity:
            # Issues, writes and reaps all consume or move milestones.
            self._pending_dirty = True
        return resolutions, activity

    def _try_issue_load(
        self, entry: _LoadEntry, cycle: int, banks_used: Dict[int, bool], banked: bool = True
    ):
        uop = entry.uop
        ea = uop.record.ea
        aligned = ea & ~0x7

        # Memory-order check against older stores.  The store queue is
        # allocated in decode order, so the first younger entry ends the
        # scan.
        blocking_store: Optional[_StoreEntry] = None
        forward_from: Optional[_StoreEntry] = None
        for store in self._stores:
            if store.uop.seq > uop.seq:
                break
            if store.addr_known_at > cycle:
                blocking_store = store
                break
            if store.uop.record.ea & ~0x7 == aligned:
                forward_from = store  # youngest older matching store wins
        if blocking_store is not None:
            self.order_stalls += 1
            self.last_order_stall_cycle = cycle
            self.last_order_stall_seq = uop.seq
            return "blocked"

        if forward_from is not None:
            data_ready = forward_from.data_ready_cycle()
            if data_ready >= FAR_FUTURE or data_ready > cycle:
                self.order_stalls += 1
                self.last_order_stall_cycle = cycle
                self.last_order_stall_seq = uop.seq
                return "blocked"
            entry.issued = True
            self.forwards += 1
            ready = cycle + 1
            return LoadResolution(
                uop=uop,
                issue_cycle=cycle,
                ready_cycle=ready,
                prediction_held=ready <= entry.predicted_ready,
                level="forward",
            )

        bank = self.hierarchy.bank_of(ea)
        if banked and banks_used.get(bank):
            return "conflict"
        banks_used[bank] = True
        result = self.hierarchy.load(cycle, ea)
        entry.issued = True
        return LoadResolution(
            uop=uop,
            issue_cycle=cycle,
            ready_cycle=result.ready_cycle,
            prediction_held=result.ready_cycle <= entry.predicted_ready,
            level=result.level,
        )

    # ------------------------------------------------------------------

    def _refresh_pending(self) -> int:
        """Recompute the raw pending-work minimum (cycle-independent)."""
        best = FAR_FUTURE
        for load in self._loads:
            if not load.issued and load.addr_known_at < best:
                best = load.addr_known_at
        for store in self._stores:
            if store.write_done_at >= 0:
                if store.write_done_at < best:
                    best = store.write_done_at
            elif store.committed_at >= 0 and store.addr_known_at < best:
                best = store.addr_known_at
        self._pending_min = best
        self._pending_dirty = False
        return best

    def pending_work_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which the LSU has something to do.

        The per-entry minimum is cached and invalidated on queue
        mutations, so idle-span jumps don't re-walk both queues on every
        call; ``max(min, cycle + 1)`` reproduces the eager per-entry
        clamping exactly.
        """
        best = self._refresh_pending() if self._pending_dirty else self._pending_min
        if best >= FAR_FUTURE:
            return None
        return max(best, cycle + 1)

    def has_work(self, cycle: int) -> bool:
        """True when :meth:`step` would find at least one candidate."""
        best = self._refresh_pending() if self._pending_dirty else self._pending_min
        return best <= cycle

    def occupancy(self) -> Tuple[int, int]:
        return len(self._loads), len(self._stores)
