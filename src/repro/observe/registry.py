"""The metrics registry: one authoritative list of everything we measure.

``SimResult``, the experiment runner, the figure harness and ``repro
analyze`` used to each reach into result objects with their own strings;
a renamed counter silently orphaned whichever consumer was not updated.
The registry fixes the contract: every metric has one canonical name,
one description, and one getter, and every consumer iterates the same
table.

Names are dotted paths: plain scalars (``ipc``, ``cycles``), nested
counters (``decode_stalls.window``), and the CPI-stack categories
(``cpistack.dcache_l2``).  :func:`collect` flattens a result into a
``{name: value}`` dict; :func:`metric_names` lists what a result would
produce (stack categories included only when present, since zero
categories are pruned on serialization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.observe.categories import CPI_CATEGORIES, DECODE_STALL_KINDS


@dataclass(frozen=True)
class Metric:
    """One named measurement extracted from a :class:`SimResult`."""

    name: str
    description: str
    getter: Callable[[object], object]
    unit: str = ""


def _core(attr: str) -> Callable[[object], object]:
    return lambda result: getattr(result.core, attr)


#: The scalar metrics, in display order.
_SCALARS: Tuple[Metric, ...] = (
    Metric("instructions", "committed instructions", _core("instructions")),
    Metric("cycles", "simulated cycles", _core("cycles")),
    Metric("ipc", "committed instructions per cycle", lambda r: r.ipc),
    Metric("loads", "committed loads", _core("loads")),
    Metric("stores", "committed stores", _core("stores")),
    Metric("branches", "committed branches", _core("branches")),
    Metric("dispatches", "reservation-station dispatches", _core("dispatches")),
    Metric("replays", "speculative-dispatch cancellations", _core("replays")),
    Metric("bank_conflicts", "L1D bank conflicts", _core("bank_conflicts")),
    Metric("store_forwards", "loads forwarded from the store queue", _core("store_forwards")),
    Metric("order_stalls", "loads held by memory ordering", _core("order_stalls")),
    Metric(
        "fetch_icache_stall_cycles",
        "cycles fetch stalled on L1I misses",
        _core("fetch_icache_stall_cycles"),
        unit="cycles",
    ),
    Metric(
        "fetch_taken_bubble_cycles",
        "taken-branch redirect bubbles",
        _core("fetch_taken_bubble_cycles"),
        unit="cycles",
    ),
    Metric(
        "branch_mispredictions",
        "conditional branches mispredicted",
        _core("branch_mispredictions"),
    ),
    Metric(
        "bht_misprediction_ratio",
        "BHT misprediction ratio",
        lambda r: r.bht_misprediction_ratio,
    ),
    Metric("l1i_miss_ratio", "L1I demand miss ratio", lambda r: r.miss_ratio("l1i")),
    Metric("l1d_miss_ratio", "L1D demand miss ratio", lambda r: r.miss_ratio("l1d")),
    Metric("l2_miss_ratio", "L2 demand miss ratio", lambda r: r.miss_ratio("l2")),
)

REGISTRY: Dict[str, Metric] = {metric.name: metric for metric in _SCALARS}


def register(metric: Metric) -> None:
    """Add (or replace) one metric in the registry."""
    REGISTRY[metric.name] = metric


def metric_names() -> List[str]:
    """Every name :func:`collect` can produce, in canonical order."""
    names = list(REGISTRY)
    names.extend(f"decode_stalls.{kind}" for kind in DECODE_STALL_KINDS)
    names.extend(f"cpistack.{category}" for category in CPI_CATEGORIES)
    return names


def collect(result) -> Dict[str, object]:
    """Flatten one result into ``{metric name: value}``.

    Decode-stall and CPI-stack entries appear only when non-zero — the
    pipeline prunes empty categories before serialization, and the
    registry mirrors that so cached and fresh results collect identically.
    """
    out: Dict[str, object] = {
        name: metric.getter(result) for name, metric in REGISTRY.items()
    }
    for kind, count in result.core.decode_stalls.items():
        out[f"decode_stalls.{kind}"] = count
    for category, count in result.core.cpi_stack.items():
        out[f"cpistack.{category}"] = count
    return out
