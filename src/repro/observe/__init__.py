"""Pipeline observability: CPI-stack accounting, event tracing, metrics.

Three layers, all reading from the same canonical label set
(:mod:`repro.observe.categories`):

- :mod:`repro.observe.cpistack` — the always-on cycle accountant's
  invariants and renderers.  Every committed cycle is attributed to
  exactly one category; the sum equals ``CoreStats.cycles`` with exact
  integer equality, enforced at the end of every run.
- :mod:`repro.observe.events` — opt-in per-cycle structured event
  tracing (fetch/decode/dispatch/complete/commit/cancel) with JSONL and
  Chrome-trace exporters and a ring-buffer mode for last-N capture.
- :mod:`repro.observe.registry` — the metrics registry shared by
  ``SimResult``, the runner, and ``repro analyze``.
"""

from repro.observe.categories import (
    CATEGORY_LABELS,
    CPI_CATEGORIES,
    DECODE_STALL_KINDS,
    DECODE_STALL_LABELS,
    FIG7_GROUPS,
    FIG7_ORDER,
)
from repro.observe.cpistack import (
    ConservationError,
    collapse_fig7,
    fractions,
    merge,
    new_stack,
    prune,
    render_stack,
    render_stack_table,
    total,
    verify_conservation,
)
from repro.observe.events import EventRecord, PipelineTracer
from repro.observe.registry import Metric, REGISTRY, collect, metric_names, register

__all__ = [
    "CATEGORY_LABELS",
    "CPI_CATEGORIES",
    "DECODE_STALL_KINDS",
    "DECODE_STALL_LABELS",
    "FIG7_GROUPS",
    "FIG7_ORDER",
    "ConservationError",
    "collapse_fig7",
    "fractions",
    "merge",
    "new_stack",
    "prune",
    "render_stack",
    "render_stack_table",
    "total",
    "verify_conservation",
    "EventRecord",
    "PipelineTracer",
    "Metric",
    "REGISTRY",
    "collect",
    "metric_names",
    "register",
]
