"""Opt-in per-cycle structured pipeline event tracing.

When a :class:`PipelineTracer` is attached to a core
(:meth:`repro.core.pipeline.ProcessorCore.attach_tracer`, or
``PerformanceModel.run(..., tracer=...)``, or ``repro run
--trace-events``), the pipeline emits one compact record per lifecycle
event:

==========  =============================================================
kind        meaning (extra fields)
==========  =============================================================
``fetch``   one fetch group delivered (``pc`` of first instr, ``count``)
``decode``  uop entered the window (``pc``, ``op``)
``dispatch``uop left a reservation station (``station``)
``complete``uop's result became final (``level`` for loads)
``commit``  uop retired
``cancel``  uop was cancelled for replay (``replays`` so far)
==========  =============================================================

Records are stored as plain tuples ``(cycle, kind, uop, a, b)`` — the
emit path is two attribute loads and a method call, so tracing costs
nothing when disabled (``tracer is None``) and little when enabled.

Two retention modes:

- **full** (``capacity=None``): every event is kept, for export;
- **ring** (``capacity=N``): a ring buffer keeps only the last N events,
  for "what led up to the anomaly" capture on very long runs — attach a
  ring tracer, run, and dump the buffer when something trips (the
  deadlock detector and the conservation invariant both leave the tracer
  contents intact for post-mortem reads).

Exporters: :meth:`PipelineTracer.write_jsonl` (one JSON object per
line, diff- and grep-friendly) and :meth:`PipelineTracer.write_chrome_trace`
(the Chrome ``about:tracing`` / Perfetto JSON format: per-uop lanes with
one duration slice per pipeline stage, instant markers for cancels).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

#: One event: (cycle, kind, uop_seq, a, b).  ``uop_seq`` is -1 for
#: group-level fetch events; ``a``/``b`` are kind-specific payloads.
EventRecord = Tuple[int, str, int, object, object]

#: Field names per kind for the structured (dict) views.
_PAYLOAD_FIELDS = {
    "fetch": ("pc", "count"),
    "decode": ("pc", "op"),
    "dispatch": ("station", None),
    "complete": ("level", None),
    "commit": (None, None),
    "cancel": ("replays", None),
}


class PipelineTracer:
    """Collects pipeline events; optionally as a bounded ring buffer."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[EventRecord] = deque(maxlen=capacity)
        #: Total events emitted (>= len(self) in ring mode).
        self.emitted = 0

    # -- hot path --------------------------------------------------------

    def emit(self, cycle: int, kind: str, uop: int, a=None, b=None) -> None:
        """Record one event (kept deliberately branch-free)."""
        self._events.append((cycle, kind, uop, a, b))
        self.emitted += 1

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded by the ring (0 in full mode)."""
        return self.emitted - len(self._events)

    def events(self) -> List[EventRecord]:
        """The retained events, oldest first."""
        return list(self._events)

    def records(self) -> Iterable[dict]:
        """The retained events as structured dicts."""
        for cycle, kind, uop, a, b in self._events:
            record = {"cycle": cycle, "event": kind}
            if uop >= 0:
                record["uop"] = uop
            name_a, name_b = _PAYLOAD_FIELDS.get(kind, ("a", "b"))
            if a is not None and name_a:
                record[name_a] = a
            if b is not None and name_b:
                record[name_b] = b
            yield record

    def clear(self) -> None:
        self._events.clear()

    # -- exporters -------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per retained event; returns the count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
                count += 1
        return count

    def write_chrome_trace(self, path: str, lanes: int = 32) -> int:
        """Write the Chrome ``about:tracing`` JSON view; returns event count.

        Each uop becomes duration slices (decode→dispatch, dispatch→
        complete, complete→commit) on lane ``seq % lanes`` so long runs
        stay viewable; cancels and fetch groups become instant events.
        One simulated cycle maps to one microsecond of trace time.
        """
        milestones = {}  # seq -> {stage: cycle}
        instants = []
        for cycle, kind, uop, a, b in self._events:
            if kind in ("decode", "dispatch", "complete", "commit"):
                milestones.setdefault(uop, {})[kind] = cycle
            elif kind == "cancel":
                instants.append(
                    {
                        "name": f"cancel #{uop}",
                        "ph": "i",
                        "ts": cycle,
                        "pid": 0,
                        "tid": uop % lanes,
                        "s": "t",
                    }
                )
            elif kind == "fetch":
                instants.append(
                    {
                        "name": "fetch group",
                        "ph": "i",
                        "ts": cycle,
                        "pid": 0,
                        "tid": 0,
                        "s": "t",
                        "args": {"pc": a, "count": b},
                    }
                )
        slices = []
        stages = ("decode", "dispatch", "complete", "commit")
        for seq, marks in milestones.items():
            for start_stage, end_stage in zip(stages, stages[1:]):
                start = marks.get(start_stage)
                end = marks.get(end_stage)
                if start is None or end is None:
                    continue
                slices.append(
                    {
                        "name": f"#{seq} {start_stage}→{end_stage}",
                        "cat": "pipeline",
                        "ph": "X",
                        "ts": start,
                        "dur": max(end - start, 0),
                        "pid": 0,
                        "tid": seq % lanes,
                    }
                )
        events = slices + instants
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(events)
