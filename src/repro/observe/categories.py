"""Canonical names for every observability label in the model.

Before this module existed the stall labels were stringly-typed in two
places (the pipeline's ``_decode_stalls`` dict and ad-hoc report code),
which is exactly how counter drift starts: a renamed key silently
orphans a report column.  Everything that names a stall — the decode
back-pressure counters, the CPI-stack categories, the paper's Figure 7
buckets — now imports its strings from here.

**CPI-stack categories.**  The cycle accountant attributes every
committed cycle to exactly one of the :data:`CPI_CATEGORIES` below via
head-of-window blocker analysis (see :mod:`repro.observe.cpistack`).
The conservation invariant — the attributed cycles sum to
``CoreStats.cycles`` with exact integer equality — is enforced at the
end of every run.

**Figure 7 mapping.**  :data:`FIG7_GROUPS` collapses the fine-grained
stack onto the paper's four characterization buckets (core / branch /
ibs+tlb / sx) so a measured stack can be read against Figure 7.  The
mapping is approximate by construction: the paper derives its buckets
from perfect-structure model deltas, while the stack attributes concrete
cycles; both views are reported side by side.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# CPI-stack categories (cycle attribution).
# ---------------------------------------------------------------------------

#: >=1 instruction committed this cycle (issue/commit bandwidth in use).
BASE = "base"
#: Window empty; fetch is stalled on an L1I miss or ITLB walk.
ICACHE = "icache"
#: Window empty behind an unresolved mispredicted branch (dead fetch
#: time + redirect penalty), or the window head is that branch.
BRANCH_MISPREDICT = "branch_mispredict"
#: Window empty; fetch is paying taken-branch redirect bubbles (the
#: BHT-access-latency bubbles of the paper's §4.3.2 study).
FETCH_BUBBLE = "fetch_bubble"
#: Window empty; instructions are in flight in the fetch/decode pipe.
FRONTEND_FILL = "frontend_fill"
#: Window empty and the trace is exhausted (run tail; on SMP, cycles a
#: finished CPU spends waiting for its peers).
DRAIN = "drain"
#: Head of window is a load in flight at (or still predicted at) L1 hit
#: timing, or resolved as an L1 hit not yet forwarded.
DCACHE_L1 = "dcache_l1"
#: Head load resolved as an L1 miss serviced by the L2.
DCACHE_L2 = "dcache_l2"
#: Head load serviced by a cache-to-cache transfer (SMP).
DCACHE_REMOTE = "dcache_remote"
#: Head load serviced by memory (includes bus + DRAM occupancy).
DCACHE_MEM = "dcache_mem"
#: Head load satisfied by store-queue forwarding.
DCACHE_FORWARD = "dcache_forward"
#: Head load delayed by an L1 operand-bank conflict this cycle (§3.2).
BANK_CONFLICT = "bank_conflict"
#: Head load held by memory-ordering (older store address/data unknown).
LSQ_ORDER = "lsq_order"
#: Head uop was cancelled by speculative-dispatch replay (§3.1) and is
#: waiting to re-dispatch.
REPLAY = "replay"
#: Head store is complete but its data producer has not delivered.
#: Structurally zero under in-order commit (the producer, being older,
#: commits first) — cycles here are a tripwire for a changed discipline.
STORE_DATA = "store_data"
#: Head uop is executing or waiting on register dependences.
EXEC = "exec"

#: Every category the accountant can emit, in canonical display order.
CPI_CATEGORIES: Tuple[str, ...] = (
    BASE,
    EXEC,
    DCACHE_L1,
    DCACHE_L2,
    DCACHE_REMOTE,
    DCACHE_MEM,
    DCACHE_FORWARD,
    BANK_CONFLICT,
    LSQ_ORDER,
    STORE_DATA,
    REPLAY,
    BRANCH_MISPREDICT,
    FETCH_BUBBLE,
    ICACHE,
    FRONTEND_FILL,
    DRAIN,
)

#: Memory-hierarchy level (as reported by LoadResolution.level) -> category.
LEVEL_CATEGORY: Dict[str, str] = {
    "l1": DCACHE_L1,
    "l2": DCACHE_L2,
    "remote": DCACHE_REMOTE,
    "mem": DCACHE_MEM,
    "forward": DCACHE_FORWARD,
}

#: Fetch-unit stall reason -> category (window empty).
FETCH_CATEGORY: Dict[str, str] = {
    "mispredict": BRANCH_MISPREDICT,
    "redirect": BRANCH_MISPREDICT,
    "icache": ICACHE,
    "bubble": FETCH_BUBBLE,
    "drained": DRAIN,
}

#: Human-readable labels for tables.
CATEGORY_LABELS: Dict[str, str] = {
    BASE: "base (committing)",
    EXEC: "execution/dependences",
    DCACHE_L1: "D-cache L1",
    DCACHE_L2: "D-cache L2",
    DCACHE_REMOTE: "D-cache remote",
    DCACHE_MEM: "D-cache memory+bus",
    DCACHE_FORWARD: "store forward",
    BANK_CONFLICT: "bank conflict",
    LSQ_ORDER: "LSQ ordering",
    STORE_DATA: "store data wait",
    REPLAY: "replay (cancel)",
    BRANCH_MISPREDICT: "branch mispredict",
    FETCH_BUBBLE: "taken-branch bubble",
    ICACHE: "I-cache/ITLB",
    FRONTEND_FILL: "front-end fill",
    DRAIN: "drain",
}

#: Collapse onto the paper's Figure 7 buckets (core / branch / ibs+tlb / sx).
FIG7_GROUPS: Dict[str, str] = {
    BASE: "core",
    EXEC: "core",
    DCACHE_L1: "core",
    DCACHE_FORWARD: "core",
    BANK_CONFLICT: "core",
    LSQ_ORDER: "core",
    STORE_DATA: "core",
    REPLAY: "core",
    FRONTEND_FILL: "core",
    DRAIN: "core",
    BRANCH_MISPREDICT: "branch",
    FETCH_BUBBLE: "branch",
    ICACHE: "ibs/tlb",
    DCACHE_L2: "sx",
    DCACHE_REMOTE: "sx",
    DCACHE_MEM: "sx",
}

#: Order of the collapsed Figure 7 view.
FIG7_ORDER: Tuple[str, ...] = ("core", "branch", "ibs/tlb", "sx")


# ---------------------------------------------------------------------------
# Decode back-pressure counters (events, not cycles).
# ---------------------------------------------------------------------------
#
# These are the keys of ``CoreStats.decode_stalls``.  They count decode
# *attempts* rejected by a full structure — symptoms of downstream
# blockage, reported alongside the stack but never part of the conserved
# cycle sum (the stack attributes such cycles to the structure blocking
# the window head).

DECODE_WINDOW = "window"
DECODE_RENAME_INT = "rename_int"
DECODE_RENAME_FP = "rename_fp"
DECODE_RS = "rs"
DECODE_LQ = "lq"
DECODE_SQ = "sq"

#: Canonical ordering of the decode-stall counters.
DECODE_STALL_KINDS: Tuple[str, ...] = (
    DECODE_WINDOW,
    DECODE_RENAME_INT,
    DECODE_RENAME_FP,
    DECODE_RS,
    DECODE_LQ,
    DECODE_SQ,
)

#: Display labels for the decode-stall counters.
DECODE_STALL_LABELS: Dict[str, str] = {
    DECODE_WINDOW: "window full",
    DECODE_RENAME_INT: "int rename regs",
    DECODE_RENAME_FP: "fp rename regs",
    DECODE_RS: "reservation stations",
    DECODE_LQ: "load queue",
    DECODE_SQ: "store queue",
}
