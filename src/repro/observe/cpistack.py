"""CPI-stack accounting: attribute every committed cycle to one cause.

The accountant itself lives inside :class:`repro.core.pipeline.ProcessorCore`
(a handful of dict increments per simulated cycle — it is always on), and
this module owns everything around the raw counters:

- :func:`verify_conservation` — the hard invariant.  The per-category
  cycle counts must sum to the run's total cycles with **exact integer
  equality**; any violation is a bug in the attribution logic, never a
  rounding artefact, and the pipeline raises at the end of the run.
- :func:`collapse_fig7` — fold the fine-grained stack onto the paper's
  four Figure 7 characterization buckets (core / branch / ibs+tlb / sx).
- :func:`render_stack` / :func:`render_stack_table` — diff-friendly,
  aligned text renderings used by ``repro analyze cpistack`` and the
  figure harness.

Attribution scheme (documented here once; the classifier mirrors it):

1. a cycle in which at least one instruction commits is ``base``;
2. a zero-commit cycle with a non-empty window is attributed to whatever
   blocks the *window head* (memory level for loads, replay, bank
   conflict, store data, branch resolution, execution latency);
3. a zero-commit cycle with an empty window is attributed to the front
   end (I-cache stall, mispredict dead time, taken-branch bubbles,
   fetch-pipe fill, or end-of-trace drain).

Decode back-pressure (window/rename/RS/LSQ full) counters are *events*,
not cycles: a full structure is a symptom of the downstream blockage the
head-of-window rule already charges.  They are reported alongside the
stack, never inside the conserved sum.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.observe.categories import (
    CATEGORY_LABELS,
    CPI_CATEGORIES,
    FIG7_GROUPS,
    FIG7_ORDER,
)


class ConservationError(SimulationError):
    """The attributed cycles do not sum to the run's total cycles."""


def new_stack() -> Dict[str, int]:
    """A zeroed accumulator with every category pre-registered.

    Pre-registering keeps the hot-path increment a plain ``stack[cat] += 1``
    and makes the serialized ordering deterministic.
    """
    return {category: 0 for category in CPI_CATEGORIES}


def prune(stack: Mapping[str, int]) -> Dict[str, int]:
    """Drop zero categories, preserving canonical order (for serialization)."""
    return {cat: count for cat, count in stack.items() if count}


def total(stack: Mapping[str, int]) -> int:
    """Sum of attributed cycles."""
    return sum(stack.values())


def verify_conservation(stack: Mapping[str, int], cycles: int, where: str = "") -> None:
    """Raise :class:`ConservationError` unless ``sum(stack) == cycles`` exactly."""
    attributed = total(stack)
    if attributed != cycles:
        detail = ", ".join(f"{cat}={count}" for cat, count in prune(stack).items())
        raise ConservationError(
            f"CPI-stack conservation violated{f' in {where}' if where else ''}: "
            f"attributed {attributed} cycles != simulated {cycles} "
            f"(delta {attributed - cycles:+d}); stack: {{{detail}}}"
        )


def merge(stacks: Sequence[Mapping[str, int]]) -> Dict[str, int]:
    """Element-wise sum of several stacks (e.g. the per-CPU stacks of an SMP run)."""
    merged = new_stack()
    for stack in stacks:
        for category, count in stack.items():
            merged[category] = merged.get(category, 0) + count
    return prune(merged)


def fractions(stack: Mapping[str, int]) -> Dict[str, float]:
    """Each category as a fraction of the attributed total."""
    denom = total(stack)
    if denom == 0:
        return {}
    return {cat: count / denom for cat, count in stack.items() if count}


def collapse_fig7(stack: Mapping[str, int]) -> Dict[str, int]:
    """Fold the stack onto the paper's Figure 7 buckets.

    Unmapped (future) categories conservatively fold into ``core`` so the
    collapsed view conserves cycles too.
    """
    collapsed = {group: 0 for group in FIG7_ORDER}
    for category, count in stack.items():
        collapsed[FIG7_GROUPS.get(category, "core")] += count
    return collapsed


def ordered_items(stack: Mapping[str, int]) -> List[Tuple[str, int]]:
    """Non-zero (category, cycles) pairs in canonical display order."""
    known = [(cat, stack[cat]) for cat in CPI_CATEGORIES if stack.get(cat)]
    extra = sorted(
        (cat, count)
        for cat, count in stack.items()
        if cat not in CPI_CATEGORIES and count
    )
    return known + extra


def render_stack(stack: Mapping[str, int], cycles: Optional[int] = None) -> str:
    """One stack as aligned ``label  cycles  percent`` lines."""
    denom = cycles if cycles is not None else total(stack)
    items = ordered_items(stack)
    if not items:
        return "(empty stack)"
    width = max(len(CATEGORY_LABELS.get(cat, cat)) for cat, _ in items)
    lines = []
    for cat, count in items:
        label = CATEGORY_LABELS.get(cat, cat)
        share = 100.0 * count / denom if denom else 0.0
        lines.append(f"{label:<{width}}  {count:>10,}  {share:5.1f}%")
    lines.append(f"{'total':<{width}}  {total(stack):>10,}  100.0%")
    return "\n".join(lines)


def render_stack_table(
    stacks: Mapping[str, Mapping[str, int]],
    fig7: bool = False,
) -> str:
    """Several runs side by side: one row per run, one column per category.

    ``stacks`` maps a row label (workload or ``workload@config``) to its
    stack.  With ``fig7=True`` the columns are the paper's four buckets.
    """
    from repro.analysis.report import format_table, percent

    if fig7:
        columns: Sequence[str] = FIG7_ORDER
        rendered = {name: collapse_fig7(stack) for name, stack in stacks.items()}
        headers = ["workload"] + list(columns)
    else:
        used = set()
        for stack in stacks.values():
            used.update(cat for cat, count in stack.items() if count)
        columns = [cat for cat in CPI_CATEGORIES if cat in used] + sorted(
            used - set(CPI_CATEGORIES)
        )
        rendered = {name: dict(stack) for name, stack in stacks.items()}
        headers = ["workload"] + list(columns)
    rows = []
    for name, stack in rendered.items():
        denom = total(stack)
        rows.append(
            [name]
            + [
                percent(stack.get(col, 0) / denom, 1) if denom else "n/a"
                for col in columns
            ]
        )
    return format_table(headers, rows)
