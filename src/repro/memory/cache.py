"""Set-associative cache with true LRU and coherence states.

This is the tag-array model shared by every cache level (L1I, L1D, L2).
It tracks hit/miss outcomes and line states; the *timing* of misses is
handled by the enclosing level in :mod:`repro.memory.hierarchy`, which
owns the MSHRs and the path to the next level.

States follow a MOESI-style protocol so the same model serves both the
uniprocessor runs and the SMP coherence domain (§3.3's "move-out"
requests are transfers of M/O lines between L2 caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.memory.params import CacheGeometry


class LineState(IntEnum):
    """MOESI coherence state of a cache line."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    OWNED = 3
    MODIFIED = 4

    @property
    def is_dirty(self) -> bool:
        return self in (LineState.MODIFIED, LineState.OWNED)

    @property
    def is_valid(self) -> bool:
        return self != LineState.INVALID


@dataclass
class CacheStats:
    """Hit/miss counters for one cache, split by request origin."""

    demand_accesses: int = 0
    demand_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_misses: int = 0
    writebacks: int = 0
    invalidations_received: int = 0
    #: Demand misses that hit a line brought in by a prefetch.
    prefetch_useful: int = 0

    @property
    def demand_miss_ratio(self) -> float:
        """Demand miss ratio (the paper's per-cache miss figures)."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    @property
    def total_miss_ratio(self) -> float:
        """Miss ratio over all requests including prefetches (Fig. 17 'with')."""
        total = self.demand_accesses + self.prefetch_accesses
        if total == 0:
            return 0.0
        return (self.demand_misses + self.prefetch_misses) / total

    def as_dict(self) -> Dict[str, float]:
        return {
            "demand_accesses": self.demand_accesses,
            "demand_misses": self.demand_misses,
            "demand_miss_ratio": round(self.demand_miss_ratio, 6),
            "prefetch_accesses": self.prefetch_accesses,
            "prefetch_misses": self.prefetch_misses,
            "total_miss_ratio": round(self.total_miss_ratio, 6),
            "writebacks": self.writebacks,
            "invalidations_received": self.invalidations_received,
            "prefetch_useful": self.prefetch_useful,
        }


class _Line:
    __slots__ = ("tag", "state", "lru", "from_prefetch")

    def __init__(self) -> None:
        self.tag = -1
        self.state = LineState.INVALID
        self.lru = 0
        self.from_prefetch = False


@dataclass
class EvictedLine:
    """Description of a line displaced by a fill."""

    line_addr: int
    state: LineState

    @property
    def dirty(self) -> bool:
        return self.state.is_dirty


class SetAssociativeCache:
    """Tag array with per-set true LRU replacement."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List[List[_Line]] = [
            [_Line() for _ in range(geometry.ways)] for _ in range(geometry.sets)
        ]
        self._set_mask = geometry.sets - 1
        self._set_bits = geometry.sets.bit_length() - 1
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._lru_clock = 0
        self.stats = CacheStats()

    # -- address helpers -------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        return addr >> self._line_shift << self._line_shift

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        # XOR-fold the upper line bits into the index.  The simulator works
        # on virtual addresses; real systems scatter page placement through
        # virtual-to-physical translation, so naturally-aligned region
        # bases (all powers of two here) would otherwise pathologically
        # collide in set 0 of large caches.  The fold stands in for that
        # translation scramble.  The tag stays the full line number, so
        # correctness is unaffected.
        index = (line ^ (line >> self._set_bits)) & self._set_mask
        return index, line

    def bank_of(self, addr: int) -> int:
        """Bank index for the L1 operand cache's 8 × 4 B interleave."""
        return (addr // self.geometry.bank_bytes) % self.geometry.banks

    # -- lookups ----------------------------------------------------------

    def probe(self, addr: int) -> Optional[LineState]:
        """State of the line containing ``addr`` without updating LRU."""
        index, tag = self._index_tag(addr)
        for line in self._sets[index]:
            if line.tag == tag and line.state.is_valid:
                return line.state
        return None

    def lookup(self, addr: int, is_write: bool = False, prefetch: bool = False) -> bool:
        """Access the cache; returns True on hit.

        Updates LRU and statistics.  A write hit upgrades the line to
        MODIFIED (write-allocate copy-back, as in the SPARC64 V's L1).
        Upgrade traffic for writes hitting SHARED lines is handled by the
        coherence domain, not here.
        """
        index, tag = self._index_tag(addr)
        self._lru_clock += 1
        hit = False
        for line in self._sets[index]:
            if line.tag == tag and line.state.is_valid:
                line.lru = self._lru_clock
                if is_write:
                    line.state = LineState.MODIFIED
                if line.from_prefetch and not prefetch:
                    self.stats.prefetch_useful += 1
                    line.from_prefetch = False
                hit = True
                break
        if prefetch:
            self.stats.prefetch_accesses += 1
            if not hit:
                self.stats.prefetch_misses += 1
        else:
            self.stats.demand_accesses += 1
            if not hit:
                self.stats.demand_misses += 1
        return hit

    # -- fills and removals ----------------------------------------------

    def fill(
        self,
        addr: int,
        state: LineState = LineState.EXCLUSIVE,
        from_prefetch: bool = False,
    ) -> Optional[EvictedLine]:
        """Install the line containing ``addr``; returns any eviction.

        Filling a line that is already present just updates its state
        (e.g. a fetch racing a prefetch) and evicts nothing.
        """
        if state == LineState.INVALID:
            raise SimulationError("cannot fill a line to INVALID")
        index, tag = self._index_tag(addr)
        self._lru_clock += 1
        bucket = self._sets[index]
        victim: Optional[_Line] = None
        for line in bucket:
            if line.tag == tag and line.state.is_valid:
                line.state = state
                line.lru = self._lru_clock
                return None
            if not line.state.is_valid and victim is None:
                victim = line
        if victim is None:
            victim = min(bucket, key=lambda line: line.lru)
        evicted: Optional[EvictedLine] = None
        if victim.state.is_valid:
            evicted = EvictedLine(
                line_addr=victim.tag << self._line_shift, state=victim.state
            )
            if evicted.dirty:
                self.stats.writebacks += 1
        victim.tag = tag
        victim.state = state
        victim.lru = self._lru_clock
        victim.from_prefetch = from_prefetch
        return evicted

    def downgrade(self, addr: int, state: LineState) -> Optional[LineState]:
        """Change the line's state (snoop response); returns prior state."""
        index, tag = self._index_tag(addr)
        for line in self._sets[index]:
            if line.tag == tag and line.state.is_valid:
                previous = line.state
                line.state = state
                if state == LineState.INVALID:
                    self.stats.invalidations_received += 1
                return previous
        return None

    def invalidate(self, addr: int) -> Optional[LineState]:
        """Invalidate the line containing ``addr``; returns prior state."""
        return self.downgrade(addr, LineState.INVALID)

    # -- introspection ----------------------------------------------------

    def valid_line_count(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1 for bucket in self._sets for line in bucket if line.state.is_valid
        )

    def resident(self, addr: int) -> bool:
        """True if the line containing ``addr`` is valid in the cache."""
        return self.probe(addr) is not None
