"""L2 hardware-prefetch engine (§3.4).

The SPARC64 V prefetches into the L2 cache only — no extra pipeline
stages and no side buffer — triggered by demand L1 cache misses.  The
paper notes the algorithm "fits the chain access pattern of memory
addresses": sequential chains of lines and strided sweeps.

The engine keeps a small table of detected streams.  Each L1 demand-miss
line address is matched against the table; two misses with a consistent
line-stride confirm a stream, after which the engine emits ``degree``
prefetch line addresses running ``distance`` lines ahead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.params import PrefetchParams

#: Largest line-stride the detector will lock onto.
_MAX_STRIDE_LINES = 8


class _Stream:
    __slots__ = ("last_line", "stride", "confidence", "lru")

    def __init__(self) -> None:
        self.last_line = -1
        self.stride = 0
        self.confidence = 0
        self.lru = 0


@dataclass
class PrefetchStats:
    triggers: int = 0
    issued: int = 0
    streams_allocated: int = 0


class PrefetchEngine:
    """Stride/chain stream detector feeding the L2."""

    def __init__(self, params: PrefetchParams, line_bytes: int = 64) -> None:
        self.params = params
        self.line_bytes = line_bytes
        self._streams: List[_Stream] = [_Stream() for _ in range(params.streams)]
        self._clock = 0
        self.stats = PrefetchStats()

    def on_demand_miss(self, line_addr: int) -> List[int]:
        """Feed one demand-miss line address; returns prefetch line addrs."""
        if not self.params.enabled:
            return []
        self._clock += 1
        self.stats.triggers += 1
        line = line_addr // self.line_bytes

        # Two passes: a confirmed-stride continuation outranks seeding a
        # new stride on an unconfirmed entry, so noise misses that land
        # near a stream cannot steal it.
        matched: _Stream = None  # type: ignore[assignment]
        for stream in self._streams:
            if stream.last_line < 0 or stream.stride == 0:
                continue
            delta = line - stream.last_line
            if delta == 0:
                stream.lru = self._clock
                return []
            if delta == stream.stride:
                stream.confidence += 1
                stream.last_line = line
                stream.lru = self._clock
                matched = stream
                break
        if matched is None:
            for stream in self._streams:
                if stream.last_line < 0 or stream.stride != 0:
                    continue
                delta = line - stream.last_line
                if delta == 0:
                    stream.lru = self._clock
                    return []
                if abs(delta) <= _MAX_STRIDE_LINES:
                    stream.stride = delta
                    stream.confidence = 1
                    stream.last_line = line
                    stream.lru = self._clock
                    matched = stream
                    break

        if matched is None:
            # Pure LRU victim selection: entries of *finished* streams age
            # out naturally, while active streams are refreshed by every
            # line-miss.  (Protecting high-confidence entries instead
            # would let stale finished streams hog the table and starve
            # newly restarted streams of confirmation.)
            victim = min(self._streams, key=lambda stream: stream.lru)
            victim.last_line = line
            victim.stride = 0
            victim.confidence = 0
            victim.lru = self._clock
            self.stats.streams_allocated += 1
            return []

        if matched.confidence < self.params.confirmation_threshold:
            return []

        addresses = []
        for ahead in range(self.params.degree):
            prefetch_line = line + matched.stride * (self.params.distance + ahead)
            if prefetch_line >= 0:
                addresses.append(prefetch_line * self.line_bytes)
        self.stats.issued += len(addresses)
        return addresses
