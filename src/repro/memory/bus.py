"""Bus model with explicit occupancy and conflict accounting.

The paper (§2.1) calls out exactly what a system-level model must carry:
"a request queue, bus conflict, bandwidth, and latency."  This model
expresses all four with a busy-until reservation scheme: a transfer
requested while the bus is occupied queues behind the in-flight ones, and
the queueing delay is reported as conflict cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.params import BusParams


@dataclass
class TransferTiming:
    """Timing of one bus transfer."""

    #: Cycle the transfer actually started (>= request cycle when queued).
    start: int
    #: Cycle the payload is fully delivered.
    done: int
    #: Cycles spent waiting behind earlier transfers.
    queue_delay: int


class Bus:
    """A single-channel bus segment."""

    def __init__(self, params: BusParams) -> None:
        self.params = params
        self._busy_until = 0
        self.transfers = 0
        self.busy_cycles = 0
        self.conflict_cycles = 0
        self.bytes_moved = 0

    @property
    def busy_until(self) -> int:
        """Cycle at which the bus next becomes free."""
        return self._busy_until

    def transfer(self, cycle: int, payload_bytes: int) -> TransferTiming:
        """Reserve the bus for a transfer requested at ``cycle``."""
        start = max(cycle, self._busy_until)
        occupancy = self.params.occupancy(payload_bytes)
        self._busy_until = start + occupancy
        done = start + self.params.latency + occupancy
        queue_delay = start - cycle
        self.transfers += 1
        self.busy_cycles += occupancy
        self.conflict_cycles += queue_delay
        self.bytes_moved += payload_bytes
        return TransferTiming(start=start, done=done, queue_delay=queue_delay)

    def utilization(self, total_cycles: int) -> float:
        """Fraction of cycles the bus was moving data."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def reset(self) -> None:
        """Clear reservations and statistics."""
        self._busy_until = 0
        self.transfers = 0
        self.busy_cycles = 0
        self.conflict_cycles = 0
        self.bytes_moved = 0
