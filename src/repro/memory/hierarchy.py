"""The two-level cache hierarchy with its buses and memory back end.

This composes the component models into the SPARC64 V's memory system
(§3.3, §3.4): split 128 KB 2-way L1 caches (the operand side banked
8 × 4 B), a unified 2 MB 4-way on-chip L2, hardware prefetch into the L2,
ITLB/DTLB, an L1↔L2 interface, a system bus, and a multi-channel memory
controller.  Off-chip L2 configurations (§4.3.4) are expressed purely
through the L1↔L2 interface parameters (+10 ns ≈ 13 cycles, fewer pins ⇒
narrower data path).

Timing discipline: the tag arrays are updated at request time, while data
readiness is tracked by MSHR entries — the standard non-blocking-cache
approximation.  Requests to in-flight lines coalesce onto the existing
MSHR.  Buses and memory channels are busy-until resources, so bandwidth
saturation and queueing show up as real cycles.

For SMP operation a :attr:`coherence` object (see :mod:`repro.smp`) is
attached; L2 misses and write-upgrades are then routed through the
coherence domain, which may satisfy them by cache-to-cache "move-out"
transfers from another processor's L2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from repro.common.errors import ConfigError
from repro.memory.bus import Bus
from repro.memory.cache import LineState, SetAssociativeCache
from repro.memory.dram import MemoryController
from repro.memory.mshr import MshrFile
from repro.memory.params import (
    BusParams,
    CacheGeometry,
    MemoryParams,
    PrefetchParams,
    TlbGeometry,
)
from repro.memory.prefetch import PrefetchEngine
from repro.memory.tlb import Tlb


class CoherenceProtocolHook(Protocol):
    """Interface the SMP coherence domain presents to each hierarchy."""

    def fetch_line(self, cycle: int, cpu: int, line_addr: int, is_write: bool) -> "RemoteResult":
        """Resolve an L2 miss through the coherence domain."""

    def upgrade_line(self, cycle: int, cpu: int, line_addr: int) -> int:
        """Invalidate other copies for a write to a SHARED line; ready cycle."""


@dataclass
class RemoteResult:
    """Outcome of a coherence-domain line fetch."""

    ready_cycle: int
    #: True when another L2 supplied the line (move-out), else memory.
    from_cache: bool
    #: Install state for the requester.
    state: LineState


@dataclass
class AccessResult:
    """Outcome of one demand access into the hierarchy."""

    #: Cycle at which the data is usable by the core.
    ready_cycle: int
    #: Deepest level that serviced the request: "l1", "l2", "remote", "mem".
    level: str
    #: Extra cycles spent on a TLB walk (0 on TLB hit).
    tlb_cycles: int = 0

    @property
    def l1_hit(self) -> bool:
        return self.level == "l1"


class MemoryHierarchy:
    """One processor's complete memory system."""

    def __init__(
        self,
        l1i: CacheGeometry,
        l1d: CacheGeometry,
        l2: CacheGeometry,
        itlb: TlbGeometry,
        dtlb: TlbGeometry,
        l1_l2_bus: BusParams,
        system_bus: BusParams,
        memory: MemoryParams,
        prefetch: PrefetchParams,
        cpu: int = 0,
        shared_system_bus: Optional[Bus] = None,
        shared_memory: Optional[MemoryController] = None,
        perfect_l1: bool = False,
        perfect_l2: bool = False,
        perfect_tlb: bool = False,
    ) -> None:
        if l1i.line_bytes != l2.line_bytes or l1d.line_bytes != l2.line_bytes:
            raise ConfigError("L1/L2 line sizes must match")
        self.cpu = cpu
        self.l1i = SetAssociativeCache(l1i)
        self.l1d = SetAssociativeCache(l1d)
        self.l2 = SetAssociativeCache(l2)
        self.itlb = Tlb(itlb)
        self.dtlb = Tlb(dtlb)
        self.l1i_mshr = MshrFile(l1i.mshr_count)
        self.l1d_mshr = MshrFile(l1d.mshr_count)
        self.l2_mshr = MshrFile(l2.mshr_count)
        self.l1_l2_bus = Bus(l1_l2_bus)
        #: The system bus may be shared across CPUs in an SMP system.
        self.system_bus = shared_system_bus if shared_system_bus is not None else Bus(system_bus)
        self.memory = (
            shared_memory
            if shared_memory is not None
            else MemoryController(memory, line_bytes=l2.line_bytes)
        )
        self.prefetcher = PrefetchEngine(prefetch, line_bytes=l2.line_bytes)
        #: SMP hook; None for uniprocessor operation.
        self.coherence: Optional[CoherenceProtocolHook] = None
        self._line_bytes = l2.line_bytes
        # Attribution of in-flight L1 misses ("l2"/"remote"/"mem").
        self._pending_level: Dict[int, str] = {}
        # Perfect-structure switches used for Figure 7's stall attribution:
        # a perfect structure always hits at its normal hit latency.
        self.perfect_l1 = perfect_l1
        self.perfect_l2 = perfect_l2
        self.perfect_tlb = perfect_tlb

    # ------------------------------------------------------------------
    # Public demand-access API (used by the core).
    # ------------------------------------------------------------------

    def fetch(self, cycle: int, pc: int) -> AccessResult:
        """Instruction fetch of the line containing ``pc``."""
        if self.perfect_l1:
            return AccessResult(
                ready_cycle=cycle + self.l1i.geometry.hit_latency, level="l1"
            )
        tlb_cycles = 0 if self.perfect_tlb else self.itlb.translate(pc)
        start = cycle + tlb_cycles
        result = self._l1_access(
            start, pc, self.l1i, self.l1i_mshr, is_write=False, is_instruction=True
        )
        result.tlb_cycles = tlb_cycles
        return result

    def load(self, cycle: int, addr: int) -> AccessResult:
        """Data load."""
        if self.perfect_l1:
            return AccessResult(
                ready_cycle=cycle + self.l1d.geometry.hit_latency, level="l1"
            )
        tlb_cycles = 0 if self.perfect_tlb else self.dtlb.translate(addr)
        start = cycle + tlb_cycles
        result = self._l1_access(
            start, addr, self.l1d, self.l1d_mshr, is_write=False, is_instruction=False
        )
        result.tlb_cycles = tlb_cycles
        return result

    def store(self, cycle: int, addr: int) -> AccessResult:
        """Data store (write-allocate, copy-back)."""
        if self.perfect_l1:
            return AccessResult(
                ready_cycle=cycle + self.l1d.geometry.hit_latency, level="l1"
            )
        tlb_cycles = 0 if self.perfect_tlb else self.dtlb.translate(addr)
        start = cycle + tlb_cycles
        result = self._l1_access(
            start, addr, self.l1d, self.l1d_mshr, is_write=True, is_instruction=False
        )
        result.tlb_cycles = tlb_cycles
        return result

    def bank_of(self, addr: int) -> int:
        """L1 operand cache bank servicing ``addr`` (for port arbitration)."""
        return self.l1d.bank_of(addr)

    # ------------------------------------------------------------------
    # Functional-warming mode (no timing) and sampled-simulation resets.
    # ------------------------------------------------------------------

    def warm_fetch(self, pc: int, prefetch: bool = False) -> None:
        """Functionally touch the instruction-side structures for ``pc``.

        Tag/LRU/TLB state changes exactly as a timed fetch would change
        it, but no cycles pass: no MSHRs, buses or memory channels are
        reserved.  Fill decisions mirror the timed path.

        ``prefetch=True`` additionally trains the L2 prefetch engine on
        the miss stream and installs its prefetches (sampled simulation
        needs this: prefetched-ahead lines are part of steady-state L2
        contents, and windows are too short to re-detect streams).
        """
        self.itlb.translate(pc)
        if not self.l1i.lookup(pc):
            if prefetch:
                self._warm_prefetches(self.l1i.line_addr(pc))
            if not self.l2.lookup(pc):
                self.l2.fill(pc)
            self.l1i.fill(pc)

    def warm_data(self, addr: int, is_write: bool, prefetch: bool = False) -> None:
        """Functionally touch the data-side structures for ``addr``.

        Stores dirty their lines (MODIFIED install), loads install
        EXCLUSIVE — the same states the timed path uses.  ``prefetch``
        as in :meth:`warm_fetch`.
        """
        self.dtlb.translate(addr)
        if not self.l1d.lookup(addr, is_write=is_write):
            if prefetch:
                self._warm_prefetches(self.l1d.line_addr(addr))
            state = LineState.MODIFIED if is_write else LineState.EXCLUSIVE
            if not self.l2.lookup(addr, is_write=is_write):
                self.l2.fill(addr, state=state)
            self.l1d.fill(addr, state=state)

    def _warm_prefetches(self, line: int) -> None:
        """Train the prefetcher on a warm-mode L1 miss; install its lines.

        Installing matters as much as training: prefetched-ahead lines
        are part of steady-state L2 *contents*.  Without them a detailed
        window starts with demand misses saturating the L2 MSHRs, which
        drops every new prefetch — a self-sustaining prefetchless
        equilibrium the full run never visits.  The detailed-warmup
        prefix of each window then rebuilds realistic bus and memory
        pressure on top of this state.
        """
        for prefetch_addr in self.prefetcher.on_demand_miss(line):
            target = self.l2.line_addr(prefetch_addr)
            if self.l2.probe(target) is None:
                self.l2.fill(target, from_prefetch=True)

    def reset_timing(self) -> None:
        """Forget every busy-until reservation; keep cache/TLB contents.

        Sampled simulation restarts each detailed window at cycle 0 with
        micro-architectural *contents* carried over.  Outstanding MSHR
        fills, bus occupancy and memory-channel reservations are
        timestamps against the previous window's timeline and must be
        dropped, or they would stall the new window for its whole life.
        Not supported on SMP hierarchies, where the system bus and
        memory controller are shared with other cores mid-flight.
        """
        if self.coherence is not None:
            raise ConfigError("cannot reset timing on a coherent (SMP) hierarchy")
        self.l1i_mshr.clear()
        self.l1d_mshr.clear()
        self.l2_mshr.clear()
        self.l1_l2_bus.reset()
        self.system_bus.reset()
        self.memory.reset()
        self._pending_level.clear()

    # ------------------------------------------------------------------
    # L1 level.
    # ------------------------------------------------------------------

    def _l1_access(
        self,
        cycle: int,
        addr: int,
        cache: SetAssociativeCache,
        mshr: MshrFile,
        is_write: bool,
        is_instruction: bool,
    ) -> AccessResult:
        line = cache.line_addr(addr)
        hit_latency = cache.geometry.hit_latency

        # Coalesce onto an in-flight fill for this line.
        pending_ready = mshr.outstanding(line, cycle)
        if pending_ready is not None:
            cache.stats.demand_accesses += 1
            cache.stats.demand_misses += 1
            level = self._pending_level.get(line, "l2")
            return AccessResult(
                ready_cycle=max(pending_ready, cycle + hit_latency), level=level
            )

        if cache.lookup(addr, is_write=is_write):
            ready = cycle + hit_latency
            if is_write:
                self._note_l2_write_ownership(cycle, line)
            return AccessResult(ready_cycle=ready, level="l1")

        # L1 miss: trigger the L2 prefetcher on the demand-miss stream.
        prefetch_lines = self.prefetcher.on_demand_miss(line)

        # MSHR capacity: if full, the request waits for a free entry.
        issue_cycle = cycle
        if not mshr.can_allocate(issue_cycle):
            issue_cycle = max(issue_cycle, mshr.next_free_cycle())
            mshr.can_allocate(issue_cycle)

        l2_result = self._l2_access(
            issue_cycle + hit_latency, line, is_write=is_write, demand=True
        )
        # Data returns to the L1 over the L1<->L2 interface.
        transfer = self.l1_l2_bus.transfer(l2_result.ready_cycle, self._line_bytes)
        ready = transfer.done

        state = LineState.MODIFIED if is_write else LineState.EXCLUSIVE
        evicted = cache.fill(line, state=state)
        if evicted is not None and evicted.dirty:
            # Copy-back of the dirty victim into the L2.  The write is an
            # install, not a demand access: if the L2 has meanwhile evicted
            # the line (no back-invalidation is modelled), the victim
            # writeback re-allocates it.
            self.l1_l2_bus.transfer(issue_cycle, self._line_bytes)
            if self.l2.probe(evicted.line_addr) is not None:
                self.l2.downgrade(evicted.line_addr, LineState.MODIFIED)
            elif not self.perfect_l2:
                l2_victim = self.l2.fill(evicted.line_addr, state=LineState.MODIFIED)
                if l2_victim is not None and l2_victim.dirty:
                    self.system_bus.transfer(issue_cycle, self._line_bytes)

        mshr.allocate(line, ready, issue_cycle)
        self._pending_level[line] = l2_result.level
        if len(self._pending_level) > 4096:
            # Bound the map by evicting the oldest half (insertion order).
            # Old entries are almost always completed fills; clearing the
            # whole map would instead misattribute every still-in-flight
            # wait to the default "l2" level for a while.
            for stale in list(self._pending_level)[:2048]:
                del self._pending_level[stale]

        for prefetch_addr in prefetch_lines:
            self._issue_prefetch(issue_cycle, prefetch_addr)

        return AccessResult(ready_cycle=ready, level=l2_result.level)

    # ------------------------------------------------------------------
    # L2 level.
    # ------------------------------------------------------------------

    def _l2_access(
        self, cycle: int, line: int, is_write: bool, demand: bool
    ) -> AccessResult:
        hit_latency = self.l2.geometry.hit_latency
        if self.perfect_l2:
            if demand:
                self.l2.stats.demand_accesses += 1
            return AccessResult(ready_cycle=cycle + hit_latency, level="l2")

        pending_ready = self.l2_mshr.outstanding(line, cycle)
        if pending_ready is not None:
            if demand:
                self.l2.stats.demand_accesses += 1
                self.l2.stats.demand_misses += 1
            else:
                self.l2.stats.prefetch_accesses += 1
                self.l2.stats.prefetch_misses += 1
            return AccessResult(
                ready_cycle=max(pending_ready, cycle + hit_latency),
                level=self._pending_level.get(-line, "mem"),
            )

        if self.l2.lookup(line, is_write=is_write, prefetch=not demand):
            return AccessResult(ready_cycle=cycle + hit_latency, level="l2")

        # L2 miss.
        issue_cycle = cycle + hit_latency  # tag check before going out
        if not self.l2_mshr.can_allocate(issue_cycle):
            issue_cycle = max(issue_cycle, self.l2_mshr.next_free_cycle())
            self.l2_mshr.can_allocate(issue_cycle)

        if self.coherence is not None:
            remote = self.coherence.fetch_line(issue_cycle, self.cpu, line, is_write)
            ready = remote.ready_cycle
            level = "remote" if remote.from_cache else "mem"
            install_state = remote.state
        else:
            request = self.system_bus.transfer(issue_cycle, 8)  # command packet
            data_ready = self.memory.request(request.done, line)
            data = self.system_bus.transfer(data_ready, self._line_bytes)
            ready = data.done
            level = "mem"
            install_state = LineState.MODIFIED if is_write else LineState.EXCLUSIVE

        evicted = self.l2.fill(line, state=install_state, from_prefetch=not demand)
        if evicted is not None and evicted.dirty:
            self.system_bus.transfer(issue_cycle, self._line_bytes)

        self.l2_mshr.allocate(line, ready, issue_cycle)
        self._pending_level[-line] = level
        return AccessResult(ready_cycle=ready, level=level)

    def _issue_prefetch(self, cycle: int, line_addr: int) -> None:
        """Prefetch one line into the L2 (never into the L1)."""
        line = self.l2.line_addr(line_addr)
        if self.l2_mshr.outstanding(line, cycle) is not None:
            return
        if self.l2.probe(line) is not None:
            return
        if not self.l2_mshr.can_allocate(cycle):
            return  # prefetches are dropped under pressure, never stall
        self._l2_access(cycle, line, is_write=False, demand=False)

    def _note_l2_write_ownership(self, cycle: int, line: int) -> None:
        """Write hitting the L1 also dirties/ups the L2 copy (coherence)."""
        state = self.l2.probe(line)
        if state is None:
            return
        if state in (LineState.SHARED, LineState.OWNED) and self.coherence is not None:
            self.coherence.upgrade_line(cycle, self.cpu, line)
        self.l2.downgrade(line, LineState.MODIFIED)

    # ------------------------------------------------------------------
    # Snoop-side operations (called by the coherence domain).
    # ------------------------------------------------------------------

    def snoop_probe(self, line: int) -> Optional[LineState]:
        """State of ``line`` in this processor's L2 (no LRU update)."""
        return self.l2.probe(line)

    def snoop_downgrade(self, line: int, state: LineState) -> Optional[LineState]:
        """Downgrade/invalidate ``line`` in L2 and both L1s."""
        previous = self.l2.downgrade(line, state)
        if state == LineState.INVALID:
            self.l1d.invalidate(line)
            self.l1i.invalidate(line)
        elif state in (LineState.SHARED, LineState.OWNED):
            # L1 copies lose write permission.
            if self.l1d.probe(line) is not None:
                self.l1d.downgrade(line, LineState.SHARED)
        return previous
