"""Miss-status holding registers.

MSHRs are what make the SPARC64 V's caches *non-blocking* (§3.2, §3.3):
a miss allocates an entry and the cache keeps serving other requests.
Requests to a line that is already outstanding coalesce onto the existing
entry instead of issuing a second fill.

The file is timing-based: entries mature at a fill cycle and are lazily
reclaimed the next time capacity is checked at a later cycle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import SimulationError


class MshrFile:
    """A fixed-capacity set of outstanding line misses."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("MSHR capacity must be positive")
        self.capacity = capacity
        #: line address -> cycle at which the fill completes
        self._entries: Dict[int, int] = {}
        self.coalesced = 0
        self.allocations = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _reclaim(self, cycle: int) -> None:
        if not self._entries:
            return
        matured = [line for line, ready in self._entries.items() if ready <= cycle]
        for line in matured:
            del self._entries[line]

    def outstanding(self, line_addr: int, cycle: int) -> Optional[int]:
        """If a fill for this line is in flight at ``cycle``, its ready cycle."""
        ready = self._entries.get(line_addr)
        if ready is not None and ready > cycle:
            self.coalesced += 1
            return ready
        return None

    def can_allocate(self, cycle: int) -> bool:
        """True if an entry is free at ``cycle`` (reclaims matured entries)."""
        self._reclaim(cycle)
        if len(self._entries) >= self.capacity:
            self.full_stalls += 1
            return False
        return True

    def next_free_cycle(self) -> int:
        """Earliest cycle at which an entry will free up (file is full)."""
        if not self._entries:
            return 0
        return min(self._entries.values())

    def clear(self) -> None:
        """Drop every outstanding entry (keeps the counters).

        Used when the clock is rewound between sampled-simulation
        windows: ready cycles recorded against the old timeline would
        otherwise pin lines "in flight" for most of the next window.
        """
        self._entries.clear()

    def allocate(self, line_addr: int, ready_cycle: int, cycle: int) -> None:
        """Record a new outstanding fill; caller must have checked capacity."""
        self._reclaim(cycle)
        if len(self._entries) >= self.capacity:
            raise SimulationError("MSHR allocate without capacity check")
        self._entries[line_addr] = ready_cycle
        self.allocations += 1
