"""Parameter dataclasses for the memory system.

These are deliberately separate from :mod:`repro.model.config` (which
composes them into full machine configurations) so the memory components
can be built and unit-tested standalone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry and access timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    #: Load-to-use latency of a hit, in cycles.
    hit_latency: int = 3
    #: Cycles the cache's request port is occupied per access (throughput).
    port_occupancy: int = 1
    #: Number of independent request ports.
    ports: int = 1
    #: Miss-status holding registers (outstanding line misses).
    mshr_count: int = 8
    #: Number of interleaved data banks (L1 operand cache: 8 × 4 B).
    banks: int = 1
    bank_bytes: int = 4
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"{self.name}: size/ways/line must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line_bytes must be a power of two")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if not is_power_of_two(sets):
            raise ConfigError(f"{self.name}: set count {sets} must be a power of two")
        if self.hit_latency < 1 or self.port_occupancy < 1:
            raise ConfigError(f"{self.name}: latencies must be >= 1")
        if self.mshr_count < 1:
            raise ConfigError(f"{self.name}: need at least one MSHR")
        if self.banks < 1 or not is_power_of_two(self.banks):
            raise ConfigError(f"{self.name}: banks must be a positive power of two")

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.ways * self.line_bytes)

    def scaled(self, **changes) -> "CacheGeometry":
        """Copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TlbGeometry:
    """Geometry of a translation look-aside buffer."""

    name: str
    entries: int = 512
    ways: int = 4
    page_bytes: int = 8192
    #: Fixed hardware-walk penalty on a TLB miss, in cycles.
    miss_penalty: int = 60

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ConfigError(f"{self.name}: entries/ways must be positive")
        if self.entries % self.ways != 0:
            raise ConfigError(f"{self.name}: entries must divide evenly into ways")
        if not is_power_of_two(self.entries // self.ways):
            raise ConfigError(f"{self.name}: TLB set count must be a power of two")
        if not is_power_of_two(self.page_bytes):
            raise ConfigError(f"{self.name}: page size must be a power of two")


@dataclass(frozen=True)
class BusParams:
    """One bus/interconnect segment with latency and bandwidth."""

    name: str
    #: Transfer setup latency in cycles (request to first data).
    latency: int = 4
    #: Payload bytes moved per cycle once the transfer starts.
    bytes_per_cycle: int = 16

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError(f"{self.name}: latency must be >= 0")
        if self.bytes_per_cycle <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")

    def occupancy(self, payload_bytes: int) -> int:
        """Bus-busy cycles for one transfer of ``payload_bytes``."""
        return max(1, (payload_bytes + self.bytes_per_cycle - 1) // self.bytes_per_cycle)


@dataclass(frozen=True)
class MemoryParams:
    """Main-memory (DRAM + controller) timing."""

    #: Controller + DRAM access latency in cycles (row activation etc.).
    latency: int = 260
    #: Independent controller channels (parallel requests).
    channels: int = 2
    #: Per-channel occupancy per line transfer, in cycles.
    channel_occupancy: int = 16

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.channels <= 0 or self.channel_occupancy <= 0:
            raise ConfigError("memory parameters must be positive")


@dataclass(frozen=True)
class PrefetchParams:
    """L2 hardware-prefetch engine parameters (§3.4).

    The SPARC64 V prefetches into the L2 only, triggered by demand L1
    misses, with no extra pipeline stages and no side buffer.  The engine
    watches the miss stream for sequential line chains and strided streams
    and issues ``degree`` line fetches ``distance`` lines ahead.
    """

    enabled: bool = True
    #: Number of stream-detection table entries.
    streams: int = 32
    #: Lines fetched ahead once a stream is confirmed.
    degree: int = 2
    #: How far ahead (in lines) the prefetch runs.
    distance: int = 2
    #: Misses to the same stream needed before prefetching starts.
    confirmation_threshold: int = 2

    def __post_init__(self) -> None:
        if self.streams <= 0 or self.degree <= 0 or self.distance <= 0:
            raise ConfigError("prefetch parameters must be positive")
        if self.confirmation_threshold < 1:
            raise ConfigError("confirmation_threshold must be >= 1")
