"""TLB model.

Set-associative translation cache.  A miss costs a fixed hardware-walk
penalty (the SPARC64 V walks the TSB in hardware); the walk's own memory
traffic is folded into the penalty, which is how the paper's model treats
it (TLB stalls appear combined with L1 miss stalls in Figure 7's
"ibs/tlb" category).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.params import TlbGeometry


@dataclass
class TlbStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class _TlbEntry:
    __slots__ = ("tag", "valid", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.lru = 0


class Tlb:
    """A set-associative TLB with true LRU."""

    def __init__(self, geometry: TlbGeometry) -> None:
        self.geometry = geometry
        sets = geometry.entries // geometry.ways
        self._sets: List[List[_TlbEntry]] = [
            [_TlbEntry() for _ in range(geometry.ways)] for _ in range(sets)
        ]
        self._set_mask = sets - 1
        self._page_shift = geometry.page_bytes.bit_length() - 1
        self._clock = 0
        self.stats = TlbStats()

    def translate(self, addr: int) -> int:
        """Look up the page of ``addr``; returns extra cycles (0 on hit)."""
        page = addr >> self._page_shift
        index = page & self._set_mask
        self._clock += 1
        self.stats.accesses += 1
        bucket = self._sets[index]
        for entry in bucket:
            if entry.valid and entry.tag == page:
                entry.lru = self._clock
                return 0
        # Miss: walk, then install with LRU replacement.
        self.stats.misses += 1
        victim = None
        for entry in bucket:
            if not entry.valid:
                victim = entry
                break
        if victim is None:
            victim = min(bucket, key=lambda entry: entry.lru)
        victim.tag = page
        victim.valid = True
        victim.lru = self._clock
        return self.geometry.miss_penalty

    def flush(self) -> None:
        """Invalidate all entries (context switch)."""
        for bucket in self._sets:
            for entry in bucket:
                entry.valid = False
