"""Detailed memory-system model.

The paper's central methodological claim is that a performance model for
enterprise-server design must pair the detailed processor model with an
*equally detailed* memory-system model — request queues, bus conflicts,
bandwidth, latency, and cache protocol all modelled "with the same
concepts as those of actual systems" (§2.1).  This package implements
that: set-associative non-blocking caches with MSHRs, the 8-banked L1
operand cache, the unified on-chip (or off-chip) L2, hardware prefetching,
TLBs, and the bus/memory-controller back end with explicit occupancy and
queueing.
"""

from repro.memory.params import (
    BusParams,
    CacheGeometry,
    MemoryParams,
    PrefetchParams,
    TlbGeometry,
)
from repro.memory.cache import CacheStats, LineState, SetAssociativeCache
from repro.memory.mshr import MshrFile
from repro.memory.bus import Bus
from repro.memory.dram import MemoryController
from repro.memory.tlb import Tlb
from repro.memory.prefetch import PrefetchEngine
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "CacheGeometry",
    "TlbGeometry",
    "BusParams",
    "MemoryParams",
    "PrefetchParams",
    "SetAssociativeCache",
    "CacheStats",
    "LineState",
    "MshrFile",
    "Bus",
    "MemoryController",
    "Tlb",
    "PrefetchEngine",
    "MemoryHierarchy",
    "AccessResult",
]
