"""Main-memory model: a multi-channel controller with fixed device latency.

Requests are spread over channels by line address; each channel is a
busy-until resource, so a burst of misses to one channel queues while
other channels stay available — the bandwidth behaviour that makes the
TPC-C 16P experiments sensitive to memory-system balance.
"""

from __future__ import annotations

from typing import List

from repro.memory.params import MemoryParams


class MemoryController:
    """DRAM + controller timing."""

    def __init__(self, params: MemoryParams, line_bytes: int = 64) -> None:
        self.params = params
        self.line_bytes = line_bytes
        self._channel_busy: List[int] = [0] * params.channels
        self.requests = 0
        self.queue_cycles = 0

    def request(self, cycle: int, line_addr: int) -> int:
        """Issue a line read/write; returns the data-ready cycle."""
        channel = (line_addr // self.line_bytes) % self.params.channels
        start = max(cycle, self._channel_busy[channel])
        self._channel_busy[channel] = start + self.params.channel_occupancy
        self.requests += 1
        self.queue_cycles += start - cycle
        return start + self.params.latency

    def reset(self) -> None:
        """Clear reservations and statistics."""
        self._channel_busy = [0] * self.params.channels
        self.requests = 0
        self.queue_cycles = 0
