"""Durable, lease-based job queue for the campaign service.

The queue is an *event-sourced* append-only JSONL journal: every state
transition — submit, claim, lease renewal, requeue, completion, failure,
shed — is one fsync'd line, and the in-memory job table is a pure fold
over those lines.  That single decision buys the robustness properties
the service advertises:

- **crash recovery** — a killed service replays the journal and sees
  exactly which jobs were pending, running (with what lease), done, or
  dead; nothing is lost, nothing is double-counted;
- **lease-based claims** — a claim grants a time-bounded lease
  (wall-clock, so it stays meaningful across restarts).  Leases are
  renewed by heartbeats; :meth:`expire_leases` requeues any job whose
  lease lapsed, so a killed or hung worker never strands a job;
- **single-flight dedup** — jobs are keyed by result-cache content
  hash; a duplicate submission increments a waiter count on the
  existing job instead of creating a second one.  N submissions of the
  same sweep point trigger exactly one simulation;
- **bounded backlog** — an optional capacity sheds load explicitly
  (:class:`~repro.common.errors.QueueFull` for local submitters, a
  journaled ``shed`` event for foreign ones) instead of growing without
  bound;
- **multi-process submission** — the journal is opened ``O_APPEND`` and
  records are single-``write`` ``\\n``-terminated lines, so independent
  ``repro submit`` processes append concurrently at line granularity;
  the serving process picks their records up with :meth:`poll` (events
  it wrote itself are tagged with a per-instance ``src`` id and
  skipped).

Torn final lines (a writer crash) are sealed and dropped exactly like
:class:`~repro.analysis.campaign.CampaignManifest` does, and a journal
written by a different simulator version is quarantined (``*.stale``)
because its content-hash keys are unreachable anyway.

The queue never runs simulations itself; result payloads live in the
content-addressed :class:`~repro.analysis.cache.ResultCache`, keeping
the journal small enough to replay in milliseconds.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common import faults
from repro.common.errors import QueueFull, ServiceError
from repro.common.hashing import code_version

#: Journal header format version; bump when the record layout changes.
JOURNAL_FORMAT = 1

#: Job states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
DEAD = "dead"
STATES = (PENDING, RUNNING, DONE, DEAD)


@dataclass
class Job:
    """One queued simulation point (see :mod:`repro.service.jobs`)."""

    key: str
    kind: str
    spec: dict
    label: str
    state: str = PENDING
    #: Charged failures so far (attempt number of the *next* run).
    attempts: int = 0
    #: Total submissions seen; ``submissions - 1`` were deduplicated.
    submissions: int = 1
    worker: Optional[str] = None
    #: Wall-clock lease deadline while RUNNING (time.time seconds).
    lease_deadline: Optional[float] = None
    #: Earliest wall-clock time the job may be claimed (retry backoff).
    not_before: float = 0.0
    error: str = ""
    #: "run" for a fresh simulation, "cache" for a store hit.
    source: str = ""


@dataclass
class QueueStats:
    """Counters over the whole journal history (survive restarts)."""

    submitted: int = 0
    deduped: int = 0
    shed: int = 0
    claims: int = 0
    duplicate_deliveries: int = 0
    completions: int = 0
    duplicate_completions: int = 0
    failures: int = 0
    requeues: int = 0
    lease_expiries: int = 0
    recovered_drops: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class JobQueue:
    """Append-only JSONL journal + in-memory job table."""

    def __init__(
        self,
        path: Union[str, Path],
        lease_seconds: float = 30.0,
        capacity: Optional[int] = None,
        code_hash: Optional[str] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ServiceError("lease_seconds must be positive")
        if capacity is not None and capacity < 1:
            raise ServiceError("capacity must be >= 1 (or None for unbounded)")
        self.path = Path(path)
        self.lease_seconds = float(lease_seconds)
        self.capacity = capacity
        self.code_hash = code_hash or code_version()
        self.jobs: Dict[str, Job] = {}
        #: Submission order; claim scans it FIFO.
        self._order: List[str] = []
        self.stats = QueueStats()
        #: True when this instance resumed a non-empty journal.
        self.resumed = False
        self._src = uuid.uuid4().hex[:8]
        self._handle = None
        #: Byte offset up to which the journal has been consumed.
        self._offset = 0
        #: Partial final line carried between polls (a writer mid-append).
        self._tail = ""
        self._replay()

    # -- load / replay ---------------------------------------------------

    def _quarantine(self, reason: str) -> None:
        stale = self.path.with_suffix(self.path.suffix + ".stale")
        try:
            os.replace(self.path, stale)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        self.jobs = {}
        self._order = []
        self._offset = 0
        self._tail = ""

    def _replay(self) -> None:
        """Validate the header, then fold every event into the table."""
        if not self.path.exists():
            return
        try:
            with open(self.path, "rb") as handle:
                head = handle.readline()
        except OSError:
            self._quarantine("unreadable")
            return
        if not head.endswith(b"\n"):
            # No complete header: an empty or crashed-at-birth journal.
            self._quarantine("headerless")
            return
        try:
            header = json.loads(head.decode("utf-8"))
            if header.get("service") != JOURNAL_FORMAT:
                raise ValueError("format mismatch")
        except (ValueError, AttributeError, UnicodeDecodeError):
            self._quarantine("unrecognised header")
            return
        if header.get("code") != self.code_hash:
            # The simulator changed: every key in this journal points at
            # unreachable cache entries, so the bookkeeping is moot.
            self._quarantine(
                f"written by code version {header.get('code')!r}, "
                f"current is {self.code_hash!r}"
            )
            return
        self._offset = len(head)
        applied = self.poll(_replaying=True)
        self.resumed = applied > 0

    def poll(self, _replaying: bool = False) -> int:
        """Consume journal lines appended since the last poll.

        Applies events written by *other* processes (submitters, a
        previous service incarnation); events this instance wrote are
        already applied at append time and are skipped by their ``src``
        tag.  A partial final line — some writer caught mid-append — is
        carried over and completed by a later poll, so no record is ever
        split in half.  Returns the number of events applied.
        """
        if not self.path.exists():
            return 0
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        self._offset += len(chunk)
        text = self._tail + chunk.decode("utf-8", errors="replace")
        lines = text.split("\n")
        self._tail = lines.pop()  # "" when the chunk ended on a newline
        applied = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.stats.recovered_drops += 1
                continue
            if not isinstance(record, dict) or "ev" not in record:
                if isinstance(record, dict) and "service" in record:
                    continue  # duplicate header from a racing fresh writer
                self.stats.recovered_drops += 1
                continue
            if not _replaying and record.get("src") == self._src:
                continue
            self._apply(record)
            applied += 1
        return applied

    # -- event fold ------------------------------------------------------

    def _apply(self, record: dict) -> None:
        event = record.get("ev")
        key = str(record.get("job", ""))
        if event == "submit":
            job = self.jobs.get(key)
            self.stats.submitted += 1
            if job is not None:
                job.submissions += 1
                self.stats.deduped += 1
                return
            self.jobs[key] = Job(
                key=key,
                kind=str(record.get("kind", "up")),
                spec=record.get("spec") or {},
                label=str(record.get("label", key)),
            )
            self._order.append(key)
            return
        job = self.jobs.get(key)
        if event == "shed":
            self.stats.shed += 1
            if job is not None:
                self.jobs.pop(key, None)
                try:
                    self._order.remove(key)
                except ValueError:
                    pass
            return
        if job is None:
            # An event for a job this journal never submitted (foreign
            # garbage or a sheared record): count and move on.
            self.stats.recovered_drops += 1
            return
        if event == "claim":
            self.stats.claims += 1
            if record.get("dup"):
                self.stats.duplicate_deliveries += 1
            job.state = RUNNING
            job.worker = str(record.get("worker", ""))
            job.lease_deadline = float(record.get("lease", 0.0))
        elif event == "renew":
            job.lease_deadline = float(record.get("lease", 0.0))
        elif event == "requeue":
            self.stats.requeues += 1
            if record.get("reason") == "lease-expired":
                self.stats.lease_expiries += 1
            job.state = PENDING
            job.worker = None
            job.lease_deadline = None
        elif event == "done":
            if job.state == DONE:
                self.stats.duplicate_completions += 1
                return
            self.stats.completions += 1
            job.state = DONE
            job.worker = str(record.get("worker", ""))
            job.source = str(record.get("source", "run"))
            job.lease_deadline = None
            job.error = ""
        elif event == "fail":
            self.stats.failures += 1
            job.attempts = int(record.get("attempts", job.attempts + 1))
            job.error = str(record.get("error", ""))
            job.worker = None
            job.lease_deadline = None
            if record.get("requeue"):
                job.state = PENDING
                job.not_before = float(record.get("not_before", 0.0))
            else:
                job.state = DEAD
        else:
            self.stats.recovered_drops += 1

    # -- append ----------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            torn_tail = False
            if not fresh:
                with open(self.path, "rb") as peek:
                    peek.seek(-1, os.SEEK_END)
                    torn_tail = peek.read(1) != b"\n"
            self._handle = open(self.path, "a", encoding="utf-8")
            if torn_tail:
                # Seal a torn final line (writer crash) so our record
                # starts cleanly; the torn line is dropped on load.
                self._handle.write("\n")
            if fresh:
                self._raw_line(
                    {"service": JOURNAL_FORMAT, "code": self.code_hash},
                    sync=True,
                )
        return self._handle

    def _raw_line(self, record: dict, sync: bool) -> None:
        handle = self._handle
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        if sync:
            os.fsync(handle.fileno())

    def _append(self, record: dict, sync: bool = True) -> None:
        self._open()
        record = dict(record)
        record["src"] = self._src
        self._raw_line(record, sync=sync)
        self._apply(record)

    # -- operations ------------------------------------------------------

    def pending_count(self, now: Optional[float] = None) -> int:
        return sum(1 for job in self.jobs.values() if job.state == PENDING)

    def claimable(self, now: Optional[float] = None) -> bool:
        """Any pending job whose backoff gate has opened?"""
        now = time.time() if now is None else now
        return any(
            job.state == PENDING and job.not_before <= now
            for job in self.jobs.values()
        )

    def drained(self) -> bool:
        """Every known job reached a terminal state (done or dead)."""
        return all(job.state in (DONE, DEAD) for job in self.jobs.values())

    def submit(self, kind: str, spec: dict, label: str, key: str) -> Job:
        """Enqueue (or single-flight onto) the job identified by ``key``.

        Raises :class:`QueueFull` when the backlog is at capacity and
        ``key`` is not already known — explicit load shedding.
        """
        existing = self.jobs.get(key)
        if (
            existing is None
            and self.capacity is not None
            and self.pending_count() >= self.capacity
        ):
            raise QueueFull(
                f"queue at capacity ({self.capacity} pending); shed {label}"
            )
        self._append(
            {
                "ev": "submit",
                "job": key,
                "kind": kind,
                "label": label,
                "spec": spec,
                "t": time.time(),
            }
        )
        return self.jobs[key]

    def enforce_capacity(self) -> List[str]:
        """Shed newest pending jobs beyond capacity (foreign submits).

        Local submits are refused up-front with :class:`QueueFull`, but
        a ``repro submit`` in another process has already journaled its
        record by the time :meth:`poll` sees it; the service calls this
        after polling to shed the overflow explicitly (journaled, so a
        replay reaches the same state).  Returns the shed keys.
        """
        if self.capacity is None:
            return []
        pending = [key for key in self._order if self.jobs[key].state == PENDING]
        shed = []
        while len(pending) > self.capacity:
            key = pending.pop()  # newest first: earlier submits keep their spot
            self._append({"ev": "shed", "job": key})
            shed.append(key)
        return shed

    def claim(self, worker: str, now: Optional[float] = None) -> Optional[Job]:
        """Claim the oldest ready job under a fresh lease, if any.

        Under an injected ``duplicate-delivery`` fault this may instead
        hand out a job that is *already running* — the at-least-once
        delivery case a distributed queue can always hit; completion
        idempotency (and content-addressed stores) make it harmless.
        """
        now = time.time() if now is None else now
        running = [
            key for key in self._order if self.jobs[key].state == RUNNING
        ]
        if running and faults.duplicate_delivery(self.jobs[running[0]].label):
            job = self.jobs[running[0]]
            self._append(
                {
                    "ev": "claim",
                    "job": job.key,
                    "worker": worker,
                    "lease": now + self.lease_seconds,
                    "dup": True,
                }
            )
            return job
        for key in self._order:
            job = self.jobs[key]
            if job.state != PENDING or job.not_before > now:
                continue
            self._append(
                {
                    "ev": "claim",
                    "job": key,
                    "worker": worker,
                    "lease": now + self.lease_seconds,
                }
            )
            return job
        return None

    def heartbeat(
        self, key: str, now: Optional[float] = None, force: bool = False
    ) -> bool:
        """Renew a running job's lease; False when the renewal was lost.

        Renewals are journaled flush-only (no fsync — losing one to a
        power cut merely expires a lease early, which the requeue path
        already handles) and skipped while the lease is still young,
        keeping journal noise proportional to lease length rather than
        scheduler tick rate.  The ``heartbeat-stall`` fault swallows the
        renewal entirely, modelling a worker partitioned from the
        coordinator.
        """
        job = self.jobs.get(key)
        if job is None or job.state != RUNNING:
            return False
        if faults.stall_heartbeat(job.label):
            return False
        now = time.time() if now is None else now
        deadline = job.lease_deadline or 0.0
        if not force and deadline - now > self.lease_seconds / 2:
            return True  # lease still fresh; don't spam the journal
        self._append(
            {"ev": "renew", "job": key, "lease": now + self.lease_seconds},
            sync=False,
        )
        return True

    def expire_leases(self, now: Optional[float] = None) -> List[str]:
        """Requeue every running job whose lease lapsed (or was forced
        to by an injected ``lease-expiry`` fault).  Returns their keys."""
        now = time.time() if now is None else now
        expired = []
        for key in self._order:
            job = self.jobs[key]
            if job.state != RUNNING:
                continue
            lapsed = job.lease_deadline is not None and job.lease_deadline <= now
            if lapsed or faults.lease_expired(job.label):
                self._append(
                    {"ev": "requeue", "job": key, "reason": "lease-expired"}
                )
                expired.append(key)
        return expired

    def release(self, key: str, reason: str) -> None:
        """Return a running job to pending *without* charging an attempt
        (e.g. collateral of a worker-pool restart)."""
        job = self.jobs.get(key)
        if job is not None and job.state == RUNNING:
            self._append({"ev": "requeue", "job": key, "reason": reason})

    def reopen(self, key: str, reason: str) -> None:
        """Put a finished job back to pending (its stored result was
        found unreadable after completion — recompute it)."""
        job = self.jobs.get(key)
        if job is not None and job.state in (DONE, DEAD):
            self._append({"ev": "requeue", "job": key, "reason": reason})

    def complete(self, key: str, worker: str, source: str = "run") -> bool:
        """Mark a job done (idempotent: a second completion is a no-op).

        Duplicate completions are the signature of duplicate delivery or
        an orphaned worker finishing after its lease expired; the result
        store is content-addressed, so the late write is bit-identical
        and only the first completion is counted.
        """
        job = self.jobs.get(key)
        if job is None:
            raise ServiceError(f"complete() for unknown job {key!r}")
        if job.state == DONE:
            self.stats.duplicate_completions += 1
            return False
        self._append(
            {"ev": "done", "job": key, "worker": worker, "source": source}
        )
        return True

    def fail(
        self,
        key: str,
        worker: str,
        error: object,
        retries: int,
        not_before: float = 0.0,
    ) -> str:
        """Charge a failed attempt; requeue within budget, else dead.

        Returns ``"requeued"`` or ``"dead"``.  ``not_before`` gates the
        next claim (deterministic backoff computed by the caller).
        """
        job = self.jobs.get(key)
        if job is None:
            raise ServiceError(f"fail() for unknown job {key!r}")
        attempts = job.attempts + 1
        requeue = attempts <= retries
        self._append(
            {
                "ev": "fail",
                "job": key,
                "worker": worker,
                "attempts": attempts,
                "error": str(error)[:200],
                "requeue": requeue,
                "not_before": not_before,
            }
        )
        return "requeued" if requeue else "dead"

    # -- inspection ------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        tally = {state: 0 for state in STATES}
        for job in self.jobs.values():
            tally[job.state] += 1
        return tally

    def summary(self) -> str:
        counts = self.counts()
        stats = self.stats
        parts = [
            f"{counts[PENDING]} pending",
            f"{counts[RUNNING]} running",
            f"{counts[DONE]} done",
            f"{counts[DEAD]} dead",
            f"submitted {stats.submitted}",
            f"dedup {stats.deduped}",
        ]
        if stats.shed:
            parts.append(f"shed {stats.shed}")
        if stats.requeues:
            parts.append(f"requeues {stats.requeues}")
        if stats.lease_expiries:
            parts.append(f"lease expiries {stats.lease_expiries}")
        if stats.duplicate_deliveries:
            parts.append(f"duplicate deliveries {stats.duplicate_deliveries}")
        if stats.duplicate_completions:
            parts.append(f"duplicate completions {stats.duplicate_completions}")
        if stats.recovered_drops:
            parts.append(f"{stats.recovered_drops} torn line(s) dropped")
        return f"queue {self.path}: " + ", ".join(parts)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
