"""Resilient campaign service: durable queue, leases, single-flight.

Public surface:

- :func:`~repro.service.jobs.make_spec` / :func:`~repro.service.jobs.spec_key`
  / :func:`~repro.service.jobs.spec_label` /
  :func:`~repro.service.jobs.execute_spec` — the JSON job-spec contract;
- :class:`~repro.service.queue.JobQueue` — append-only journal with
  time-bounded leases, dedup, and explicit load shedding;
- :class:`~repro.service.service.CampaignService` — the scheduler that
  drives claimed jobs through a worker pool into the result cache.
"""

from repro.service.jobs import (
    execute_spec,
    make_spec,
    spec_config,
    spec_key,
    spec_label,
    spec_workload,
)
from repro.service.queue import Job, JobQueue, QueueStats
from repro.service.service import CampaignService, ServiceStats

__all__ = [
    "CampaignService",
    "Job",
    "JobQueue",
    "QueueStats",
    "ServiceStats",
    "execute_spec",
    "make_spec",
    "spec_config",
    "spec_key",
    "spec_label",
    "spec_workload",
]
