"""Crash-safe campaign service: durable queue + worker pool + store.

:class:`CampaignService` is the coordinator that turns the durable
:class:`~repro.service.queue.JobQueue`, the process pool patterns of
:class:`~repro.analysis.runner.ParallelRunner`, and the atomic
:class:`~repro.analysis.cache.ResultCache` into a resilient campaign
executor:

- **submit** — (config, workload[, cpus]) points enter the queue keyed
  by result-cache content hash; duplicates single-flight, cached points
  complete instantly without touching the pool;
- **serve** — a scheduler loop claims jobs under time-bounded leases,
  fans them out over worker processes, and renews each lease while its
  worker is making progress.  A worker that dies (``BrokenExecutor``),
  raises, or exceeds the policy timeout is charged one attempt and the
  job requeued with deterministic backoff — exactly the
  :class:`~repro.analysis.policy.RunPolicy` semantics sweeps use;
- **orphans** — a job whose lease expires while its worker is *still
  running* (injected expiry, stalled heartbeats, a slow machine) is
  requeued immediately; if the orphaned worker finishes anyway its
  result is accepted idempotently (content-addressed store + idempotent
  completion make the duplicate harmless);
- **crash recovery** — kill the service at any instant and a new
  instance replays the journal: done jobs stay done, running jobs'
  leases lapse and requeue, and the campaign completes bit-identical to
  a fault-free serial run (``tests/test_service_chaos.py`` proves it);
- **graceful degradation** — bounded queues shed load explicitly, a
  result that lands unreadable is recomputed, and :meth:`result` serves
  a stale in-memory copy when the store goes unreadable under it.

Workers write results straight into the shared result cache (atomic
temp-file + ``os.replace`` + fsync), so the journal stays tiny and a
result is visible if and only if its bytes are complete.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.cache import ResultCache
from repro.analysis.policy import RunPolicy
from repro.common import faults
from repro.common.errors import ExperimentError, QueueFull, ServiceError
from repro.service.jobs import (
    execute_spec,
    make_spec,
    spec_key,
    spec_label,
)
from repro.service.queue import DONE, JobQueue, PENDING


def _service_worker(
    spec: dict, attempt: int, cache_dir: Optional[str]
) -> Tuple[str, int, float]:
    """Pool worker: simulate one job spec and store the result.

    Returns ``(cache key, worker pid, seconds)``.  The payload itself
    travels through the content-addressed store, not the future — the
    coordinator re-reads it, which doubles as an end-to-end check that
    the bytes actually landed.  ``attempt_scope`` lets store-side fault
    sites (kill-mid-write, store-corrupt) honour their ``times=`` budget
    against the *retry attempt* even though each attempt may run in a
    different worker process.
    """
    faults.worker_fault(spec_label(spec), attempt)
    started = time.perf_counter()
    with faults.attempt_scope(attempt):
        payload, meta = execute_spec(spec)
        cache = ResultCache(cache_dir)
        key = spec_key(spec, cache)
        cache.store(key, payload, meta=meta)
    return key, os.getpid(), time.perf_counter() - started


@dataclass
class _Flight:
    """One dispatched (job, attempt) pair tracked by the scheduler."""

    key: str
    label: str
    spec: dict
    attempt: int
    started: float  # time.monotonic at dispatch


@dataclass
class ServiceStats:
    """Observability counters for one service instance."""

    dispatched: int = 0
    cache_hits: int = 0
    stale_serves: int = 0
    orphan_completions: int = 0
    in_process_fallbacks: int = 0
    pool_restarts: int = 0
    timeouts: int = 0
    skipped: List[str] = field(default_factory=list)
    #: Seconds from first failure/expiry of a job to its completion.
    recovery_seconds: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "dispatched": self.dispatched,
            "cache_hits": self.cache_hits,
            "stale_serves": self.stale_serves,
            "orphan_completions": self.orphan_completions,
            "in_process_fallbacks": self.in_process_fallbacks,
            "pool_restarts": self.pool_restarts,
            "timeouts": self.timeouts,
            "skipped": list(self.skipped),
            "recovery_seconds": [round(s, 3) for s in self.recovery_seconds],
        }


class CampaignService:
    """Lease-based campaign executor over a durable job queue."""

    def __init__(
        self,
        queue_path: Union[str, Path],
        cache_dir: Optional[str] = None,
        jobs: int = 2,
        lease_seconds: float = 30.0,
        capacity: Optional[int] = None,
        policy: Optional[RunPolicy] = None,
        verbose: bool = False,
        poll_interval: float = 0.2,
    ) -> None:
        if jobs < 1:
            raise ServiceError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir)
        self._cache_dir = str(self.cache.directory)
        self.queue = JobQueue(
            queue_path, lease_seconds=lease_seconds, capacity=capacity
        )
        self.policy = policy or RunPolicy()
        self.verbose = verbose
        self.poll_interval = poll_interval
        self.stats = ServiceStats()
        self.worker_id = f"svc-{os.getpid()}"
        self._executor: Optional[ProcessPoolExecutor] = None
        #: future -> flight for leased, in-flight work.
        self._inflight: Dict[object, _Flight] = {}
        #: future -> flight for work whose lease already expired.
        self._orphans: Dict[object, _Flight] = {}
        #: job key -> monotonic instant of its first failure/expiry.
        self._fail_at: Dict[str, float] = {}
        #: Bounded memory of served payloads, for serve-stale fallback.
        self._stale: Dict[str, dict] = {}
        self._stale_limit = 64

    # -- logging ---------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.verbose:
            print(message)

    # -- pool ------------------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _discard_pool(self) -> bool:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            return True
        return False

    def _kill_pool(self) -> None:
        """Hard-kill every worker (a hung worker cannot be cancelled)."""
        executor = self._executor
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 - already-dead workers
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None
        self.stats.pool_restarts += 1

    # -- submission ------------------------------------------------------

    def submit_point(
        self,
        workload: str,
        config: str = "base",
        cpus: Optional[int] = None,
        **spec_kwargs,
    ) -> str:
        """Validate, build, and submit one sweep point; returns its key."""
        spec = make_spec(workload, config=config, cpus=cpus, **spec_kwargs)
        return self.submit_spec(spec)

    def submit_spec(self, spec: dict) -> str:
        """Submit a prebuilt job spec; returns its queue/cache key.

        Already-cached points complete immediately (source ``cache``)
        without consuming pool capacity.  Raises
        :class:`~repro.common.errors.QueueFull` when shedding.
        """
        key = spec_key(spec, self.cache)
        label = spec_label(spec)
        job = self.queue.submit(spec["kind"], spec, label, key)
        if job.state == PENDING and self.cache.load(key) is not None:
            self.queue.complete(key, worker="cache", source="cache")
            self.stats.cache_hits += 1
            self._log(f"  [cache] {label} complete on submit")
        return key

    # -- scheduler -------------------------------------------------------

    def step(self) -> None:
        """One scheduler tick: poll, lease upkeep, dispatch, collect."""
        self.queue.poll()
        for key in self.queue.enforce_capacity():
            self._log(f"  shed {key} (queue over capacity)")
        self._lease_upkeep()
        self._dispatch()
        self._collect()

    def _lease_upkeep(self) -> None:
        """Renew healthy leases; reclaim hung and expired work.

        A flight past the policy timeout is *hung*: stop renewing,
        kill the pool (a wedged worker cannot be cancelled), charge the
        hung runs an attempt, and requeue the collateral uncharged —
        mirroring the ParallelRunner watchdog.  A flight whose lease
        expired without being hung (injected expiry, stalled heartbeat)
        becomes an *orphan*: its job requeues immediately, but the
        worker keeps running and its late result is accepted
        idempotently if it wins the race.
        """
        now_mono = time.monotonic()
        hung: Set[object] = set()
        for future, flight in self._inflight.items():
            if (
                self.policy.timeout is not None
                and now_mono - flight.started > self.policy.timeout
            ):
                hung.add(future)
            else:
                self.queue.heartbeat(flight.key)
        if hung:
            self._kill_pool()
            for future, flight in list(self._inflight.items()):
                if future in hung:
                    self.stats.timeouts += 1
                    self._log(
                        f"  watchdog: {flight.label} exceeded "
                        f"{self.policy.timeout:.1f}s; killing worker pool"
                    )
                    self._fail(
                        flight,
                        TimeoutError(
                            f"run exceeded {self.policy.timeout}s wall-clock"
                        ),
                    )
                else:
                    # Collateral of the pool kill: requeue uncharged.
                    self.queue.release(flight.key, "pool-restart")
            self._inflight.clear()
            return
        expired = set(self.queue.expire_leases())
        if not expired:
            return
        for future, flight in list(self._inflight.items()):
            if flight.key in expired:
                self._fail_at.setdefault(flight.key, time.monotonic())
                self._log(f"  lease expired on {flight.label}; orphaning run")
                self._orphans[future] = flight
                del self._inflight[future]

    def _dispatch(self) -> None:
        """Claim ready jobs up to pool capacity and fan them out."""
        while len(self._inflight) < self.jobs:
            job = self.queue.claim(self.worker_id)
            if job is None:
                return
            if self.cache.load(job.key) is not None:
                # Finished by an earlier incarnation or a sibling runner.
                self.queue.complete(job.key, worker="cache", source="cache")
                self.stats.cache_hits += 1
                self._note_recovered(job.key)
                self._log(f"  [cache] {job.label}")
                continue
            try:
                future = self._pool().submit(
                    _service_worker, job.spec, job.attempts, self._cache_dir
                )
            except BrokenExecutor:
                # The pool broke under an earlier crash and _collect has
                # not reaped it yet: requeue this claim uncharged and
                # let the next tick build a fresh pool.
                if self._discard_pool():
                    self.stats.pool_restarts += 1
                self.queue.release(job.key, "pool-broken")
                return
            self._inflight[future] = _Flight(
                key=job.key,
                label=job.label,
                spec=job.spec,
                attempt=job.attempts,
                started=time.monotonic(),
            )
            self.stats.dispatched += 1
            self._log(
                f"  dispatch {job.label} (attempt {job.attempts + 1}, "
                f"lease {self.queue.lease_seconds:.0f}s)"
            )

    def _collect(self) -> None:
        """Wait briefly for any in-flight or orphaned run to finish."""
        futures = set(self._inflight) | set(self._orphans)
        if not futures:
            return
        finished, _ = wait(
            futures, timeout=self.poll_interval, return_when=FIRST_COMPLETED
        )
        for future in finished:
            if future in self._inflight:
                self._finish(self._inflight.pop(future), future)
            elif future in self._orphans:
                self._finish_orphan(self._orphans.pop(future), future)

    # -- completion paths ------------------------------------------------

    def _note_recovered(self, key: str) -> None:
        started = self._fail_at.pop(key, None)
        if started is not None:
            self.stats.recovery_seconds.append(time.monotonic() - started)

    def _finish(self, flight: _Flight, future) -> None:
        try:
            key, pid, seconds = future.result()
        except BrokenExecutor as error:
            # The whole pool died (a worker crashed hard); every other
            # in-flight future will raise the same way and be charged —
            # matching the ParallelRunner precedent.
            if self._discard_pool():
                self.stats.pool_restarts += 1
            self._fail(flight, error)
            return
        except Exception as error:  # noqa: BLE001 - worker raised
            self._fail(flight, error)
            return
        if self.cache.load(key) is None:
            # The worker claims success but the store cannot produce the
            # bytes (corrupt entry was detected and deleted): recompute.
            self._fail(
                flight, ServiceError("stored result unreadable after run")
            )
            return
        if self.queue.complete(key, worker=str(pid)):
            self._note_recovered(key)
            self._log(f"  worker {pid} finished {flight.label} in {seconds:.2f}s")
        else:
            self._log(f"  duplicate completion of {flight.label} (ignored)")

    def _finish_orphan(self, flight: _Flight, future) -> None:
        """An expired-lease run came back: accept its result if valid.

        Failures are ignored — the job was already requeued when the
        lease expired, so the retry path owns it now.
        """
        try:
            key, pid, _seconds = future.result()
        except Exception:  # noqa: BLE001
            return
        job = self.queue.jobs.get(key)
        if job is None or job.state == DONE:
            return
        if self.cache.load(key) is None:
            return
        if self.queue.complete(key, worker=str(pid), source="orphan"):
            self.stats.orphan_completions += 1
            self._note_recovered(key)
            self._log(f"  orphaned worker {pid} completed {flight.label}")

    def _fail(self, flight: _Flight, error: BaseException) -> None:
        """Charge one attempt; requeue with backoff or go terminal."""
        self._fail_at.setdefault(flight.key, time.monotonic())
        job = self.queue.jobs.get(flight.key)
        if job is None or job.state == DONE:
            return  # completed elsewhere (orphan/duplicate delivery won)
        next_attempt = job.attempts + 1
        not_before = time.time() + self.policy.backoff_delay(
            flight.label, next_attempt
        )
        outcome = self.queue.fail(
            flight.key,
            self.worker_id,
            error,
            retries=self.policy.retries,
            not_before=not_before,
        )
        if outcome == "requeued":
            self._log(
                f"  worker failed on {flight.label} ({error!r}); retry "
                f"{next_attempt}/{self.policy.retries} queued"
            )
            return
        # Retry budget exhausted: apply the policy.
        if self.policy.on_failure == "fail":
            raise ExperimentError(
                f"{flight.label} failed after {next_attempt} attempts: "
                f"{error!r}"
            ) from error
        if self.policy.on_failure == "skip":
            self.stats.skipped.append(flight.label)
            self._log(f"  giving up on {flight.label} ({error!r}); skipped")
            return
        # Default: last-resort rerun in the service process, which is
        # observable and interruptible.  Worker faults do not fire here
        # (no worker_fault call, as in the runner's inline path) and
        # store faults are spared by the high attempt number.
        self.stats.in_process_fallbacks += 1
        self._log(f"  worker failed on {flight.label} ({error!r}); running in-process")
        try:
            with faults.attempt_scope(job.attempts):
                payload, meta = execute_spec(flight.spec)
                self.cache.store(flight.key, payload, meta=meta)
        except Exception as final_error:  # noqa: BLE001
            raise ExperimentError(
                f"{flight.label} failed in-process after {next_attempt} "
                f"worker attempts: {final_error!r}"
            ) from final_error
        if self.queue.complete(flight.key, worker="in-process"):
            self._note_recovered(flight.key)

    # -- drive -----------------------------------------------------------

    def run(self, follow_idle: float = 0.0) -> None:
        """Serve until every known job is done or dead.

        ``follow_idle > 0`` keeps the service alive that many seconds
        past drained, polling the journal for submissions from other
        processes — the ``repro serve`` long-running mode.
        """
        idle_since: Optional[float] = None
        while True:
            self.step()
            if self._inflight or self._orphans:
                idle_since = None
                continue
            if self.queue.claimable():
                idle_since = None
                continue
            if not self.queue.drained():
                # Pending work gated by retry backoff: wait it out.
                idle_since = None
                time.sleep(min(self.poll_interval, 0.05))
                continue
            if follow_idle <= 0:
                return
            if idle_since is None:
                idle_since = time.monotonic()
            if time.monotonic() - idle_since >= follow_idle:
                return
            time.sleep(self.poll_interval)

    def result(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``; stale fallback on store loss.

        A payload served once is remembered (bounded); if the store
        later becomes unreadable for that key — corrupted, deleted, a
        disk gone read-only — the remembered copy is served instead and
        the job reopened so the store heals on the next serve cycle.
        """
        payload = self.cache.load(key)
        if payload is not None:
            if len(self._stale) >= self._stale_limit:
                self._stale.pop(next(iter(self._stale)))
            self._stale[key] = payload
            return payload
        stale = self._stale.get(key)
        if stale is not None:
            self.stats.stale_serves += 1
            self.queue.reopen(key, "store-unreadable")
            self._log(f"  serving stale copy of {key} (store unreadable)")
            return stale
        return None

    # -- inspection / teardown -------------------------------------------

    def status(self) -> Dict[str, object]:
        return {
            "queue": self.queue.counts(),
            "queue_stats": self.queue.stats.as_dict(),
            "service_stats": self.stats.as_dict(),
            "cache_stats": self.cache.stats.as_dict(),
            "cache_entries": self.cache.entries(),
        }

    def summary(self) -> str:
        stats = self.stats
        parts = [
            self.queue.summary(),
            f"dispatched {stats.dispatched}",
            f"cache hits {stats.cache_hits}",
        ]
        if stats.orphan_completions:
            parts.append(f"orphan completions {stats.orphan_completions}")
        if stats.in_process_fallbacks:
            parts.append(f"in-process fallbacks {stats.in_process_fallbacks}")
        if stats.pool_restarts:
            parts.append(f"pool restarts {stats.pool_restarts}")
        if stats.timeouts:
            parts.append(f"timeouts {stats.timeouts}")
        if stats.stale_serves:
            parts.append(f"stale serves {stats.stale_serves}")
        if stats.skipped:
            parts.append(f"skipped {len(stats.skipped)}")
        if stats.recovery_seconds:
            parts.append(
                f"mean recovery {sum(stats.recovery_seconds) / len(stats.recovery_seconds):.2f}s"
            )
        return ", ".join(parts)

    def close(self) -> None:
        self._discard_pool()
        self.queue.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
