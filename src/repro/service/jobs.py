"""Job specs: the JSON contract between submitters, journal, and workers.

A campaign-service job names one ``(configuration, workload[, cpus])``
simulation point with nothing but JSON scalars, so it can be appended to
the durable journal by one process (``repro submit``), replayed by
another (``repro serve`` after a crash), and executed by a third (a pool
worker) — all agreeing on the same identity:

- configurations are referenced by their registry name
  (:func:`repro.model.config.named_configs`); the *content hash* of the
  built configuration, not the name, feeds the dedup/cache key, so two
  code versions that change a parameter never alias;
- workloads are referenced by their paper name plus generation
  parameters (seed, warm, timed) — the same identity
  :meth:`~repro.analysis.workloads.Workload.cache_key` uses;
- :func:`spec_key` is exactly the :class:`~repro.analysis.cache.ResultCache`
  key of the run, so "the service finished this job" and "any runner
  gets a cache hit for it" are the same statement, and duplicate
  submissions of the same content single-flight by construction.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.cache import ResultCache
from repro.analysis.workloads import (
    DEFAULT_SEED,
    DEFAULT_TIMED,
    DEFAULT_WARM,
    Workload,
    workload_by_name,
)
from repro.common.errors import ConfigError, ServiceError
from repro.model.config import MachineConfig, named_configs

#: Spec schema version, embedded in every journal record.
SPEC_FORMAT = 1


def make_spec(
    workload: str,
    config: str = "base",
    warm: int = DEFAULT_WARM,
    timed: int = DEFAULT_TIMED,
    seed: int = DEFAULT_SEED,
    cpus: Optional[int] = None,
) -> dict:
    """Build (and validate) a job spec.  Raises :class:`ConfigError`."""
    if config not in named_configs():
        raise ConfigError(
            f"unknown config {config!r}; choose from: "
            f"{', '.join(named_configs())}"
        )
    if cpus is not None and cpus < 1:
        raise ConfigError(f"cpus must be >= 1, got {cpus}")
    spec = {
        "v": SPEC_FORMAT,
        "kind": "smp" if cpus else "up",
        "workload": workload,
        "config": config,
        "warm": int(warm),
        "timed": int(timed),
        "seed": int(seed),
    }
    if cpus:
        spec["cpus"] = int(cpus)
    spec_workload(spec)  # rejects unknown workload names at submit time
    return spec


def spec_config(spec: dict) -> MachineConfig:
    """The machine configuration a spec names (built fresh)."""
    registry = named_configs()
    name = spec.get("config", "base")
    try:
        return registry[name]()
    except KeyError:
        raise ConfigError(f"job spec names unknown config {name!r}") from None


def spec_workload(spec: dict) -> Workload:
    """The workload a spec names (traces regenerated from the seed)."""
    return workload_by_name(
        spec["workload"],
        warm=int(spec.get("warm", DEFAULT_WARM)),
        timed=int(spec.get("timed", DEFAULT_TIMED)),
        seed=int(spec.get("seed", DEFAULT_SEED)),
    )


def spec_label(spec: dict) -> str:
    """Human-readable run label, matching the ParallelRunner convention
    (``workload@config`` / ``workloadxNP@config``) so ``REPRO_FAULTS``
    ``match=`` patterns target service runs and runner runs alike."""
    config_name = spec_config(spec).name
    if spec.get("kind") == "smp":
        return f"{spec['workload']}x{spec['cpus']}P@{config_name}"
    return f"{spec['workload']}@{config_name}"


def spec_key(spec: dict, cache: ResultCache) -> str:
    """The job's identity: exactly the result-cache key of the run."""
    config = spec_config(spec)
    workload = spec_workload(spec)
    if spec.get("kind") == "smp":
        return cache.key(
            "smp", config.content_hash(), workload.cache_key(), int(spec["cpus"])
        )
    return cache.key("up", config.content_hash(), workload.cache_key())


def execute_spec(spec: dict) -> Tuple[dict, dict]:
    """Run the simulation a spec names; returns ``(payload, meta)``.

    The payload/meta shapes match what :class:`ParallelRunner` stores,
    so entries produced by the service are indistinguishable from
    entries produced by a local sweep — ``repro analyze`` renders both.
    """
    from repro.analysis.runner import _run_smp, _run_up

    kind = spec.get("kind", "up")
    if kind not in ("up", "smp"):
        raise ServiceError(f"job spec has unknown kind {kind!r}")
    config = spec_config(spec)
    workload = spec_workload(spec)
    if kind == "smp":
        cpus = int(spec["cpus"])
        result = _run_smp(config, workload, cpus)
        meta = {
            "config": result.config_name,
            "workload": workload.name,
            "cpus": cpus,
        }
    else:
        result = _run_up(config, workload)
        meta = {"config": result.config_name, "workload": workload.name}
    return result.to_dict(), meta
