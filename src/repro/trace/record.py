"""The dynamic-instruction record.

One :class:`TraceRecord` is one executed instruction.  It carries exactly
the information the timing model needs and nothing else — the same
abstraction level as the paper's instruction traces, which include both
application and kernel execution for TPC-C.

Records are created millions of times per simulation, so the class uses
``__slots__`` and plain attributes rather than a dataclass with defaults
checked at runtime.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opcodes import OpClass

#: Sentinel register id meaning "no register".
NO_REG = -1

#: Sentinel address meaning "no address".
NO_ADDR = -1


class TraceRecord:
    """One dynamic instruction.

    Attributes:
        pc: virtual address of the instruction.
        op: timing class (:class:`repro.isa.OpClass`).
        dest: flat destination register id, or :data:`NO_REG`.
        srcs: tuple of flat source register ids (may be empty).
        ea: effective address for loads/stores, else :data:`NO_ADDR`.
        size: access size in bytes for loads/stores, else 0.
        taken: branch outcome (False for non-branches).
        target: branch target pc when taken, else :data:`NO_ADDR`.
        privileged: True when executed in kernel mode.
    """

    __slots__ = ("pc", "op", "dest", "srcs", "ea", "size", "taken", "target", "privileged")

    def __init__(
        self,
        pc: int,
        op: OpClass,
        dest: int = NO_REG,
        srcs: Tuple[int, ...] = (),
        ea: int = NO_ADDR,
        size: int = 0,
        taken: bool = False,
        target: int = NO_ADDR,
        privileged: bool = False,
    ) -> None:
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.ea = ea
        self.size = size
        self.taken = taken
        self.target = target
        self.privileged = privileged

    @property
    def is_load(self) -> bool:
        """True for load-class records."""
        return self.op == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for store-class records."""
        return self.op == OpClass.STORE

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.op == OpClass.LOAD or self.op == OpClass.STORE

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer record."""
        op = self.op
        return (
            op == OpClass.BRANCH_COND
            or op == OpClass.BRANCH_UNCOND
            or op == OpClass.CALL
            or op == OpClass.RETURN
        )

    @property
    def is_conditional_branch(self) -> bool:
        """True only for condition-dependent branches."""
        return self.op == OpClass.BRANCH_COND

    def fall_through(self) -> int:
        """Address of the next sequential instruction."""
        return self.pc + 4

    def next_pc(self) -> int:
        """Address of the dynamically next instruction."""
        if self.taken and self.target != NO_ADDR:
            return self.target
        return self.pc + 4

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.op == other.op
            and self.dest == other.dest
            and self.srcs == other.srcs
            and self.ea == other.ea
            and self.size == other.size
            and self.taken == other.taken
            and self.target == other.target
            and self.privileged == other.privileged
        )

    def __hash__(self) -> int:
        return hash((self.pc, self.op, self.dest, self.srcs, self.ea, self.taken))

    def __repr__(self) -> str:
        extra = ""
        if self.is_memory:
            extra = f" ea={self.ea:#x} size={self.size}"
        elif self.is_branch:
            tgt = f"{self.target:#x}" if self.target != NO_ADDR else "-"
            extra = f" taken={self.taken} target={tgt}"
        priv = " priv" if self.privileged else ""
        return f"<{self.op.name} pc={self.pc:#x} dest={self.dest} srcs={self.srcs}{extra}{priv}>"


def make_alu(pc: int, dest: int, srcs: Tuple[int, ...], privileged: bool = False) -> TraceRecord:
    """Convenience constructor for a single-cycle integer ALU record."""
    return TraceRecord(pc, OpClass.INT_ALU, dest=dest, srcs=srcs, privileged=privileged)


def make_load(
    pc: int,
    dest: int,
    addr_srcs: Tuple[int, ...],
    ea: int,
    size: int = 8,
    privileged: bool = False,
) -> TraceRecord:
    """Convenience constructor for a load record."""
    return TraceRecord(
        pc, OpClass.LOAD, dest=dest, srcs=addr_srcs, ea=ea, size=size, privileged=privileged
    )


def make_store(
    pc: int,
    srcs: Tuple[int, ...],
    ea: int,
    size: int = 8,
    privileged: bool = False,
) -> TraceRecord:
    """Convenience constructor for a store record (last src is the data)."""
    return TraceRecord(pc, OpClass.STORE, srcs=srcs, ea=ea, size=size, privileged=privileged)


def make_branch(
    pc: int,
    taken: bool,
    target: int,
    conditional: bool = True,
    srcs: Tuple[int, ...] = (),
    privileged: bool = False,
) -> TraceRecord:
    """Convenience constructor for a branch record."""
    op = OpClass.BRANCH_COND if conditional else OpClass.BRANCH_UNCOND
    return TraceRecord(
        pc, op, srcs=srcs, taken=taken, target=target if taken else target, privileged=privileged
    )
