"""Trace comparison utilities.

Used when debugging the verification loops: given two traces (e.g. the
original and a Reverse-Tracer replay, or two samples of one workload),
quantify how similar they are — record-exact divergence point, mix
divergence, and footprint overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.trace.stream import Trace


@dataclass
class TraceComparison:
    """Similarity metrics between two traces."""

    length_a: int
    length_b: int
    #: Index of the first differing record, or None if one is a prefix of
    #: the other (or they are identical).
    first_divergence: Optional[int]
    #: Fraction of positions (over the shorter length) with equal records.
    record_match_fraction: float
    #: Fraction of positions with at least the same opcode class.
    opcode_match_fraction: float
    #: L1-норм distance between the two instruction-mix vectors (0..2).
    mix_distance: float
    #: Jaccard overlap of the code footprints (unique pcs).
    code_overlap: float
    #: Jaccard overlap of the data footprints (unique 64 B lines).
    data_overlap: float

    @property
    def identical(self) -> bool:
        return (
            self.length_a == self.length_b
            and self.first_divergence is None
            and self.record_match_fraction == 1.0
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "length_a": self.length_a,
            "length_b": self.length_b,
            "first_divergence": self.first_divergence,
            "record_match_fraction": round(self.record_match_fraction, 4),
            "opcode_match_fraction": round(self.opcode_match_fraction, 4),
            "mix_distance": round(self.mix_distance, 4),
            "code_overlap": round(self.code_overlap, 4),
            "data_overlap": round(self.data_overlap, 4),
        }


def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def compare_traces(a: Trace, b: Trace, line_bytes: int = 64) -> TraceComparison:
    """Compute :class:`TraceComparison` between two traces."""
    short = min(len(a), len(b))
    first_divergence: Optional[int] = None
    record_matches = 0
    opcode_matches = 0
    for index in range(short):
        ra, rb = a.records[index], b.records[index]
        if ra == rb:
            record_matches += 1
            opcode_matches += 1
        else:
            if first_divergence is None:
                first_divergence = index
            if ra.op == rb.op:
                opcode_matches += 1

    stats_a = a.stats(line_bytes)
    stats_b = b.stats(line_bytes)
    total_a = max(stats_a.instruction_count, 1)
    total_b = max(stats_b.instruction_count, 1)
    ops = set(stats_a.op_counts) | set(stats_b.op_counts)
    mix_distance = sum(
        abs(
            stats_a.op_counts.get(op, 0) / total_a
            - stats_b.op_counts.get(op, 0) / total_b
        )
        for op in ops
    )

    code_a = {record.pc for record in a.records}
    code_b = {record.pc for record in b.records}
    data_a = {record.ea // line_bytes for record in a.records if record.is_memory}
    data_b = {record.ea // line_bytes for record in b.records if record.is_memory}

    return TraceComparison(
        length_a=len(a),
        length_b=len(b),
        first_divergence=first_divergence,
        record_match_fraction=record_matches / short if short else 1.0,
        opcode_match_fraction=opcode_matches / short if short else 1.0,
        mix_distance=mix_distance,
        code_overlap=_jaccard(code_a, code_b),
        data_overlap=_jaccard(data_a, data_b),
    )
