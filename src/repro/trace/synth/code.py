"""Static code image for synthetic workloads.

Builds the program structure that the dynamic walker
(:mod:`repro.trace.synth.generator`) executes: a list of basic blocks laid
out at consecutive addresses, each with a terminal control transfer (or
fall-through) and, for conditional branches, a fixed per-branch behaviour
model.  Keeping branch behaviour *static per branch site* is what lets a
real branch-history table learn it — and lets a too-small table thrash
when the static branch population is large (TPC-C, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.trace.synth.profiles import WorkloadProfile

#: Default base address of user text.
USER_TEXT_BASE = 0x0010_0000

#: Default base address of kernel text (distinct high region).
KERNEL_TEXT_BASE = 0x7000_0000

INSTRUCTION_BYTES = 4


class TerminalKind(Enum):
    """How a basic block ends."""

    COND = auto()
    UNCOND = auto()
    CALL = auto()
    RET = auto()
    NONE = auto()  # fall through to the next block


class BranchBehavior(Enum):
    """Dynamic behaviour class of a static conditional branch."""

    LOOP = auto()  # taken (trip) times, then not-taken once
    BIASED_TAKEN = auto()
    BIASED_NOT = auto()
    RANDOM = auto()


@dataclass
class StaticBlock:
    """One basic block in the static code image."""

    index: int
    start_pc: int
    #: Instruction count, including the terminal when terminal != NONE.
    length: int
    terminal: TerminalKind
    #: Target block index for COND/UNCOND/CALL terminals.
    target_block: Optional[int] = None
    behavior: Optional[BranchBehavior] = None
    #: Trip count for LOOP-behaviour branches.
    loop_trip: int = 0
    #: Taken probability for BIASED behaviours.
    bias: float = 0.5
    is_function_entry: bool = False
    privileged: bool = False

    @property
    def body_length(self) -> int:
        """Number of non-terminal instructions in the block."""
        if self.terminal is TerminalKind.NONE:
            return self.length
        return self.length - 1

    @property
    def terminal_pc(self) -> int:
        """Address of the terminal instruction (last slot of the block)."""
        return self.start_pc + (self.length - 1) * INSTRUCTION_BYTES

    @property
    def end_pc(self) -> int:
        """Address one past the block."""
        return self.start_pc + self.length * INSTRUCTION_BYTES


class CodeImage:
    """A laid-out set of basic blocks plus the function-entry index."""

    def __init__(self, blocks: List[StaticBlock], function_entries: List[int], base: int):
        if not blocks:
            raise ConfigError("code image needs at least one block")
        self.blocks = blocks
        self.function_entries = function_entries
        self.base = base

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def footprint_bytes(self) -> int:
        """Total text bytes spanned by the image."""
        return self.blocks[-1].end_pc - self.base


def build_code_image(
    profile: WorkloadProfile,
    rng: DeterministicRng,
    block_count: int,
    base: int = USER_TEXT_BASE,
    privileged: bool = False,
) -> CodeImage:
    """Build a static code image per the profile's code-shape parameters.

    ``block_count`` is passed separately so the same profile can describe
    both its user image and its (differently sized) kernel image.
    """
    if block_count < 2:
        raise ConfigError("block_count must be >= 2")

    branch_mix = profile.branch_mix
    terminal_weights = [
        (TerminalKind.COND, profile.conditional_terminal_fraction),
        (TerminalKind.UNCOND, profile.unconditional_terminal_fraction),
        (TerminalKind.CALL, profile.call_terminal_fraction),
        (TerminalKind.RET, profile.return_terminal_fraction),
    ]
    fallthrough_weight = 1.0 - sum(weight for _, weight in terminal_weights)
    terminal_kinds = [kind for kind, _ in terminal_weights] + [TerminalKind.NONE]
    terminal_probs = [weight for _, weight in terminal_weights] + [fallthrough_weight]

    behavior_kinds = [BranchBehavior.LOOP, BranchBehavior.BIASED_TAKEN, BranchBehavior.RANDOM]
    behavior_probs = [
        branch_mix.loop_fraction,
        branch_mix.biased_fraction,
        branch_mix.random_fraction,
    ]

    # First pass: block skeletons (length, terminal kind, function entry).
    blocks: List[StaticBlock] = []
    function_entries: List[int] = []
    pc = base
    for index in range(block_count):
        length = rng.geometric(profile.block_length_mean, maximum=32)
        terminal = rng.weighted_choice(terminal_kinds, terminal_probs)
        # The last block must not fall off the image — not even via a
        # not-taken conditional — so force an unconditional terminal.
        if index == block_count - 1 and terminal in (TerminalKind.NONE, TerminalKind.COND):
            terminal = TerminalKind.UNCOND
        if terminal is not TerminalKind.NONE and length < 2:
            length = 2
        is_entry = rng.chance(profile.function_fraction)
        block = StaticBlock(
            index=index,
            start_pc=pc,
            length=length,
            terminal=terminal,
            is_function_entry=is_entry,
            privileged=privileged,
        )
        if is_entry:
            function_entries.append(index)
        blocks.append(block)
        pc = block.end_pc

    if not function_entries:
        # Guarantee at least one call target.
        blocks[block_count // 2].is_function_entry = True
        function_entries.append(block_count // 2)

    # Second pass: assign targets and branch behaviour.
    for block in blocks:
        if block.terminal is TerminalKind.COND:
            behavior = rng.weighted_choice(behavior_kinds, behavior_probs)
            if behavior is BranchBehavior.LOOP:
                block.behavior = BranchBehavior.LOOP
                block.loop_trip = max(
                    branch_mix.loop_trip_min,
                    rng.geometric(branch_mix.loop_trip_mean, maximum=512),
                )
                # Loop back edges are the only *static* targets: a backward
                # edge, matching compiler layout where backward branches are
                # loop bottoms.  Walk back far enough that the loop body has
                # a representative instruction mix (tiny two-instruction
                # self-loops would make the dynamic stream branch-dominated).
                span = block.length
                target = block.index
                min_span = max(12, int(2 * profile.block_length_mean))
                while target > 0 and span < min_span and block.index - target < 8:
                    target -= 1
                    span += blocks[target].length
                block.target_block = target
            else:
                if behavior is BranchBehavior.BIASED_TAKEN:
                    block.behavior = (
                        BranchBehavior.BIASED_TAKEN
                        if rng.chance(0.5)
                        else BranchBehavior.BIASED_NOT
                    )
                    block.bias = branch_mix.bias
                else:
                    block.behavior = BranchBehavior.RANDOM
                    block.bias = 0.5
                # Non-loop targets are chosen dynamically by the walker
                # (drifting locality window), so the walk roams the image
                # the way phased program execution does.
                block.target_block = None
        # UNCOND/CALL/RET targets are dynamic (walker-chosen) as well.

    return CodeImage(blocks, function_entries, base)
