"""SMP trace generation.

Produces one trace per processor for a multiprocessor run, the way the
paper's TPC-C (16P) experiments are driven.  Every CPU runs the same
*kind* of work (transaction processing) but a distinct dynamic stream:

- each CPU gets its own seed fork, so code walks diverge;
- all CPUs share one :class:`SharedRegionGenerator`-addressed segment —
  the database buffer pool and lock words — sized and skewed per the
  profile, which is what creates the inter-L2 "move-out" traffic the
  paper's two-level-cache argument (§3.3) and the 16P L2 study (§4.3.4)
  depend on;
- private data regions are offset per CPU so they never falsely conflict.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.trace.stream import Trace
from repro.trace.synth.data import SHARED_DATA_BASE, SharedRegionGenerator
from repro.trace.synth.generator import TraceGenerator
from repro.trace.synth.profiles import WorkloadProfile


def build_smp_generators(
    profile: WorkloadProfile,
    cpu_count: int,
    seed: int = 1,
) -> List[TraceGenerator]:
    """One :class:`TraceGenerator` per CPU, sharing the global region."""
    if cpu_count <= 0:
        raise ConfigError("cpu_count must be positive")
    if profile.shared_access_fraction <= 0 and cpu_count > 1:
        raise ConfigError(
            f"profile {profile.name!r} has no shared-access fraction; "
            "SMP traces would be trivially independent"
        )
    generators = []
    for cpu in range(cpu_count):
        shared = SharedRegionGenerator(
            DeterministicRng(seed).fork(1000 + cpu),
            profile.shared_region_bytes,
            base=SHARED_DATA_BASE,
        )
        generators.append(
            TraceGenerator(profile, seed=seed, cpu=cpu, shared_generator=shared)
        )
    return generators


def generate_smp_traces(
    profile: WorkloadProfile,
    cpu_count: int,
    instruction_count: int,
    seed: int = 1,
    name: Optional[str] = None,
) -> List[Trace]:
    """Generate ``cpu_count`` coherent per-CPU traces.

    ``instruction_count`` is per CPU.  The shared region is identical
    across CPUs (same base address and skew), so the coherence model in
    :mod:`repro.smp` sees genuine sharing.
    """
    base_name = name or profile.name
    return [
        generator.generate(
            instruction_count, name=f"{base_name}-{cpu_count}P-cpu{generator.cpu}"
        )
        for generator in build_smp_generators(profile, cpu_count, seed)
    ]
