"""Dynamic trace generation: walking the static code image.

The :class:`TraceGenerator` executes the static code image the way a real
program would: it follows branch targets, keeps a call stack, takes kernel
excursions (for profiles with a kernel fraction), threads register
dependences through the emitted instructions, and draws data addresses
from the profile's stream mix.  The output is a control-flow-consistent
dynamic stream — ``Trace.validate()`` passes — which is what the timing
model's fetch/branch-prediction path requires.

Register-dependence conventions (these shape the ILP the out-of-order
core can extract):

- destination registers cycle through a pool, so WAW distance is long;
- source registers are drawn from recently written ones with geometric
  recency (profile's ``dependency_recency_mean``);
- chain-stream loads are made *address-dependent on the previous chain
  load* — real pointer chasing — which serialises OLTP memory access;
- conditional branches read the condition codes written by a compare
  placed at the end of the preceding block body.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.isa.opcodes import OpClass
from repro.isa.registers import ICC, fp_reg, int_reg
from repro.trace.record import NO_REG, TraceRecord
from repro.trace.stream import Trace
from repro.trace.synth.code import (
    INSTRUCTION_BYTES,
    KERNEL_TEXT_BASE,
    USER_TEXT_BASE,
    BranchBehavior,
    CodeImage,
    StaticBlock,
    TerminalKind,
    build_code_image,
)
from repro.trace.synth.data import (
    KERNEL_DATA_BASE,
    USER_DATA_BASE,
    AddressGenerator,
    SharedRegionGenerator,
)
from repro.trace.synth.profiles import WorkloadProfile

#: Integer registers used as cycling destinations (r15 is the link register,
#: r1–r6 are stable base/pointer registers).
_INT_DEST_POOL = tuple(list(range(8, 15)) + list(range(16, 31)))
_FP_DEST_POOL = tuple(range(32))
_BASE_REG_POOL = tuple(range(1, 7))

_MAX_CALL_DEPTH = 24


class _RegisterState:
    """Tracks recent register writes to thread dependences."""

    def __init__(self, rng: DeterministicRng, recency_mean: float) -> None:
        self._rng = rng
        self._recency_mean = recency_mean
        self._recent_int: Deque[int] = deque(maxlen=12)
        self._recent_fp: Deque[int] = deque(maxlen=12)
        self._int_cursor = 0
        self._fp_cursor = 0
        # Seed with a few base registers so early sources are valid.
        for reg in (8, 9, 10):
            self._recent_int.append(reg)
        for reg in (0, 1):
            self._recent_fp.append(fp_reg(reg))

    def next_int_dest(self) -> int:
        reg = _INT_DEST_POOL[self._int_cursor]
        self._int_cursor = (self._int_cursor + 1) % len(_INT_DEST_POOL)
        self._recent_int.append(reg)
        return int_reg(reg)

    def next_fp_dest(self) -> int:
        reg = _FP_DEST_POOL[self._fp_cursor]
        self._fp_cursor = (self._fp_cursor + 1) % len(_FP_DEST_POOL)
        flat = fp_reg(reg)
        self._recent_fp.append(flat)
        return flat

    def _pick_recent(self, recent: Deque[int]) -> int:
        depth = min(self._rng.geometric(self._recency_mean, maximum=len(recent)), len(recent))
        return recent[-depth]

    def int_source(self) -> int:
        return self._pick_recent(self._recent_int)

    def fp_source(self) -> int:
        return self._pick_recent(self._recent_fp)

    def base_register(self) -> int:
        return int_reg(self._rng.choice(_BASE_REG_POOL))

    def note_load_dest(self, flat_reg: int) -> None:
        """Record a load destination so following ops can consume it."""
        if flat_reg == NO_REG:
            return
        # Already appended by next_*_dest; nothing extra needed.


class TraceGenerator:
    """Generates dynamic traces for one workload profile.

    One generator instance owns its static code image, so repeated
    :meth:`generate` calls continue walking the *same* program — useful
    for producing independent sample windows of one workload.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        cpu: int = 0,
        shared_generator: Optional[SharedRegionGenerator] = None,
        sample_seed: Optional[int] = None,
    ) -> None:
        """``seed`` fixes the static program (code image); ``sample_seed``
        (defaulting to ``seed``) fixes the dynamic sample — the walk,
        operand values, and data addresses.  Two generators with the same
        seed but different sample seeds model two captures of the *same*
        workload, the situation of the paper's model-vs-machine accuracy
        comparison.
        """
        profile.validate()
        self.profile = profile
        self.cpu = cpu
        root = DeterministicRng(seed).fork(cpu + 1)
        sample_root = (
            root if sample_seed is None
            else DeterministicRng(sample_seed).fork(cpu + 1)
        )
        self._rng_code = root.fork(1)
        self._rng_walk = sample_root.fork(2)
        self._rng_body = sample_root.fork(3)

        self.user_image = build_code_image(
            profile, self._rng_code, profile.block_count, base=USER_TEXT_BASE
        )
        self.kernel_image: Optional[CodeImage] = None
        if profile.kernel_fraction > 0:
            self.kernel_image = build_code_image(
                profile,
                self._rng_code.fork(7),
                profile.kernel_block_count,
                base=KERNEL_TEXT_BASE,
                privileged=True,
            )

        self._user_data = AddressGenerator(
            profile.data_mix, sample_root.fork(4), region_base=USER_DATA_BASE
        )
        self._kernel_data: Optional[AddressGenerator] = None
        if self.kernel_image is not None:
            kernel_mix = profile.data_mix.__class__(
                hot_fraction=profile.data_mix.hot_fraction,
                stride_fraction=profile.data_mix.stride_fraction,
                chain_fraction=profile.data_mix.chain_fraction,
                random_fraction=profile.data_mix.random_fraction,
                hot_region_bytes=profile.data_mix.hot_region_bytes,
                working_set_bytes=profile.kernel_working_set_bytes,
                hot_zipf_skew=profile.data_mix.hot_zipf_skew,
            )
            self._kernel_data = AddressGenerator(
                kernel_mix, sample_root.fork(5), region_base=KERNEL_DATA_BASE
            )
        self._shared = shared_generator

        self._regs = _RegisterState(sample_root.fork(6), profile.dependency_recency_mean)

        # Walker state that persists across generate() calls.
        self._mode_kernel = False
        self._block_index = 0
        self._call_stack: List[Tuple[bool, int]] = []
        self._loop_counters: Dict[Tuple[bool, int], int] = {}
        self._kernel_budget = 0
        self._last_chain_load_dest: Dict[bool, int] = {False: NO_REG, True: NO_REG}
        # Kernel/user instruction balance, used to steer excursions toward
        # the profile's kernel fraction (closed-loop control is robust to
        # how often fall-through opportunities actually occur dynamically).
        self._kernel_instructions = 0
        self._total_instructions = 0
        # Per-pc body-instruction class memo: a static instruction has one
        # opcode, so the class drawn on first execution is reused on every
        # revisit (operands and addresses still vary per execution).
        self._slot_class: Dict[int, str] = {}
        # Cycling cursor per mode over the active code set: far jumps land
        # at the cursor, which sweeps the active set round-robin — the
        # transaction-mix revisit pattern that gives every code site a
        # bounded reuse distance.
        self._active_cursor: Dict[bool, int] = {False: 0, True: 0}

        # Body instruction class choice tables.
        p = profile
        rest = 1.0 - (
            p.load_fraction
            + p.store_fraction
            + p.fp_fraction
            + p.int_mul_fraction
            + p.int_div_fraction
            + p.special_fraction
            + p.nop_fraction
        )
        self._body_classes = (
            "load",
            "store",
            "fp",
            "int_mul",
            "int_div",
            "special",
            "nop",
            "int_alu",
        )
        self._body_weights = (
            p.load_fraction,
            p.store_fraction,
            p.fp_fraction,
            p.int_mul_fraction,
            p.int_div_fraction,
            p.special_fraction,
            p.nop_fraction,
            rest,
        )
        self._fp_ops = (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_FMA, OpClass.FP_DIV)

    # ------------------------------------------------------------------

    def _should_enter_kernel(self) -> bool:
        """Closed-loop steering: enter when kernel share is below target."""
        if self.kernel_image is None:
            return False
        if self._total_instructions < 50:
            return False
        share = self._kernel_instructions / self._total_instructions
        return share < self.profile.kernel_fraction

    @property
    def _image(self) -> CodeImage:
        if self._mode_kernel:
            assert self.kernel_image is not None
            return self.kernel_image
        return self.user_image

    @property
    def _data(self) -> AddressGenerator:
        if self._mode_kernel and self._kernel_data is not None:
            return self._kernel_data
        return self._user_data

    # ------------------------------------------------------------------

    def memory_regions(self) -> Dict[str, Tuple[int, int]]:
        """Address regions this workload touches, as name -> (base, bytes).

        Used by the steady-state warm-up: the paper's traces are captured
        after the workload reaches steady state, so resident-where-
        capacity-allows is the right initial cache condition.  The
        ``*_hot`` entries are sub-regions that should be touched *last*
        (most recently used) during pre-warming.
        """
        mix = self.profile.data_mix
        # The hot extent covers both the exponential core and the uniform
        # tail — the whole graded-locality band must be steady-state
        # resident (tail lines are revisited across windows).
        hot_extent = max(
            mix.hot_region_bytes,
            mix.hot_tail_region_bytes if mix.hot_tail_fraction > 0 else 0,
        )
        regions: Dict[str, Tuple[int, int]] = {
            "user_code": (self.user_image.base, self.user_image.footprint_bytes),
            "user_data": (USER_DATA_BASE, mix.working_set_bytes),
            "user_data_hot": (USER_DATA_BASE, hot_extent),
        }
        if self.kernel_image is not None:
            regions["kernel_code"] = (
                self.kernel_image.base,
                self.kernel_image.footprint_bytes,
            )
            regions["kernel_data"] = (
                KERNEL_DATA_BASE,
                self.profile.kernel_working_set_bytes,
            )
        if self._shared is not None:
            from repro.trace.synth.data import SHARED_DATA_BASE

            regions["shared_data"] = (
                SHARED_DATA_BASE,
                self.profile.shared_region_bytes,
            )
        return regions

    def generate(self, instruction_count: int, name: Optional[str] = None) -> Trace:
        """Emit a trace of exactly ``instruction_count`` records."""
        if instruction_count <= 0:
            raise ConfigError("instruction_count must be positive")
        records: List[TraceRecord] = []
        while len(records) < instruction_count:
            self._emit_block(records)
        del records[instruction_count:]
        trace_name = name or f"{self.profile.name}-cpu{self.cpu}"
        return Trace(records, name=trace_name, cpu=self.cpu)

    # ------------------------------------------------------------------

    def _emit_block(self, records: List[TraceRecord]) -> None:
        start_count = len(records)
        try:
            self._emit_block_inner(records)
        finally:
            emitted = len(records) - start_count
            self._total_instructions += emitted

    def _emit_block_inner(self, records: List[TraceRecord]) -> None:
        image = self._image
        block = image.blocks[self._block_index]
        privileged = self._mode_kernel
        if privileged:
            self._kernel_instructions += block.length

        body_slots = block.body_length
        terminal = block.terminal

        # Kernel entry/exit replace the final slot of fall-through blocks.
        kernel_transition: Optional[str] = None
        if terminal is TerminalKind.NONE and body_slots > 0:
            if not self._mode_kernel and self._should_enter_kernel():
                kernel_transition = "enter"
                body_slots -= 1
            elif self._mode_kernel and self._kernel_budget <= 0:
                kernel_transition = "exit"
                body_slots -= 1

        needs_compare = terminal is TerminalKind.COND
        pc = block.start_pc
        for slot in range(body_slots):
            is_last_body = slot == body_slots - 1
            if needs_compare and is_last_body and kernel_transition is None:
                records.append(self._make_compare(pc, privileged))
            else:
                records.append(self._make_body_instruction(pc, privileged))
            pc += INSTRUCTION_BYTES

        if kernel_transition == "enter":
            self._emit_kernel_entry(records, block)
            return
        if kernel_transition == "exit":
            self._emit_kernel_exit(records, block)
            return

        if terminal is TerminalKind.NONE:
            self._block_index = self._next_sequential(block)
            if self._mode_kernel:
                self._kernel_budget -= block.length
            return
        if terminal is TerminalKind.COND:
            self._emit_conditional(records, block, privileged)
        elif terminal is TerminalKind.UNCOND:
            self._emit_unconditional(records, block, privileged)
        elif terminal is TerminalKind.CALL:
            self._emit_call(records, block, privileged)
        elif terminal is TerminalKind.RET:
            self._emit_return(records, block, privileged)

        if self._mode_kernel:
            self._kernel_budget -= block.length

    def _next_sequential(self, block: StaticBlock) -> int:
        nxt = block.index + 1
        if nxt >= len(self._image.blocks):
            return 0
        return nxt

    # -- body instructions ---------------------------------------------

    def _make_compare(self, pc: int, privileged: bool) -> TraceRecord:
        srcs = (self._regs.int_source(), self._regs.int_source())
        return TraceRecord(pc, OpClass.INT_ALU, dest=ICC, srcs=srcs, privileged=privileged)

    def _make_body_instruction(self, pc: int, privileged: bool) -> TraceRecord:
        rng = self._rng_body
        kind = self._slot_class.get(pc)
        if kind is None:
            kind = rng.weighted_choice(self._body_classes, self._body_weights)
            self._slot_class[pc] = kind
        regs = self._regs

        if kind == "load":
            return self._make_load(pc, privileged)
        if kind == "store":
            return self._make_store(pc, privileged)
        if kind == "fp":
            op = rng.weighted_choice(self._fp_ops, self.profile.fp_mix)
            if op is OpClass.FP_FMA:
                srcs = (regs.fp_source(), regs.fp_source(), regs.fp_source())
            else:
                srcs = (regs.fp_source(), regs.fp_source())
            return TraceRecord(pc, op, dest=regs.next_fp_dest(), srcs=srcs,
                               privileged=privileged)
        if kind == "int_mul":
            srcs = (regs.int_source(), regs.int_source())
            return TraceRecord(pc, OpClass.INT_MUL, dest=regs.next_int_dest(), srcs=srcs,
                               privileged=privileged)
        if kind == "int_div":
            srcs = (regs.int_source(), regs.int_source())
            return TraceRecord(pc, OpClass.INT_DIV, dest=regs.next_int_dest(), srcs=srcs,
                               privileged=privileged)
        if kind == "special":
            return TraceRecord(pc, OpClass.SPECIAL, privileged=privileged)
        if kind == "nop":
            return TraceRecord(pc, OpClass.NOP, privileged=privileged)
        # int_alu
        srcs = (regs.int_source(),) if rng.chance(0.35) else (
            regs.int_source(), regs.int_source())
        return TraceRecord(pc, OpClass.INT_ALU, dest=regs.next_int_dest(), srcs=srcs,
                           privileged=privileged)

    def _next_data_address(self) -> Tuple[int, str]:
        """Pick the next data address, possibly redirected to shared data."""
        profile = self.profile
        if self._shared is not None and profile.shared_access_fraction > 0:
            if self._rng_body.chance(profile.shared_access_fraction):
                return self._shared.next_address(), "shared"
        data = self._data
        kind = self._rng_body.weighted_choice(data._kinds, data._weights)
        if kind == "hot":
            return data.hot_address(self._rng_body), "hot"
        if kind == "stride":
            stream = data._stride_streams[data._next_stride_stream]
            data._next_stride_stream = (data._next_stride_stream + 1) % len(
                data._stride_streams
            )
            return stream.next_address() & ~0x7, "stride"
        if kind == "chain":
            return data._chain.next_address(), "chain"
        slot = self._rng_body.randint(0, data._ws_slots - 1)
        return data._region_base + slot * 8, "random"

    def _make_load(self, pc: int, privileged: bool) -> TraceRecord:
        regs = self._regs
        ea, kind = self._next_data_address()
        if kind == "chain":
            # Pointer chase: the address depends on the previous chain load.
            prev = self._last_chain_load_dest[privileged]
            addr_src = prev if prev != NO_REG else regs.base_register()
        else:
            addr_src = regs.base_register()
        use_fp_dest = self.profile.fp_fraction > 0 and self._rng_body.chance(0.6)
        dest = regs.next_fp_dest() if use_fp_dest else regs.next_int_dest()
        if kind == "chain" and not use_fp_dest:
            self._last_chain_load_dest[privileged] = dest
        return TraceRecord(
            pc, OpClass.LOAD, dest=dest, srcs=(addr_src,), ea=ea, size=8,
            privileged=privileged,
        )

    def _make_store(self, pc: int, privileged: bool) -> TraceRecord:
        regs = self._regs
        ea, _ = self._next_data_address()
        data_src = (
            regs.fp_source()
            if self.profile.fp_fraction > 0 and self._rng_body.chance(0.5)
            else regs.int_source()
        )
        return TraceRecord(
            pc, OpClass.STORE, srcs=(regs.base_register(), data_src), ea=ea, size=8,
            privileged=privileged,
        )

    # -- terminals -------------------------------------------------------

    def _branch_taken(self, block: StaticBlock) -> bool:
        key = (block.privileged, block.index)
        behavior = block.behavior
        if behavior is BranchBehavior.LOOP:
            # Positive counter: armed, remaining taken iterations.
            # Negative counter: dormant, not-taken encounters remaining.
            # Zero/absent: ready to arm on the next encounter.
            state = self._loop_counters.get(key, 0)
            if state == 0:
                state = block.loop_trip
            if state > 0:
                state -= 1
                if state == 0:
                    dormancy = self._rng_walk.geometric(
                        self.profile.branch_mix.loop_dormancy_mean
                    )
                    self._loop_counters[key] = -dormancy
                else:
                    self._loop_counters[key] = state
                return True
            self._loop_counters[key] = state + 1
            return False
        if behavior is BranchBehavior.BIASED_TAKEN:
            return self._rng_walk.chance(block.bias)
        if behavior is BranchBehavior.BIASED_NOT:
            return self._rng_walk.chance(1.0 - block.bias)
        return self._rng_walk.chance(0.5)  # RANDOM

    def _dynamic_target(self, current_index: int) -> int:
        """Pick a dynamic branch target: local window or hot-far jump.

        Local targets are forward-biased (compiler layout puts likely
        successors after the branch); far jumps are Zipf-skewed over the
        image so low-index blocks act as hot shared code, and they move
        the walk to a new neighbourhood — the phase behaviour that spreads
        the dynamic code footprint.
        """
        image = self._image
        count = len(image.blocks)
        if self._rng_walk.chance(self.profile.local_target_fraction):
            low = max(0, current_index - 2)
            high = min(count - 1, current_index + 10)
            return self._rng_walk.randint(low, high)
        active = max(2, int(count * self.profile.active_block_fraction))
        if active < count and not self._rng_walk.chance(
            self.profile.active_target_probability
        ):
            # Cold tail: occasionally the walk leaves the active set.
            return self._rng_walk.randint(0, count - 1)
        if active < count:
            if self.profile.active_zipf_skew > 0 and self._rng_walk.chance(0.3):
                # Hot head: frequently re-executed shared code.
                return self._rng_walk.zipf_index(active, self.profile.active_zipf_skew)
            # Cycling sweep: land at the cursor and advance it a few
            # blocks, so the active set is revisited with a bounded,
            # roughly constant reuse distance.
            cursor = self._active_cursor[self._mode_kernel]
            self._active_cursor[self._mode_kernel] = (
                cursor + self._rng_walk.randint(4, 9)
            ) % active
            return cursor
        return self._rng_walk.zipf_index(count, self.profile.code_zipf_skew)

    def _pick_function_entry(self, image: CodeImage) -> int:
        """Pick a CALL target, preferring entries inside the active set."""
        entries = image.function_entries
        active_limit = max(2, int(len(image.blocks) * self.profile.active_block_fraction))
        active_entries = [index for index in entries if index < active_limit]
        pool = active_entries or entries
        if active_entries and not self._rng_walk.chance(
            self.profile.active_target_probability
        ):
            pool = entries
        return self._rng_walk.choice(pool)

    def _emit_conditional(self, records, block: StaticBlock, privileged: bool) -> None:
        taken = self._branch_taken(block)
        image = self._image
        if block.target_block is not None:
            target_index = block.target_block
        else:
            target_index = self._dynamic_target(block.index)
        target_block = image.blocks[target_index]
        records.append(
            TraceRecord(
                block.terminal_pc,
                OpClass.BRANCH_COND,
                srcs=(ICC,),
                taken=taken,
                target=target_block.start_pc,
                privileged=privileged,
            )
        )
        self._block_index = target_index if taken else self._next_sequential(block)

    def _emit_unconditional(self, records, block: StaticBlock, privileged: bool) -> None:
        image = self._image
        target_index = self._dynamic_target(block.index)
        target_block = image.blocks[target_index]
        records.append(
            TraceRecord(
                block.terminal_pc,
                OpClass.BRANCH_UNCOND,
                taken=True,
                target=target_block.start_pc,
                privileged=privileged,
            )
        )
        self._block_index = target_index

    def _emit_call(self, records, block: StaticBlock, privileged: bool) -> None:
        image = self._image
        if len(self._call_stack) >= _MAX_CALL_DEPTH:
            self._emit_unconditional(records, block, privileged)
            return
        target_block = image.blocks[self._pick_function_entry(image)]
        records.append(
            TraceRecord(
                block.terminal_pc,
                OpClass.CALL,
                dest=int_reg(15),
                taken=True,
                target=target_block.start_pc,
                privileged=privileged,
            )
        )
        return_index = self._next_sequential(block)
        self._call_stack.append((self._mode_kernel, return_index))
        self._block_index = target_block.index

    def _emit_return(self, records, block: StaticBlock, privileged: bool) -> None:
        image = self._image
        # Pop to the innermost frame of the current mode; cross-mode frames
        # are handled by kernel entry/exit, not plain RET.
        return_index: Optional[int] = None
        if self._call_stack and self._call_stack[-1][0] == self._mode_kernel:
            _, return_index = self._call_stack.pop()
        if return_index is None:
            # Dispatcher jump: model an indirect branch into the active set.
            return_index = self._dynamic_target(block.index)
        target_pc = image.blocks[return_index].start_pc
        records.append(
            TraceRecord(
                block.terminal_pc,
                OpClass.RETURN,
                srcs=(int_reg(15),),
                taken=True,
                target=target_pc,
                privileged=privileged,
            )
        )
        self._block_index = return_index

    # -- kernel transitions ----------------------------------------------

    def _emit_kernel_entry(self, records, block: StaticBlock) -> None:
        assert self.kernel_image is not None
        entry_index = self._rng_walk.zipf_index(
            len(self.kernel_image.function_entries), 0.8
        )
        entry_block = self.kernel_image.blocks[
            self.kernel_image.function_entries[entry_index]
        ]
        records.append(
            TraceRecord(
                block.terminal_pc,
                OpClass.CALL,
                dest=int_reg(15),
                taken=True,
                target=entry_block.start_pc,
                privileged=False,
            )
        )
        self._call_stack.append((False, self._next_sequential(block)))
        self._mode_kernel = True
        self._kernel_budget = self._rng_walk.geometric(
            self.profile.kernel_burst_mean, maximum=int(self.profile.kernel_burst_mean * 6)
        )
        self._block_index = entry_block.index

    def _emit_kernel_exit(self, records, block: StaticBlock) -> None:
        # Unwind to the most recent user frame.
        return_index = 0
        while self._call_stack:
            mode_kernel, index = self._call_stack.pop()
            if not mode_kernel:
                return_index = index
                break
        target_pc = self.user_image.blocks[return_index].start_pc
        records.append(
            TraceRecord(
                block.terminal_pc,
                OpClass.RETURN,
                srcs=(int_reg(15),),
                taken=True,
                target=target_pc,
                privileged=True,
            )
        )
        self._mode_kernel = False
        self._block_index = return_index


def generate_trace(
    profile: WorkloadProfile,
    instruction_count: int,
    seed: int = 1,
    name: Optional[str] = None,
) -> Trace:
    """One-shot convenience: build a generator and emit one trace."""
    generator = TraceGenerator(profile, seed=seed)
    return generator.generate(instruction_count, name=name)
