"""Synthetic workload generation.

The paper drives its model with SPEC CPU95/CPU2000 traces (captured with
Shade) and TPC-C traces (captured with Fujitsu's kernel tracer, covering
both application and OS code).  Those traces are unavailable, so this
package generates seeded synthetic traces whose *statistical shape*
matches each suite: instruction mix, static code footprint, branch-pattern
predictability, data working-set size, and memory-access patterns
(stride / chain / random / hot).

The generator is two-layered, mirroring how real traces arise:

1. :mod:`repro.trace.synth.code` builds a static code image — basic
   blocks, functions, and statically-placed branches with per-branch
   behaviour models.
2. :mod:`repro.trace.synth.generator` walks that image dynamically,
   maintaining a call stack, kernel-mode excursions, register dependence
   chains, and data-address streams, emitting a control-flow-consistent
   dynamic instruction stream.
"""

from repro.trace.synth.profiles import (
    SPEC_FP_2000,
    SPEC_FP_95,
    SPEC_INT_2000,
    SPEC_INT_95,
    TPCC,
    WorkloadProfile,
    profile_by_name,
    standard_profiles,
)
from repro.trace.synth.generator import TraceGenerator, generate_trace
from repro.trace.synth.smp import build_smp_generators, generate_smp_traces

__all__ = [
    "WorkloadProfile",
    "SPEC_INT_95",
    "SPEC_FP_95",
    "SPEC_INT_2000",
    "SPEC_FP_2000",
    "TPCC",
    "profile_by_name",
    "standard_profiles",
    "TraceGenerator",
    "generate_trace",
    "build_smp_generators",
    "generate_smp_traces",
]
