"""Data-address stream generators.

Each memory operation in a synthetic trace draws its effective address
from one of four stream types (mixed per the profile's
:class:`~repro.trace.synth.profiles.DataMix`):

- **hot** — Zipf-skewed references into a small region; models stack,
  globals, and hot database rows.  Mostly L1 hits.
- **stride** — a set of concurrent sequential streams with fixed strides;
  models array sweeps.  This is the pattern the SPARC64 V's L2 hardware
  prefetcher captures (§3.4).
- **chain** — a deterministic pseudo-random permutation walk over the
  working set; models pointer chasing with full-region reuse but no
  spatial locality (the OLTP signature).
- **random** — uniform references over the working set; models index
  lookups.

All addresses are 8-byte aligned.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.trace.synth.profiles import DataMix

#: Base virtual address of a workload's private data segment.
USER_DATA_BASE = 0x1000_0000

#: Base virtual address of the kernel data segment.
KERNEL_DATA_BASE = 0x8000_0000

#: Base virtual address of the SMP shared segment (same on every CPU).
SHARED_DATA_BASE = 0xC000_0000

_ALIGN = ~0x7


class StrideStream:
    """One sequential stream: base + k*stride, restarted after a run."""

    def __init__(self, rng: DeterministicRng, region_base: int, region_bytes: int,
                 stride: int, run_length: int) -> None:
        self._rng = rng
        self._region_base = region_base
        self._region_bytes = max(region_bytes, 4096)
        self._stride = stride
        self._run_length = max(run_length, 4)
        self._position = 0
        self._remaining = 0
        self._restart()

    def _restart(self) -> None:
        limit = max(self._region_bytes - self._stride * self._run_length - 8, 8)
        self._position = self._region_base + (self._rng.randint(0, limit) & _ALIGN)
        self._remaining = self._run_length

    def next_address(self) -> int:
        if self._remaining <= 0:
            self._restart()
        address = self._position
        self._position += self._stride
        self._remaining -= 1
        return address


class ChainStream:
    """Pseudo-random permutation walk (pointer chasing).

    Uses a full-period LCG over the line index space so the walk touches
    every line in the region before repeating — maximal temporal reuse
    distance, zero spatial locality, exactly the pattern that defeats both
    small caches and next-line prefetching.
    """

    LINE = 64

    def __init__(self, rng: DeterministicRng, region_base: int, region_bytes: int) -> None:
        self._region_base = region_base
        self._lines = max(region_bytes // self.LINE, 16)
        # Full-period LCG parameters: modulus = line count (made power of
        # two), multiplier ≡ 1 mod 4, odd increment.
        self._modulus = 1 << (self._lines - 1).bit_length()
        self._multiplier = 5
        self._increment = (rng.randint(0, self._modulus // 2) * 2 + 1) % self._modulus
        self._state = rng.randint(0, self._modulus - 1)

    def next_address(self) -> int:
        while True:
            self._state = (self._state * self._multiplier + self._increment) % self._modulus
            if self._state < self._lines:
                break
        offset_in_line = 0  # chase the line-head pointer
        return self._region_base + self._state * self.LINE + offset_in_line


class AddressGenerator:
    """Per-workload data-address source mixing the four stream kinds."""

    def __init__(
        self,
        mix: DataMix,
        rng: DeterministicRng,
        region_base: int = USER_DATA_BASE,
    ) -> None:
        mix.validate()
        self._mix = mix
        self._rng = rng
        self._region_base = region_base
        self._hot_slots = max(mix.hot_region_bytes // 8, 8)
        self._ws_slots = max(mix.working_set_bytes // 8, 64)
        stride_rng = rng.fork(11)
        self._stride_streams: List[StrideStream] = [
            StrideStream(
                stride_rng.fork(i),
                region_base,
                mix.working_set_bytes,
                stride=stride_rng.choice(mix.stride_bytes_choices),
                run_length=mix.stride_run_length,
            )
            for i in range(max(mix.stride_stream_count, 1))
        ]
        self._next_stride_stream = 0
        self._chain = ChainStream(rng.fork(13), region_base, mix.working_set_bytes)
        self._kinds = ("hot", "stride", "chain", "random")
        self._weights = (
            mix.hot_fraction,
            mix.stride_fraction,
            mix.chain_fraction,
            mix.random_fraction,
        )

    def hot_address(self, rng) -> int:
        """One hot-stream address: exponential core + uniform tail."""
        mix = self._mix
        if mix.hot_tail_fraction > 0 and rng.chance(mix.hot_tail_fraction):
            tail_slots = max(mix.hot_tail_region_bytes // 8, 8)
            slot = rng.randint(0, tail_slots - 1)
            return self._region_base + slot * 8
        # Exponential core: ~95% of draws inside hot_region_bytes.
        slot = rng.geometric(max(self._hot_slots // 3, 1), maximum=self._hot_slots) - 1
        return self._region_base + slot * 8

    def next_address(self) -> int:
        """Draw the next data effective address (8-byte aligned)."""
        kind = self._rng.weighted_choice(self._kinds, self._weights)
        if kind == "hot":
            return self.hot_address(self._rng)
        if kind == "stride":
            stream = self._stride_streams[self._next_stride_stream]
            self._next_stride_stream = (self._next_stride_stream + 1) % len(
                self._stride_streams
            )
            return stream.next_address() & _ALIGN
        if kind == "chain":
            return self._chain.next_address()
        # random
        slot = self._rng.randint(0, self._ws_slots - 1)
        return self._region_base + slot * 8


class SharedRegionGenerator:
    """Addresses in the SMP shared segment (same mapping on all CPUs).

    Shared lines are drawn Zipf-skewed so some lines are heavily contended
    (lock words, hot rows), producing the cache-to-cache move-out traffic
    the paper's two-level hierarchy argument is about (§3.3).
    """

    def __init__(self, rng: DeterministicRng, region_bytes: int,
                 base: int = SHARED_DATA_BASE, skew: float = 0.9) -> None:
        if region_bytes <= 0:
            raise ConfigError("shared region must be positive")
        self._rng = rng
        self._base = base
        self._slots = max(region_bytes // 8, 64)
        self._skew = skew

    def next_address(self) -> int:
        slot = self._rng.zipf_index(self._slots, self._skew)
        return self._base + slot * 8
