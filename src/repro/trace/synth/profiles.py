"""Workload profiles.

A :class:`WorkloadProfile` is the complete statistical description of a
synthetic workload.  The five presets model the suites in the paper's
evaluation.  Their parameters were set from the paper's own
characterisation (Figure 7's stall breakdown, Figures 10/12/13/15's miss
ratios) and the public character of each suite:

- **SPECint95 / SPECint2000** — branchy integer code, small-to-moderate
  code and data footprints, high cache-hit ratios (paper §4.3.1 notes SPEC
  int gains most from wide issue *because* of its high hit ratios).
- **SPECfp95 / SPECfp2000** — loop-dominated FP code: few, highly
  predictable branches, large strided array working sets (paper: prefetch
  "fits the chain access pattern", SPECfp gains >13% IPC from prefetch,
  74% of SPECfp95 time is core execution).
- **TPC-C** — enterprise OLTP: huge instruction footprint spread over
  application + kernel code (35% of time stalled on L2 misses, BHT
  capacity sensitive, L1-size sensitive), pointer-chasing data with a
  multi-megabyte working set, ~30–40% kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BranchMix:
    """Distribution of static conditional-branch behaviour classes.

    Each static branch is assigned one class at code-generation time:

    - ``loop``: taken ``loop_trip`` times, then not taken once (classic
      counted loop back edge; predictable by a 2-bit counter except at
      exit).
    - ``biased``: taken (or not) with probability ``bias`` independently.
    - ``random``: 50/50 — unpredictable by any history-less table.
    """

    loop_fraction: float = 0.4
    biased_fraction: float = 0.45
    random_fraction: float = 0.15
    loop_trip_mean: float = 12.0
    bias: float = 0.88
    #: Minimum iterations per loop activation (floors the geometric draw;
    #: FP inner loops never run just once or twice).
    loop_trip_min: int = 1
    #: Mean not-taken encounters after a loop exits before it re-arms.
    #: Models phased execution: a finished loop is not immediately
    #: re-invoked, so the walk flows onward instead of being recaptured
    #: by the hottest back edge.  1.0 reproduces the classic
    #: taken^trip / one-not-taken cycle.
    loop_dormancy_mean: float = 1.0

    def validate(self) -> None:
        total = self.loop_fraction + self.biased_fraction + self.random_fraction
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"branch class fractions must sum to 1, got {total}")
        if not 0.5 <= self.bias <= 1.0:
            raise ConfigError(f"bias must be in [0.5, 1], got {self.bias}")


@dataclass(frozen=True)
class DataMix:
    """Distribution of data-access streams.

    Fractions select, per memory operation, which address stream supplies
    the effective address:

    - ``hot``: Zipf-skewed references into a small hot region (stack,
      globals, hot rows) — mostly L1 hits.
    - ``stride``: sequential array streams with a fixed small stride —
      the prefetch-friendly "chain access pattern" of §3.4/§4.3.5.
    - ``chain``: pointer-chase walk over the full working set — poor
      spatial locality, the OLTP signature.
    - ``random``: uniform references into the working set.
    """

    hot_fraction: float = 0.55
    stride_fraction: float = 0.2
    chain_fraction: float = 0.1
    random_fraction: float = 0.15
    hot_region_bytes: int = 32 * 1024
    working_set_bytes: int = 1 * 1024 * 1024
    hot_zipf_skew: float = 1.2
    #: Fraction of hot accesses drawn uniformly from the *hot tail* region
    #: instead of the exponential hot core.  The tail creates the graded
    #: locality band between L1 sizes (Figures 11-13): the core fits any
    #: L1; the tail fits the 128 KB cache much better than the 32 KB one.
    hot_tail_fraction: float = 0.0
    hot_tail_region_bytes: int = 256 * 1024
    stride_bytes_choices: Tuple[int, ...] = (8, 8, 16, 32, 64)
    stride_stream_count: int = 8
    stride_run_length: int = 64

    def validate(self) -> None:
        total = (
            self.hot_fraction
            + self.stride_fraction
            + self.chain_fraction
            + self.random_fraction
        )
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"data stream fractions must sum to 1, got {total}")
        if self.hot_region_bytes <= 0 or self.working_set_bytes <= 0:
            raise ConfigError("data regions must be positive")


@dataclass(frozen=True)
class WorkloadProfile:
    """Full statistical description of a synthetic workload."""

    name: str

    # --- static code shape ------------------------------------------------
    #: Number of user-code basic blocks (code footprint ≈ blocks × ~6 × 4 B).
    block_count: int = 2000
    #: Mean instructions per basic block (including the terminal branch).
    block_length_mean: float = 6.0
    #: Fraction of blocks that are function entries (CALL targets).
    function_fraction: float = 0.06
    #: Fraction of block terminals that are conditional branches; the rest
    #: split among unconditional branches, calls, returns and fall-through.
    conditional_terminal_fraction: float = 0.62
    unconditional_terminal_fraction: float = 0.10
    call_terminal_fraction: float = 0.06
    return_terminal_fraction: float = 0.06
    #: Remaining blocks fall through to the next block without a branch.

    #: Zipf skew over blocks when selecting branch targets (hot code).
    code_zipf_skew: float = 1.0
    #: Fraction of branch targets that are "local" (within a few blocks).
    local_target_fraction: float = 0.7
    #: Fraction of the code image forming the cycling *active set*: far
    #: jumps land uniformly inside it (with a small tail outside).  The
    #: active set is what creates medium-distance code reuse — the branch
    #: sites that pressure BHT capacity and the instruction lines that
    #: pressure L1I capacity.
    active_block_fraction: float = 1.0
    #: Probability that a far jump stays inside the active set.
    active_target_probability: float = 0.95
    #: Zipf skew of far-jump targets *within* the active set (0 = uniform).
    #: Shapes per-site reuse frequency: a moderate skew gives a hot head
    #: (well-trained branch sites, resident I-lines) plus a medium-reuse
    #: band — the band whose eviction separates a 16K-entry BHT from a
    #: 4K-entry one.
    active_zipf_skew: float = 0.0

    # --- instruction mix (non-branch body instructions) --------------------
    load_fraction: float = 0.25
    store_fraction: float = 0.11
    fp_fraction: float = 0.0
    #: Split of the FP fraction across add/mul/fma/div.
    fp_mix: Tuple[float, float, float, float] = (0.35, 0.3, 0.3, 0.05)
    int_mul_fraction: float = 0.01
    int_div_fraction: float = 0.002
    special_fraction: float = 0.004
    nop_fraction: float = 0.01

    # --- dependence shape ---------------------------------------------------
    #: Mean "recency" when drawing source registers: 1 = always depend on
    #: the immediately preceding result (serial); larger = more ILP.
    dependency_recency_mean: float = 3.0
    #: Probability that the instruction after a load consumes the load.
    load_use_probability: float = 0.3

    # --- branch behaviour -----------------------------------------------------
    branch_mix: BranchMix = field(default_factory=BranchMix)

    # --- data behaviour ------------------------------------------------------
    data_mix: DataMix = field(default_factory=DataMix)

    # --- kernel excursions (TPC-C only) ---------------------------------------
    #: Target fraction of instructions executed in privileged mode.
    kernel_fraction: float = 0.0
    #: Kernel code footprint in basic blocks.
    kernel_block_count: int = 0
    #: Mean instructions per kernel excursion.
    kernel_burst_mean: float = 400.0
    #: Kernel data working set (separate region from user data).
    kernel_working_set_bytes: int = 2 * 1024 * 1024

    # --- SMP sharing (used by synth.smp) -----------------------------------
    #: Fraction of data accesses that go to the globally shared region.
    shared_access_fraction: float = 0.0
    shared_region_bytes: int = 4 * 1024 * 1024
    #: Fraction of shared-region accesses that are writes (drives move-outs).
    shared_write_fraction: float = 0.25

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        self.branch_mix.validate()
        self.data_mix.validate()
        body_fracs = (
            self.load_fraction
            + self.store_fraction
            + self.fp_fraction
            + self.int_mul_fraction
            + self.int_div_fraction
            + self.special_fraction
            + self.nop_fraction
        )
        if body_fracs >= 1.0:
            raise ConfigError(
                f"{self.name}: body instruction fractions sum to {body_fracs:.3f} >= 1"
            )
        terminals = (
            self.conditional_terminal_fraction
            + self.unconditional_terminal_fraction
            + self.call_terminal_fraction
            + self.return_terminal_fraction
        )
        if terminals > 1.0 + 1e-9:
            raise ConfigError(f"{self.name}: terminal fractions sum to {terminals:.3f} > 1")
        if self.block_count <= 1:
            raise ConfigError(f"{self.name}: need at least 2 blocks")
        if self.kernel_fraction > 0 and self.kernel_block_count <= 1:
            raise ConfigError(f"{self.name}: kernel fraction requires kernel blocks")
        if abs(sum(self.fp_mix) - 1.0) > 1e-6:
            raise ConfigError(f"{self.name}: fp_mix must sum to 1")

    def derived(self, **changes) -> "WorkloadProfile":
        """A copy of this profile with the given fields replaced."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Presets.
# ---------------------------------------------------------------------------

SPEC_INT_95 = WorkloadProfile(
    name="SPECint95",
    block_count=1400,
    block_length_mean=5.5,
    conditional_terminal_fraction=0.64,
    code_zipf_skew=1.6,
    local_target_fraction=0.75,
    load_fraction=0.24,
    store_fraction=0.11,
    fp_fraction=0.0,
    special_fraction=0.01,
    dependency_recency_mean=2.8,
    branch_mix=BranchMix(
        loop_fraction=0.34,
        biased_fraction=0.63,
        random_fraction=0.03,
        loop_trip_mean=16.0,
        bias=0.97,
        loop_dormancy_mean=18.0,
    ),
    data_mix=DataMix(
        hot_fraction=0.93,
        stride_fraction=0.03,
        chain_fraction=0.01,
        random_fraction=0.03,
        hot_region_bytes=16 * 1024,
        working_set_bytes=320 * 1024,
        hot_zipf_skew=1.4,
        hot_tail_fraction=0.08,
        hot_tail_region_bytes=128 * 1024,
        stride_bytes_choices=(8, 8, 8, 16),
    ),
)

SPEC_FP_95 = WorkloadProfile(
    name="SPECfp95",
    block_count=700,
    block_length_mean=14.0,
    conditional_terminal_fraction=0.55,
    call_terminal_fraction=0.03,
    return_terminal_fraction=0.03,
    code_zipf_skew=1.6,
    load_fraction=0.26,
    store_fraction=0.09,
    fp_fraction=0.34,
    special_fraction=0.008,
    dependency_recency_mean=5.0,
    branch_mix=BranchMix(
        loop_fraction=0.80,
        biased_fraction=0.17,
        random_fraction=0.03,
        loop_trip_mean=44.0,
        bias=0.95,
        loop_trip_min=16,
        loop_dormancy_mean=1.0,
    ),
    data_mix=DataMix(
        hot_fraction=0.55,
        stride_fraction=0.44,
        chain_fraction=0.002,
        random_fraction=0.008,
        hot_region_bytes=16 * 1024,
        hot_tail_fraction=0.06,
        hot_tail_region_bytes=128 * 1024,
        working_set_bytes=2 * 1024 * 1024 + 320 * 1024,
        hot_zipf_skew=1.2,
        stride_bytes_choices=(8, 8, 8, 8, 16),
        stride_stream_count=12,
        stride_run_length=1024,
    ),
)

SPEC_INT_2000 = SPEC_INT_95.derived(
    name="SPECint2000",
    block_count=2800,
    data_mix=DataMix(
        hot_fraction=0.91,
        stride_fraction=0.04,
        chain_fraction=0.02,
        random_fraction=0.03,
        hot_region_bytes=20 * 1024,
        working_set_bytes=640 * 1024,
        hot_zipf_skew=1.4,
        hot_tail_fraction=0.08,
        hot_tail_region_bytes=144 * 1024,
        stride_bytes_choices=(8, 8, 8, 16),
    ),
    branch_mix=BranchMix(
        loop_fraction=0.34,
        biased_fraction=0.59,
        random_fraction=0.07,
        loop_trip_mean=13.0,
        bias=0.95,
        loop_dormancy_mean=18.0,
    ),
)

SPEC_FP_2000 = SPEC_FP_95.derived(
    name="SPECfp2000",
    block_count=900,
    data_mix=DataMix(
        hot_fraction=0.532,
        stride_fraction=0.455,
        chain_fraction=0.005,
        random_fraction=0.008,
        hot_region_bytes=16 * 1024,
        hot_tail_fraction=0.06,
        hot_tail_region_bytes=128 * 1024,
        working_set_bytes=3 * 1024 * 1024 + 256 * 1024,
        hot_zipf_skew=1.2,
        stride_bytes_choices=(8, 8, 8, 8, 16),
        stride_stream_count=16,
        stride_run_length=1280,
    ),
)

TPCC = WorkloadProfile(
    name="TPC-C",
    block_count=26000,
    block_length_mean=5.0,
    conditional_terminal_fraction=0.60,
    call_terminal_fraction=0.08,
    return_terminal_fraction=0.08,
    code_zipf_skew=0.9,
    local_target_fraction=0.45,
    active_block_fraction=0.18,
    active_target_probability=0.98,
    active_zipf_skew=0.2,
    load_fraction=0.27,
    store_fraction=0.13,
    fp_fraction=0.0,
    special_fraction=0.012,
    dependency_recency_mean=2.4,
    branch_mix=BranchMix(
        loop_fraction=0.18,
        biased_fraction=0.795,
        random_fraction=0.025,
        loop_trip_mean=18.0,
        bias=0.97,
        loop_dormancy_mean=45.0,
    ),
    data_mix=DataMix(
        hot_fraction=0.9825,
        stride_fraction=0.0035,
        chain_fraction=0.004,
        random_fraction=0.010,
        hot_region_bytes=16 * 1024,
        working_set_bytes=5 * 1024 * 1024,
        hot_zipf_skew=1.2,
        hot_tail_fraction=0.10,
        hot_tail_region_bytes=160 * 1024,
    ),
    kernel_fraction=0.34,
    kernel_block_count=14000,
    kernel_burst_mean=420.0,
    kernel_working_set_bytes=2 * 1024 * 1024,
    shared_access_fraction=0.01,
    shared_region_bytes=8 * 1024 * 1024,
    shared_write_fraction=0.22,
)

_PRESETS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (SPEC_INT_95, SPEC_FP_95, SPEC_INT_2000, SPEC_FP_2000, TPCC)
}


def standard_profiles() -> Dict[str, WorkloadProfile]:
    """The five presets used throughout the paper's evaluation."""
    return dict(_PRESETS)


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a preset by its paper name (e.g. ``"SPECint95"``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise ConfigError(f"unknown workload profile {name!r}; known: {known}") from None
