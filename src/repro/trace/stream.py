"""In-memory trace container and summary statistics.

A :class:`Trace` is the unit the performance model consumes: an ordered
list of :class:`TraceRecord` plus a name and (for SMP runs) the id of the
processor that executed it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.trace.record import NO_ADDR, TraceRecord


@dataclass
class TraceStats:
    """Aggregate characteristics of a trace.

    These are the quantities the paper uses to characterise workloads
    (instruction mix, footprints, branch behaviour) and the first thing to
    inspect when checking that a synthetic workload matches its intended
    profile.
    """

    instruction_count: int = 0
    op_counts: Dict[OpClass, int] = field(default_factory=dict)
    load_fraction: float = 0.0
    store_fraction: float = 0.0
    branch_fraction: float = 0.0
    fp_fraction: float = 0.0
    taken_branch_fraction: float = 0.0
    privileged_fraction: float = 0.0
    unique_code_lines: int = 0
    unique_data_lines: int = 0
    code_footprint_bytes: int = 0
    data_footprint_bytes: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for reports and JSON output."""
        out: Dict[str, object] = {
            "instruction_count": self.instruction_count,
            "load_fraction": round(self.load_fraction, 4),
            "store_fraction": round(self.store_fraction, 4),
            "branch_fraction": round(self.branch_fraction, 4),
            "fp_fraction": round(self.fp_fraction, 4),
            "taken_branch_fraction": round(self.taken_branch_fraction, 4),
            "privileged_fraction": round(self.privileged_fraction, 4),
            "code_footprint_bytes": self.code_footprint_bytes,
            "data_footprint_bytes": self.data_footprint_bytes,
        }
        out["op_counts"] = {op.name: count for op, count in sorted(self.op_counts.items())}
        return out


class Trace:
    """An ordered dynamic instruction stream."""

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        name: str = "trace",
        cpu: int = 0,
    ) -> None:
        self.name = name
        self.cpu = cpu
        self.records: List[TraceRecord] = list(records or [])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.records[index], name=self.name, cpu=self.cpu)
        return self.records[index]

    def append(self, record: TraceRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append several records."""
        self.records.extend(records)

    def head(self, count: int) -> "Trace":
        """First ``count`` records as a new trace."""
        return Trace(self.records[:count], name=f"{self.name}[:{count}]", cpu=self.cpu)

    def validate(self, line_bytes: int = 64) -> None:
        """Sanity-check record consistency; raises :class:`TraceError`.

        Checks that memory records carry addresses, branches carry targets
        when taken, and control flow is sequentially consistent (each
        record's pc equals the previous record's dynamic next-pc).
        """
        previous: Optional[TraceRecord] = None
        for position, record in enumerate(self.records):
            if record.is_memory and record.ea == NO_ADDR:
                raise TraceError(f"{self.name}[{position}]: memory record without address")
            if record.is_branch and record.taken and record.target == NO_ADDR:
                raise TraceError(f"{self.name}[{position}]: taken branch without target")
            if previous is not None and previous.next_pc() != record.pc:
                raise TraceError(
                    f"{self.name}[{position}]: control-flow break "
                    f"(previous next_pc {previous.next_pc():#x}, record pc {record.pc:#x})"
                )
            previous = record

    def stats(self, line_bytes: int = 64) -> TraceStats:
        """Compute aggregate statistics over the whole trace."""
        op_counts: Counter = Counter()
        loads = stores = branches = taken = fp = privileged = 0
        code_lines = set()
        data_lines = set()
        for record in self.records:
            op = record.op
            op_counts[op] += 1
            code_lines.add(record.pc // line_bytes)
            if op == OpClass.LOAD:
                loads += 1
                data_lines.add(record.ea // line_bytes)
            elif op == OpClass.STORE:
                stores += 1
                data_lines.add(record.ea // line_bytes)
            elif record.is_branch:
                branches += 1
                if record.taken:
                    taken += 1
            if op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_FMA, OpClass.FP_DIV):
                fp += 1
            if record.privileged:
                privileged += 1

        count = len(self.records)
        divisor = max(count, 1)
        return TraceStats(
            instruction_count=count,
            op_counts=dict(op_counts),
            load_fraction=loads / divisor,
            store_fraction=stores / divisor,
            branch_fraction=branches / divisor,
            fp_fraction=fp / divisor,
            taken_branch_fraction=taken / max(branches, 1),
            privileged_fraction=privileged / divisor,
            unique_code_lines=len(code_lines),
            unique_data_lines=len(data_lines),
            code_footprint_bytes=len(code_lines) * line_bytes,
            data_footprint_bytes=len(data_lines) * line_bytes,
        )
