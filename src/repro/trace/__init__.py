"""Trace infrastructure.

The paper's performance model is trace-driven: its input is an instruction
trace captured on a physical machine (SPEC traces via Shade, TPC-C traces
via Fujitsu's kernel tracer).  Neither tool nor workload is available, so
this package provides (a) the trace representation and file formats, and
(b) seeded synthetic generators whose output reproduces the published
*characteristics* of each workload suite — instruction mix, code/data
footprints, branch predictability, and memory-access patterns.
"""

from repro.trace.record import TraceRecord, NO_REG, NO_ADDR
from repro.trace.stream import Trace, TraceStats
from repro.trace.io import read_trace, write_trace
from repro.trace.sampling import SampleWindow, SamplingPlan, sample_trace

__all__ = [
    "TraceRecord",
    "NO_REG",
    "NO_ADDR",
    "Trace",
    "TraceStats",
    "read_trace",
    "write_trace",
    "sample_trace",
    "SampleWindow",
    "SamplingPlan",
]
