"""Trace sampling.

The paper samples its TPC-C traces ("We followed TPC guidelines during
system setup in order to generate realistic traces and sampled these
traces").  This module provides the standard systematic-sampling scheme:
take ``sample_length`` contiguous records every ``period`` records,
preserving control-flow continuity within each sample window.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import TraceError
from repro.trace.stream import Trace


def sample_trace(trace: Trace, period: int, sample_length: int) -> List[Trace]:
    """Systematically sample contiguous windows from ``trace``.

    Returns one :class:`Trace` per window.  Each window is internally
    control-flow consistent because records are kept contiguous; windows
    are intended to be simulated independently (with warm-up) and their
    statistics aggregated, exactly how sampled TPC-C traces are used.
    """
    if period <= 0 or sample_length <= 0:
        raise TraceError("period and sample_length must be positive")
    if sample_length > period:
        raise TraceError("sample_length cannot exceed period")
    windows: List[Trace] = []
    start = 0
    index = 0
    while start + sample_length <= len(trace):
        window = Trace(
            trace.records[start : start + sample_length],
            name=f"{trace.name}#w{index}",
            cpu=trace.cpu,
        )
        windows.append(window)
        start += period
        index += 1
    return windows


def merge_window_ipc(instruction_counts: List[int], cycle_counts: List[int]) -> float:
    """Aggregate per-window results into a single IPC.

    Total instructions over total cycles — the correct way to combine
    systematic samples (an unweighted mean of per-window IPCs would bias
    toward short-cycle windows).
    """
    if len(instruction_counts) != len(cycle_counts) or not instruction_counts:
        raise TraceError("instruction/cycle count lists must be equal-length and non-empty")
    total_cycles = sum(cycle_counts)
    if total_cycles <= 0:
        raise TraceError("total cycles must be positive")
    return sum(instruction_counts) / total_cycles
