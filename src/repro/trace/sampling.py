"""Systematic trace sampling (SMARTS-style).

The paper samples its TPC-C traces ("We followed TPC guidelines during
system setup in order to generate realistic traces and sampled these
traces").  This module provides the scheduling half of a SMARTS-style
sampled simulator: a :class:`SamplingPlan` describes a systematic
schedule of measurement windows — every ``period`` instructions, warm
micro-architectural state functionally over a ``warmup`` prefix, prime
the pipeline in detailed mode over a short ``detail_warmup`` span, then
measure ``sample_length`` instructions in detail; everything between
windows is fast-forwarded.  The simulation half lives in
:meth:`repro.model.simulator.PerformanceModel.run_sampled`, and the
statistics in :mod:`repro.analysis.estimate`.

:func:`sample_trace` remains the simple API: carve measurement windows
out of a trace.  It is lazy — windows are materialised one at a time, so
sampling a very long trace never holds more than one window's records
beyond the parent trace itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.errors import TraceError
from repro.trace.stream import Trace


@dataclass(frozen=True)
class SampleWindow:
    """One scheduled window: record indices into the sampled trace.

    ``[start, detail_start)`` is warmed functionally (caches, TLBs, BHT
    — no timing), ``[detail_start, end)`` runs through the detailed
    core, and statistics are measured over ``[measure_start,
    measure_end)`` only: the leading ``detail_start..measure_start``
    span primes the pipeline and the trailing ``measure_end..end`` pad
    keeps fetch fed so the measured span has no end-of-trace drain
    artefact.
    """

    index: int
    start: int
    detail_start: int
    measure_start: int
    measure_end: int
    end: int

    @property
    def warm_records(self) -> int:
        return self.detail_start - self.start

    @property
    def detailed_records(self) -> int:
        return self.end - self.detail_start

    @property
    def measured_records(self) -> int:
        return self.measure_end - self.measure_start


@dataclass(frozen=True)
class SamplingPlan:
    """Parameters of a systematic sampling schedule.

    ``period``
        Distance in instructions between successive measurement-window
        starts.
    ``sample_length``
        Instructions measured in detail per window.
    ``warmup``
        Instructions functionally warmed (caches/TLBs/BHT, no timing)
        immediately before each window.
    ``detail_warmup`` / ``drain_pad``
        Detailed-mode instructions run before/after the measured span to
        hide the pipeline fill and drain transients from the
        measurement.  The defaults suit the ~50-entry window core; they
        count toward the detailed-instruction budget.
    """

    period: int
    sample_length: int
    warmup: int = 0
    detail_warmup: int = 64
    drain_pad: int = 32

    def __post_init__(self) -> None:
        if self.period <= 0 or self.sample_length <= 0:
            raise TraceError("period and sample_length must be positive")
        if self.warmup < 0 or self.detail_warmup < 0 or self.drain_pad < 0:
            raise TraceError("warmup/detail_warmup/drain_pad must be >= 0")
        if self.span > self.period:
            raise TraceError(
                f"window span {self.span} (warmup {self.warmup} + detail "
                f"{self.detail_warmup} + length {self.sample_length} + pad "
                f"{self.drain_pad}) cannot exceed period {self.period}"
            )

    @property
    def span(self) -> int:
        """Total records consumed by one window (warm + detailed)."""
        return self.warmup + self.detail_warmup + self.sample_length + self.drain_pad

    @property
    def detailed_per_window(self) -> int:
        return self.detail_warmup + self.sample_length + self.drain_pad

    def key(self) -> str:
        """Stable token for result-cache keys."""
        return (
            f"p{self.period}.l{self.sample_length}.w{self.warmup}"
            f".d{self.detail_warmup}.t{self.drain_pad}"
        )

    def window_count(self, trace_length: int) -> int:
        """Number of windows the schedule places in ``trace_length``."""
        if trace_length < self.span:
            return 0
        return (trace_length - self.span) // self.period + 1

    def windows(self, trace_length: int) -> Iterator[SampleWindow]:
        """Yield the systematic window schedule for a trace."""
        start = 0
        index = 0
        while start + self.span <= trace_length:
            detail_start = start + self.warmup
            measure_start = detail_start + self.detail_warmup
            yield SampleWindow(
                index=index,
                start=start,
                detail_start=detail_start,
                measure_start=measure_start,
                measure_end=measure_start + self.sample_length,
                end=start + self.span,
            )
            start += self.period
            index += 1


def sample_trace(trace: Trace, period: int, sample_length: int) -> Iterator[Trace]:
    """Systematically sample contiguous windows from ``trace``.

    Yields one :class:`Trace` per window, lazily — each window is
    materialised only when the iterator is advanced, so streaming a
    billion-record trace holds one window at a time.  Each window is
    internally control-flow consistent because records are kept
    contiguous; windows are intended to be simulated independently (with
    warm-up) and their statistics aggregated, exactly how sampled TPC-C
    traces are used.  Parameters are validated eagerly.
    """
    if period <= 0 or sample_length <= 0:
        raise TraceError("period and sample_length must be positive")
    if sample_length > period:
        raise TraceError("sample_length cannot exceed period")

    def _windows() -> Iterator[Trace]:
        start = 0
        index = 0
        while start + sample_length <= len(trace):
            yield Trace(
                trace.records[start : start + sample_length],
                name=f"{trace.name}#w{index}",
                cpu=trace.cpu,
            )
            start += period
            index += 1

    return _windows()


def merge_window_ipc(instruction_counts: List[int], cycle_counts: List[int]) -> float:
    """Aggregate per-window results into a single IPC.

    Total instructions over total cycles — the correct way to combine
    systematic samples (an unweighted mean of per-window IPCs would bias
    toward short-cycle windows).
    """
    if len(instruction_counts) != len(cycle_counts) or not instruction_counts:
        raise TraceError("instruction/cycle count lists must be equal-length and non-empty")
    total_cycles = sum(cycle_counts)
    if total_cycles <= 0:
        raise TraceError("total cycles must be positive")
    return sum(instruction_counts) / total_cycles
